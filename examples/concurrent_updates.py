"""Concurrent readers and writers via lock crabbing (Appendix A.8).

The paper notes that a DILI update touches exactly one top-level leaf
subtree, so B+Tree-style lock crabbing reduces to per-leaf locks.  This
example hammers a :class:`~repro.ConcurrentDILI` from reader and writer
threads and verifies nothing is lost.

Run:
    python examples/concurrent_updates.py
"""

import threading
import time

import numpy as np

from repro import ConcurrentDILI
from repro.data import load_dataset, split_initial


def main() -> None:
    keys = load_dataset("wikits", 60_000, seed=7)
    initial, pool = split_initial(keys, fraction=0.5, seed=3)
    index = ConcurrentDILI(stripes=128)
    index.bulk_load(initial)
    print(f"loaded {len(index):,} keys; inserting {len(pool):,} "
          f"from 4 writer threads under 2 readers")

    stop = threading.Event()
    read_counts = [0, 0]

    def reader(slot: int) -> None:
        rng = np.random.default_rng(slot)
        while not stop.is_set():
            key = float(initial[rng.integers(0, len(initial))])
            assert index.get(key) is not None
            read_counts[slot] += 1

    def writer(chunk: np.ndarray) -> None:
        for key in chunk:
            assert index.insert(float(key), "w")

    readers = [
        threading.Thread(target=reader, args=(i,)) for i in range(2)
    ]
    writers = [
        threading.Thread(target=writer, args=(chunk,))
        for chunk in np.array_split(pool, 4)
    ]
    t0 = time.perf_counter()
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    elapsed = time.perf_counter() - t0

    print(f"writers done in {elapsed:.2f}s "
          f"({len(pool) / elapsed:,.0f} inserts/s with readers running)")
    print(f"readers performed {sum(read_counts):,} concurrent lookups")
    assert len(index) == len(initial) + len(pool)
    index.index.validate()
    print(f"final size {len(index):,}; validate() passed")


if __name__ == "__main__":
    main()
