"""DiliMap, persistence, durability, and the disk-mode configuration.

Four production conveniences layered over the paper's index:

1. ``DiliMap`` -- drop-in dict semantics plus ordered queries.
2. ``save``/``load`` -- build once, ship the index as a file
   (atomic write, checksummed, optionally validated on load).
3. ``DurableDILI`` -- crash-safe updates via a write-ahead log and
   checksummed snapshots (see docs/durability.md).
4. ``DiliConfig.for_disk()`` -- the paper's Section 9 sketch of a
   disk-resident DILI (IO-priced cost model, no local optimization).

Run:
    python examples/persistence_and_map.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import DILI, DiliConfig, DiliMap, tree_stats
from repro.data import load_dataset


def demo_map() -> None:
    print("== DiliMap: dict semantics + ordered queries ==")
    sensors = DiliMap(
        {1_690_000_000 + i * 60: f"reading-{i}" for i in range(1_000)}
    )
    ts = 1_690_000_000 + 500 * 60
    print(f"  exact:   sensors[{ts}] = {sensors[ts]!r}")
    sensors[ts + 1] = "late arrival"
    window = list(sensors.irange(ts, ts + 3 * 60))
    print(f"  window of {len(window)} readings after {ts}: "
          f"{[v for _, v in window]}")
    print(f"  newest: {sensors.peekitem()}")
    del sensors[ts + 1]
    print(f"  size after delete: {len(sensors):,}")


def demo_persistence() -> None:
    print("== save / load ==")
    keys = load_dataset("wikits", 50_000, seed=7)
    index = DILI()
    t0 = time.perf_counter()
    index.bulk_load(keys)
    build_s = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wikits.dili"
        index.save(path)
        t0 = time.perf_counter()
        loaded = DILI.load(path, validate=True)
        load_s = time.perf_counter() - t0
        print(f"  build {build_s:.2f}s vs load {load_s:.2f}s "
              f"({path.stat().st_size / 1e6:.1f} MB on disk)")
    assert loaded.get(float(keys[123])) == 123
    print("  loaded index answers; validate=True checked its structure")


def demo_durability() -> None:
    print("== DurableDILI: crash-safe updates ==")
    from repro import DurableDILI
    from repro.durability import recover

    keys = load_dataset("logn", 20_000, seed=7)
    with tempfile.TemporaryDirectory() as tmp:
        index = DurableDILI(tmp)
        index.bulk_load(keys)          # checkpointed before returning
        for i in range(1_000):         # WAL-logged, durable when acked
            index.insert(float(2**40 + i), f"late-{i}")
        index.wal.close()              # simulate kill-9: no clean close
        result = recover(tmp)
        print(f"  crash with {result.replayed:,} ops in the WAL tail: "
              f"recovered {len(result.index):,} keys, validate() passed")
        assert result.index.get(float(2**40 + 999)) == "late-999"


def demo_disk_mode() -> None:
    print("== Section 9: disk-priced construction ==")
    keys = load_dataset("fb", 50_000, seed=7)
    memory = DILI(DiliConfig(local_optimization=False))
    memory.bulk_load(keys)
    disk = DILI(DiliConfig.for_disk())
    disk.bulk_load(keys)
    for label, index in (("memory-priced", memory), ("disk-priced", disk)):
        st = tree_stats(index)
        print(f"  {label:14s}: {st.leaf_nodes:5d} leaves, "
              f"avg height {st.avg_height:.2f}")
    print("  with every fetch priced as a block IO, correction probes"
          " dominate: the layout shifts toward more accurate (smaller)"
          " leaves that answer in one read")


def main() -> None:
    demo_map()
    print()
    demo_persistence()
    print()
    demo_durability()
    print()
    demo_disk_mode()


if __name__ == "__main__":
    main()
