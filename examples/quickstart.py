"""Quickstart: build a DILI, query it, update it.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import DILI, tree_stats


def main() -> None:
    # DILI indexes sorted, unique float64 keys (integers up to 2**52
    # are exact).  Values can be anything -- record ids, offsets,
    # objects.
    rng = np.random.default_rng(0)
    keys = np.unique(rng.integers(0, 10**12, size=100_000)).astype(float)
    values = [f"record-{i}" for i in range(len(keys))]

    index = DILI()
    index.bulk_load(keys, values)
    print(f"bulk loaded {len(index):,} pairs")

    # Point lookups: exact hit or None.
    probe = float(keys[12_345])
    print(f"get({probe:.0f}) -> {index.get(probe)!r}")
    print(f"get(missing)   -> {index.get(probe + 1.0)!r}")

    # Inserts place the pair at its model-predicted slot; conflicting
    # predictions spawn a nested leaf transparently.
    new_key = float(keys[0]) + 1.0
    assert index.insert(new_key, "fresh")
    print(f"inserted {new_key:.0f}; get -> {index.get(new_key)!r}")
    assert not index.insert(new_key, "dup"), "duplicates are rejected"

    # Deletes clear the slot and trim single-pair nested leaves.
    assert index.delete(new_key)
    print(f"deleted {new_key:.0f}; get -> {index.get(new_key)!r}")

    # Ordered range scans: [lo, hi) in key order.
    lo, hi = float(keys[100]), float(keys[110])
    window = index.range_query(lo, hi)
    print(f"range [{lo:.0f}, {hi:.0f}) -> {len(window)} pairs, first: "
          f"{window[0]}")

    # Structural introspection (the paper's Table 6 metrics).
    stats = tree_stats(index)
    print(
        f"heights min/avg/max = {stats.min_height}/"
        f"{stats.avg_height:.2f}/{stats.max_height}, "
        f"memory = {stats.memory_bytes / 1e6:.1f} MB, "
        f"conflicts/1K = {stats.conflicts_per_1k:.1f}"
    )

    # Invariant check (useful in tests and after heavy updates).
    index.validate()
    print("validate() passed")


if __name__ == "__main__":
    main()
