"""Drive DILI through the paper's mixed workloads (Section 7.3).

Bulk loads half a dataset, then replays Read-Heavy and Write-Heavy
operation mixes, printing throughput and index health along the way --
the usage pattern of a key-value store's in-memory index.

Run:
    python examples/mixed_workload.py
"""

from repro import DILI, tree_stats
from repro.data import load_dataset, split_initial
from repro.workloads.generator import NAMED_SPECS, make_workload
from repro.workloads.runner import run_workload


def main() -> None:
    keys = load_dataset("fb", 80_000, seed=7)
    initial, pool = split_initial(keys, fraction=0.5, seed=3)
    print(f"bulk loading {len(initial):,} keys; {len(pool):,} on deck")

    for workload_name in ("Read-Heavy", "Write-Heavy"):
        index = DILI()
        index.bulk_load(initial)
        spec = NAMED_SPECS[workload_name].scaled(30_000)
        ops = make_workload(spec, keys, pool, seed=11)
        result = run_workload(index, ops, name=workload_name)
        print(
            f"{workload_name:12s}: {result.sim_mops:6.2f} Mops simulated "
            f"({result.sim_ns_per_op:6.0f} ns/op), "
            f"{result.wall_mops:5.3f} Mops wall-clock | "
            f"hits={result.hits:,} inserted={result.inserted:,}"
        )
        stats = tree_stats(index)
        print(
            f"{'':12s}  post-run: avg height {stats.avg_height:.2f}, "
            f"{index.adjustment_count} leaf adjustments, "
            f"{stats.memory_bytes / 1e6:.1f} MB"
        )
        index.validate()


if __name__ == "__main__":
    main()
