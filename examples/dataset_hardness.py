"""Profile dataset hardness and predict index behaviour before building.

The analysis module estimates, from the keys alone, how a learned index
will fare: the expected DILI leaf-conflict rate, the global model error,
gap variability and tail weight.  This example profiles all five paper
datasets, then verifies the conflict prediction against a real DILI
build.

Run:
    python examples/dataset_hardness.py
"""

from repro import DILI
from repro.bench.reporting import print_table
from repro.data import hardness_report, load_dataset

DATASETS = ["fb", "wikits", "osm", "books", "logn"]
N = 30_000


def main() -> None:
    rows = []
    predicted = {}
    for name in DATASETS:
        keys = load_dataset(name, N, seed=7)
        report = hardness_report(keys)
        predicted[name] = report.conflict_rate
        rows.append(
            [
                name,
                report.global_rmse,
                report.segment_rmse,
                report.conflict_rate * 1000.0,
                report.gap_cv,
                report.tail_ratio,
            ]
        )
    print_table(
        f"Predicted hardness ({N:,} keys per dataset)",
        [
            "Dataset",
            "global RMSE/n",
            "leaf RMSE",
            "pred conf/1K",
            "gap CV",
            "tail share",
        ],
        rows,
    )

    print("Verifying the conflict prediction against real DILI builds:")
    check_rows = []
    for name in DATASETS:
        keys = load_dataset(name, N, seed=7)
        index = DILI()
        index.bulk_load(keys)
        measured = index.opt_stats.nested_leaves / len(keys)
        check_rows.append(
            [name, predicted[name] * 1000.0, measured * 1000.0]
        )
    print_table(
        "Conflicts per 1K keys: predicted vs measured",
        ["Dataset", "predicted", "measured"],
        check_rows,
    )
    print(
        "Absolute values differ (the estimator uses fixed segments, "
        "DILI uses distribution-driven ones) but the easy/hard "
        "ordering matches -- profile before you build."
    )


if __name__ == "__main__":
    main()
