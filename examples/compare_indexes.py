"""Compare DILI against every baseline on a dataset of your choice.

Builds each index over the same keys, then reports simulated lookup
cost (the paper's Table 4 metric), cache misses, and memory.

Run:
    python examples/compare_indexes.py [dataset] [num_keys]

where dataset is one of: fb, wikits, osm, books, logn (default: logn).
"""

import sys

from repro.bench import (
    current_scale,
    make_index,
    measure_lookup,
    method_names,
    print_table,
)
from repro.bench.harness import query_sample
from repro.data import DATASET_NAMES, load_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "logn"
    if dataset not in DATASET_NAMES:
        raise SystemExit(
            f"unknown dataset {dataset!r}; pick from {sorted(DATASET_NAMES)}"
        )
    num_keys = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000
    scale = current_scale()
    print(f"dataset={dataset}, keys={num_keys:,}")
    keys = load_dataset(dataset, num_keys, seed=7)
    queries = query_sample(keys, min(3_000, num_keys // 4))

    rows = []
    for method in method_names(representative_only=True):
        index = make_index(method)
        index.bulk_load(keys)
        ns, misses, _ = measure_lookup(index, queries, scale)
        rows.append([method, ns, misses, index.memory_bytes() / 1e6])
    rows.sort(key=lambda r: r[1])
    print_table(
        f"Point-lookup comparison on {dataset} ({num_keys:,} keys)",
        ["Method", "lookup (ns)", "LL misses", "memory (MB)"],
        rows,
    )
    print(
        "Lookup 'ns' are simulated cycles under the paper's cost model "
        "(Section 3); compare ratios, not absolutes."
    )


if __name__ == "__main__":
    main()
