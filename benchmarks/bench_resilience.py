"""Resilience bench: degraded-read tax, repair latency, chaos throughput.

The self-healing layer trades peak throughput for a serving guarantee:
while a subtree is quarantined, batch reads abandon the flat plan and
split per key between the scalar tree and the authoritative table.
This bench prices that trade:

* the **degraded-read tax** -- batch-lookup latency HEALTHY (flat plan)
  vs DEGRADED (fallback chain) over the same probe set;
* **repair latency** per fault kind -- wall-clock from detection to a
  re-verified HEALTHY state, which the repair engine keeps bounded by
  rebuilding only the quarantined subtree;
* **chaos throughput** -- rounds/s of the full mixed-workload harness
  with scheduled injections, plus its contract verdict.
"""

import time

import numpy as np

from repro.bench import print_table
from repro.resilience import (
    FaultRegistry,
    Health,
    ResilientDILI,
    TREE_FAULT_KINDS,
    run_chaos,
)


def _loaded_index(keys):
    index = ResilientDILI()
    index.bulk_load(keys, list(range(len(keys))))
    index.get_batch(keys[:64])  # compile + warm the flat plan
    return index


def test_degraded_read_tax_and_repair_latency(
    cache, scale, benchmark, capsys
):
    keys = cache.keys("logn")[: min(40_000, scale.num_keys)]
    index = _loaded_index(keys)
    probe = keys[:: max(1, len(keys) // 2_000)]

    t0 = time.perf_counter()
    healthy_got = index.get_batch(probe)
    healthy_s = time.perf_counter() - t0
    assert healthy_got == list(range(0, len(keys), max(1, len(keys) // 2_000)))

    rng = np.random.default_rng(11)
    registry = FaultRegistry()
    rows = []
    degraded_s = None
    for kind in TREE_FAULT_KINDS:
        fault = registry.inject(kind, index.index, rng)
        assert fault is not None
        t0 = time.perf_counter()
        opened = index.detect()
        detect_s = time.perf_counter() - t0
        assert opened >= 1 and index.health is Health.DEGRADED

        if degraded_s is None:  # price the fallback chain once
            t0 = time.perf_counter()
            degraded_got = index.get_batch(probe)
            degraded_s = time.perf_counter() - t0
            assert degraded_got == healthy_got  # never wrong, just slower

        t0 = time.perf_counter()
        steps = index.repair_all()
        repair_s = time.perf_counter() - t0
        assert index.health is Health.HEALTHY
        rows.append(
            [kind, detect_s * 1e3, steps, repair_s * 1e3]
        )
    index.verify()
    assert index.stats()["full_rebuilds"] == 0

    with capsys.disabled():
        print_table(
            f"Degraded-read tax, scale={scale.name} "
            f"({len(keys):,} keys, {len(probe):,} probes)",
            ["Read path", "batch (ms)", "vs healthy", ""],
            [
                ["healthy (plan)", healthy_s * 1e3, 1.0, ""],
                ["degraded (fallback)", degraded_s * 1e3,
                 degraded_s / healthy_s, ""],
            ],
            first_col_width=20,
        )
        print_table(
            f"Repair latency by fault kind, scale={scale.name}",
            ["Fault", "detect (ms)", "steps", "repair (ms)"],
            rows,
            first_col_width=20,
        )

    benchmark(index.get, float(probe[0]))


def test_chaos_throughput_and_contract(cache, scale, benchmark, capsys):
    num_keys = min(10_000, scale.num_keys // 5)
    report = run_chaos(
        num_keys=num_keys,
        rounds=40,
        batch=128,
        injections=8,
        seed=7,
        with_locks=True,
    )
    assert report.ok, vars(report)
    assert report.kinds_injected == set(TREE_FAULT_KINDS)

    with capsys.disabled():
        print_table(
            f"Chaos harness, scale={scale.name} ({num_keys:,} keys, "
            f"{report.rounds} rounds)",
            ["Metric", "value", "", ""],
            [
                ["rounds/s", report.rounds / report.wall_s, "", ""],
                ["reads checked", report.reads, "", ""],
                ["writes applied", report.writes, "", ""],
                ["injections", len(report.injected), "", ""],
                ["repair steps", report.repair_steps, "", ""],
                ["max rounds degraded", report.max_steps_degraded, "", ""],
                ["plan splices", report.plan_splices, "", ""],
                ["lock escalations",
                 report.lock_stats["escalations"], "", ""],
                ["plan publishes",
                 report.lock_stats["plan_publishes"], "", ""],
                ["plans retired",
                 report.lock_stats["plans_retired"], "", ""],
                ["epoch pins",
                 report.lock_stats["epoch_pins"], "", ""],
                ["contract", "held" if report.ok else "VIOLATED", "", ""],
            ],
            first_col_width=22,
        )

    benchmark(
        lambda: run_chaos(
            num_keys=1_000,
            rounds=4,
            batch=32,
            injections=2,
            seed=1,
            with_locks=False,
        )
    )
