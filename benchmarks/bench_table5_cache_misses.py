"""Table 5: LL-cache misses per point query, representative methods.

Uses the same built indexes as Table 4; misses come from the LRU
cache-line simulator sized at ~1% of the pair bytes (the paper's
machine-to-data ratio).  The paper's key observations to check: DILI
has the fewest misses, LIPP sits well above it, and B+Tree/MassTree/PGM
pay roughly twice DILI's misses.
"""

from repro.bench import DATASETS
from repro.bench.experiments import cache_misses


def test_table5_cache_misses(cache, scale, benchmark, capsys):
    result = cache_misses(cache)
    with capsys.disabled():
        print("\n" + result.to_text() + "\n")

    for dataset in DATASETS:
        dili = result.cell("DILI", dataset)
        # DILI triggers fewer misses than LIPP, B+Tree and MassTree
        # (Table 5's takeaway).
        assert dili < result.cell("B+Tree(32)", dataset), dataset
        assert dili < result.cell("MassTree", dataset), dataset
        assert dili <= result.cell("LIPP", dataset) * 1.1, dataset

    index = cache.index("DILI", "logn")
    key = float(cache.keys("logn")[777])
    benchmark(index.get, key)
