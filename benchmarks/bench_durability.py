"""Durability bench: WAL overhead per op and recovery time vs log length.

Two costs bound the durability subsystem's usefulness:

* the **WAL tax** every mutation pays -- serialization + append (and,
  in the strict mode, an fsync) before the in-memory insert runs;
* the **recovery time** after a crash, which grows with the WAL tail
  length and is what snapshots exist to bound.

This bench measures both: per-op insert latency for a bare ``DILI``, a
``DurableDILI`` with batched syncs, and a ``DurableDILI`` with fsync
per op; then recovery wall-clock at growing WAL lengths, with and
without a snapshot covering the prefix.
"""

import time

import numpy as np

from repro import DILI
from repro.bench import print_table
from repro.data import split_initial
from repro.durability import DurableDILI, recover


def _time_inserts(index, keys) -> float:
    """Mean microseconds per insert."""
    t0 = time.perf_counter()
    for key in keys:
        index.insert(float(key), "w")
    return (time.perf_counter() - t0) / len(keys) * 1e6


def test_wal_overhead_per_op(cache, scale, benchmark, capsys, tmp_path):
    keys = cache.keys("logn")
    initial, pool = split_initial(keys, 0.5, seed=3)
    batch = pool[: min(3_000, len(pool))]
    fsync_batch = batch[:300]

    plain = DILI()
    plain.bulk_load(initial)
    plain_us = _time_inserts(plain, batch)

    buffered = DurableDILI(tmp_path / "buffered", sync=False)
    buffered.bulk_load(initial)
    buffered_us = _time_inserts(buffered, batch)
    buffered.sync_wal()
    wal_bytes_per_op = buffered.wal.size_bytes() / len(batch)
    buffered.close()

    strict = DurableDILI(tmp_path / "strict", sync=True)
    strict.bulk_load(initial)
    strict_us = _time_inserts(strict, fsync_batch)
    strict.close()

    with capsys.disabled():
        print_table(
            f"WAL overhead per insert, scale={scale.name}",
            ["Mode", "us/op", "overhead", "WAL B/op"],
            [
                ["bare DILI", plain_us, 1.0, 0.0],
                ["WAL (batched sync)", buffered_us,
                 buffered_us / plain_us, wal_bytes_per_op],
                ["WAL (fsync per op)", strict_us,
                 strict_us / plain_us, wal_bytes_per_op],
            ],
            first_col_width=20,
        )

    # The log must cost something, but batched logging should stay
    # within an order of magnitude of the bare index.
    assert buffered_us < plain_us * 20
    benchmark(plain.insert, float(pool[-1]), "b")


def test_recovery_time_vs_log_length(cache, scale, benchmark, capsys,
                                     tmp_path):
    keys = cache.keys("logn")
    initial, pool = split_initial(keys, 0.5, seed=3)
    lengths = [500, 2_000, 8_000]
    lengths = [n for n in lengths if n <= len(pool)]

    rows = []
    for n in lengths:
        state = tmp_path / f"wal{n}"
        d = DurableDILI(state, sync=False)
        d.bulk_load(initial)
        for key in pool[:n]:
            d.insert(float(key), "w")
        d.sync_wal()
        d.close()
        t0 = time.perf_counter()
        result = recover(state, validate=False)
        replay_s = time.perf_counter() - t0
        assert result.replayed == n
        assert len(result.index) == len(initial) + n

        # Checkpointing folds the tail into the snapshot: replay -> 0.
        d = DurableDILI(state, sync=False)
        d.snapshot()
        d.close()
        t0 = time.perf_counter()
        result = recover(state, validate=False)
        snap_s = time.perf_counter() - t0
        assert result.replayed == 0
        rows.append([f"{n} records", replay_s * 1e3,
                     replay_s / n * 1e6, snap_s * 1e3])

    with capsys.disabled():
        print_table(
            f"Recovery time vs WAL length, scale={scale.name} "
            f"({len(initial):,} snapshotted keys)",
            ["WAL tail", "recover (ms)", "us/record",
             "after snapshot (ms)"],
            rows,
        )

    state = tmp_path / f"wal{lengths[0]}"
    benchmark(lambda: recover(state, validate=False))
