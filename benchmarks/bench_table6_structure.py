"""Table 6: DILI structure statistics per dataset.

Reports minimum / maximum / key-weighted-average height and conflicts
per 1K keys after bulk loading.  Conflicts are reported as nested-leaf
creations per 1K keys (the unit whose magnitudes line up with the
paper's 1.2-227 range); the raw conflicting-pair count is shown too.
The paper's ordering to verify: Logn and WikiTS far below FB/Books,
with OSM in between.
"""

from repro.bench import DATASETS
from repro.bench.experiments import dili_structure
from repro.core.stats import tree_stats


def test_table6_dili_structure(cache, scale, benchmark, capsys):
    result = dili_structure(cache)
    with capsys.disabled():
        print("\n" + result.to_text() + "\n")

    conflicts = {
        ds: result.cell(ds, "conflicts/1K") for ds in DATASETS
    }
    assert conflicts["logn"] < conflicts["fb"]
    assert conflicts["wikits"] < conflicts["fb"]
    assert conflicts["logn"] < conflicts["books"]
    for ds in DATASETS:
        assert (
            2
            <= result.cell(ds, "min h")
            <= result.cell(ds, "avg h")
            <= result.cell(ds, "max h")
        )
        assert result.cell(ds, "max h") <= 16  # "a shallow structure"

    benchmark(tree_stats, cache.index("DILI", "logn"))
