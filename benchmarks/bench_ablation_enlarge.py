"""Ablation: the entry-array enlarging ratio eta (Algorithm 5).

eta > 1 over-allocates leaf slots so consecutive keys land apart;
larger eta buys fewer conflicts (shorter nested chains, faster lookups)
at a linear memory cost.  The paper fixes eta = 2; this ablation shows
the trade-off curve it sits on.
"""

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.bench.harness import measure_lookup
from repro.core.stats import tree_stats

ETAS = [1.2, 1.5, 2.0, 3.0, 4.0]


def test_ablation_enlarge_ratio(cache, scale, benchmark, capsys):
    keys = cache.keys("fb")
    queries = cache.queries("fb")
    rows = []
    conflicts = []
    memories = []
    for eta in ETAS:
        index = DILI(DiliConfig(enlarge=eta))
        index.bulk_load(keys)
        ns, _, _ = measure_lookup(index, queries, scale)
        st = tree_stats(index)
        per_1k = 1000.0 * st.nested_leaves / max(st.num_pairs, 1)
        conflicts.append(per_1k)
        memories.append(st.memory_bytes)
        rows.append(
            [f"eta={eta}", ns, per_1k, st.memory_bytes / 1e6,
             st.avg_height]
        )
    with capsys.disabled():
        print_table(
            f"Ablation: enlarging ratio eta on FB, scale={scale.name}",
            ["Param", "lookup (ns)", "conflicts/1K", "memory (MB)",
             "avg height"],
            rows,
        )

    # More slack -> monotonically fewer conflicts, more memory.
    assert conflicts == sorted(conflicts, reverse=True), conflicts
    assert memories == sorted(memories), memories

    index = DILI(DiliConfig(enlarge=1.2))
    index.bulk_load(keys)
    benchmark(index.get, float(keys[11]))
