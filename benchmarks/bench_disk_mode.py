"""Extension bench: the Section 9 disk-resident configuration.

The paper's future work sketches a disk DILI: price node fetches as
block IOs in the BU cost model and disable the local optimization.
This bench builds both configurations and compares (a) the layouts the
two cost models choose and (b) simulated block reads per lookup when
every node/pair fetch is an IO.

The second test is the *actual* disk mode this repo implements: the
crash-safe plan store (:mod:`repro.planstore`).  It publishes the
compiled flat plan at several key counts and measures open latency --
``MmapDILI.open`` verifies a framed header and memory-maps the buffers,
so it must be O(1) in the key count -- then checks the mapped store
serves the same answers as the live index it was published from.
"""

import time

import numpy as np

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.core.stats import tree_stats
from repro.durability.durable import DurableDILI
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer


def _io_reads_per_lookup(index, queries, cache_lines):
    """Cache misses = block reads under a block-buffer of given size."""
    tracer = CostTracer(CacheSimulator(cache_lines))
    split = len(queries) // 3
    for key in queries[:split]:
        index.get(float(key), tracer)
    tracer.reset_counters()
    for key in queries[split:]:
        index.get(float(key), tracer)
    return tracer.cache_misses / max(len(queries) - split, 1)


def test_disk_mode_layout_and_ios(cache, scale, benchmark, capsys):
    rows = []
    reads = {}
    for dataset in ["fb", "logn"]:
        keys = cache.keys(dataset)
        queries = cache.queries(dataset)
        for label, config in (
            ("memory", DiliConfig(local_optimization=False)),
            ("disk", DiliConfig.for_disk()),
        ):
            index = DILI(config)
            index.bulk_load(keys)
            st = tree_stats(index)
            per_lookup = _io_reads_per_lookup(
                index, queries, scale.cache_lines
            )
            reads[(dataset, label)] = per_lookup
            rows.append(
                [
                    f"{dataset}/{label}",
                    st.leaf_nodes,
                    st.avg_height,
                    per_lookup,
                ]
            )
    with capsys.disabled():
        print_table(
            f"Disk-mode DILI (Section 9 future work), scale={scale.name}",
            ["Dataset/Cost model", "leaves", "avg height",
             "block reads/lookup"],
            rows,
        )

    # The IO-priced cost model must not need more block reads per
    # lookup than the memory-priced layout it replaces.
    for dataset in ["fb", "logn"]:
        assert (
            reads[(dataset, "disk")]
            <= reads[(dataset, "memory")] * 1.10
        ), dataset

    index = DILI(DiliConfig.for_disk())
    index.bulk_load(cache.keys("logn"))
    benchmark(index.get, float(cache.keys("logn")[31]))


def test_plan_store_open_latency_and_serving(scale, tmp_path, capsys):
    """Plan-store disk mode: O(1) open, answers identical to the live index."""
    rng = np.random.default_rng(7)
    counts = [1_000, 10_000, min(scale.num_keys, 100_000)]
    rows = []
    open_ms = {}
    for n in counts:
        keys = np.unique(rng.uniform(0.0, 1e9, size=n))
        state = tmp_path / f"state-{len(keys)}"
        durable = DurableDILI(state, sync=False)
        durable.bulk_load(keys)
        # A small WAL tail past the published plan: the open must also
        # pay (bounded) replay, as it would in production.
        tail = rng.uniform(0.0, 1e9, size=32)
        t0 = time.perf_counter()
        durable.publish_plan()
        publish_ms = (time.perf_counter() - t0) * 1e3
        for key in tail:
            durable.insert(float(key), float(key))
        durable.sync_wal()

        best = float("inf")
        served = None
        for _ in range(3):
            if served is not None:
                served.close()
            t0 = time.perf_counter()
            served = durable.serve_mmap()
            best = min(best, (time.perf_counter() - t0) * 1e3)
            assert served.rung == 1, served.events
        open_ms[len(keys)] = best

        probe = np.concatenate(
            [rng.choice(keys, size=min(len(keys), 2048)), tail,
             rng.uniform(0.0, 1e9, size=256)]
        )
        t0 = time.perf_counter()
        got = served.get_batch(probe)
        batch_ms = (time.perf_counter() - t0) * 1e3
        assert got == durable.get_batch(probe)
        served.close()
        durable.close()
        rows.append(
            [f"{len(keys):,}", round(publish_ms, 2), round(best, 3),
             round(batch_ms, 2)]
        )
    with capsys.disabled():
        print_table(
            f"Plan-store serving (mmap disk mode), scale={scale.name}",
            ["keys", "publish ms", "open ms (best of 3)", "batch read ms"],
            rows,
        )
    # O(1) open: latency must not scale with key count.  5x headroom
    # plus an absolute floor absorbs wall-clock jitter on tiny times.
    small, large = open_ms[min(open_ms)], open_ms[max(open_ms)]
    assert large <= max(small * 5.0, 5.0), open_ms
