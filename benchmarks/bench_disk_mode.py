"""Extension bench: the Section 9 disk-resident configuration.

The paper's future work sketches a disk DILI: price node fetches as
block IOs in the BU cost model and disable the local optimization.
This bench builds both configurations and compares (a) the layouts the
two cost models choose and (b) simulated block reads per lookup when
every node/pair fetch is an IO.
"""

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.core.stats import tree_stats
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer


def _io_reads_per_lookup(index, queries, cache_lines):
    """Cache misses = block reads under a block-buffer of given size."""
    tracer = CostTracer(CacheSimulator(cache_lines))
    split = len(queries) // 3
    for key in queries[:split]:
        index.get(float(key), tracer)
    tracer.reset_counters()
    for key in queries[split:]:
        index.get(float(key), tracer)
    return tracer.cache_misses / max(len(queries) - split, 1)


def test_disk_mode_layout_and_ios(cache, scale, benchmark, capsys):
    rows = []
    reads = {}
    for dataset in ["fb", "logn"]:
        keys = cache.keys(dataset)
        queries = cache.queries(dataset)
        for label, config in (
            ("memory", DiliConfig(local_optimization=False)),
            ("disk", DiliConfig.for_disk()),
        ):
            index = DILI(config)
            index.bulk_load(keys)
            st = tree_stats(index)
            per_lookup = _io_reads_per_lookup(
                index, queries, scale.cache_lines
            )
            reads[(dataset, label)] = per_lookup
            rows.append(
                [
                    f"{dataset}/{label}",
                    st.leaf_nodes,
                    st.avg_height,
                    per_lookup,
                ]
            )
    with capsys.disabled():
        print_table(
            f"Disk-mode DILI (Section 9 future work), scale={scale.name}",
            ["Dataset/Cost model", "leaves", "avg height",
             "block reads/lookup"],
            rows,
        )

    # The IO-priced cost model must not need more block reads per
    # lookup than the memory-priced layout it replaces.
    for dataset in ["fb", "logn"]:
        assert (
            reads[(dataset, "disk")]
            <= reads[(dataset, "memory")] * 1.10
        ), dataset

    index = DILI(DiliConfig.for_disk())
    index.bulk_load(cache.keys("logn"))
    benchmark(index.get, float(cache.keys("logn")[31]))
