"""Table 12 (Appendix A.6): effect of the leaf-adjustment strategy.

Compares DILI against DILI-AD (adjustments disabled) after a write-only
workload followed by a read-only workload.  The paper's finding:
adjustments cost a little insertion time but yield a shorter structure,
lower memory and faster post-insertion lookups.
"""

import time

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.bench.harness import measure_lookup
from repro.core.stats import tree_stats
from repro.data import split_initial


def test_table12_adjustment_strategy(cache, scale, benchmark, capsys):
    rows = []
    heights = {}
    lookups = {}
    for dataset in ["fb", "wikits", "logn"]:
        keys = cache.keys(dataset)
        queries = cache.queries(dataset)
        initial, pool = split_initial(keys, 0.5, seed=3)
        for label, config in (
            ("DILI-AD", DiliConfig(adjust=False)),
            ("DILI", DiliConfig()),
        ):
            index = DILI(config)
            index.bulk_load(initial)
            t0 = time.perf_counter()
            for key in pool:
                index.insert(float(key), "w")
            insert_us = (time.perf_counter() - t0) / len(pool) * 1e6
            ns, _, _ = measure_lookup(index, queries, scale)
            st = tree_stats(index)
            heights[(dataset, label)] = st.avg_height
            lookups[(dataset, label)] = ns
            per_adjust = (
                len(pool) / index.adjustment_count
                if index.adjustment_count
                else float("nan")
            )
            rows.append(
                [
                    f"{dataset}/{label}",
                    per_adjust,
                    insert_us,
                    st.memory_bytes / 1e6,
                    st.avg_height,
                    ns,
                ]
            )
    with capsys.disabled():
        print_table(
            f"Table 12: adjusting strategy (DILI vs DILI-AD), "
            f"scale={scale.name}",
            [
                "Dataset/Model",
                "ins/adjust",
                "insert (us)",
                "memory (MB)",
                "avg height",
                "lookup (ns)",
            ],
            rows,
        )

    for dataset in ["fb", "wikits", "logn"]:
        # Adjustments keep the tree at least as shallow and lookups at
        # least as fast as never adjusting (Table 12's conclusion).
        assert (
            heights[(dataset, "DILI")]
            <= heights[(dataset, "DILI-AD")] + 0.05
        ), dataset
        assert (
            lookups[(dataset, "DILI")]
            <= lookups[(dataset, "DILI-AD")] * 1.1
        ), dataset

    benchmark(tree_stats, cache.index("DILI", "fb"))
