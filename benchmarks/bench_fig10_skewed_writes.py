"""Fig. 10 (Appendix A.3): skewed writes compressed into 1/10 of the range.

Protocol: bulk load P, compress the keys of a different dataset Q into
the first tenth of P's key range, and insert that skewed set Q' while
interleaving lookups.  The paper's finding: DILI loses its clear lead
(conflicts and adjustments concentrate) but stays comparable to LIPP
and ALEX.
"""

from repro.bench import make_index, print_table
from repro.data import load_dataset
from repro.workloads.generator import (
    NAMED_SPECS,
    make_workload,
    skewed_insert_keys,
)
from repro.workloads.runner import run_workload

METHODS = ["B+Tree(32)", "ALEX(1MB)", "LIPP", "DILI"]
COMBOS = [("fb", "wikits"), ("fb", "logn"), ("logn", "wikits")]


def test_fig10_skewed_writes(cache, scale, benchmark, capsys):
    total_ops = max(scale.num_queries * 3, 9_000)
    rows = {m: [m] for m in METHODS}
    results = {}
    for base_name, source_name in COMBOS:
        base = cache.keys(base_name)
        source = load_dataset(source_name, scale.num_keys // 2, seed=23)
        count = min(scale.num_keys // 3, 30_000)
        pool = skewed_insert_keys(source, base, count, compress=0.1,
                                  seed=23)
        spec = NAMED_SPECS["Write-Heavy"].scaled(
            min(total_ops, int(count * 1.5))
        )
        for method in METHODS:
            index = make_index(method)
            index.bulk_load(base)
            ops = make_workload(spec, base, pool, seed=29)
            result = run_workload(
                index,
                ops,
                name="skewed",
                cache_lines=scale.cache_lines,
            )
            results[(method, base_name, source_name)] = result.sim_mops
            rows[method].append(result.sim_mops)
    table_rows = [rows[m] for m in METHODS]
    with capsys.disabled():
        print_table(
            f"Fig. 10: Write-Heavy throughput with skewed inserts "
            f"(Mops), scale={scale.name}",
            ["Method"] + [f"{b}<-{s}" for b, s in COMBOS],
            table_rows,
        )

    # DILI stays comparable to LIPP/ALEX (within 2x) despite the skew.
    for base_name, source_name in COMBOS:
        dili = results[("DILI", base_name, source_name)]
        peers = [
            results[(m, base_name, source_name)]
            for m in ("ALEX(1MB)", "LIPP")
        ]
        assert dili >= max(peers) * 0.5, (base_name, source_name)

    index = cache.index("DILI", "logn")
    benchmark(index.get, float(cache.keys("logn")[3]))
