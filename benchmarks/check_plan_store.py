"""CI gate for the crash-safe plan store (the ``plan-store`` job).

Three contracts, each a hard failure:

* **O(1) open** -- ``PlanStore.open`` parses and checks a framed header
  and memory-maps the buffers; it never deserializes them.  Opening a
  10^6-key plan must cost no more than ``OPEN_RATIO``x opening a
  10^4-key plan (with a small absolute floor so microsecond timings
  don't fail on scheduler jitter).
* **Zero wrong reads** -- the seeded corruption sweep
  (:func:`repro.planstore.chaos.run_plan_chaos`) injects every fault
  kind (torn header, truncated buffer, flipped byte, stale LSN,
  missing delta); every served answer must match the snapshot+WAL
  oracle and every fault must land on its expected ladder rung.
* **Cross-process agreement** -- two independent reader processes map
  the same published state; both must report rung 1 and return
  byte-identical answers, which must equal the oracle computed from
  the writer's live index.

Run locally with::

    PYTHONPATH=src python benchmarks/check_plan_store.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

from repro import DILI  # noqa: E402
from repro.durability.durable import DurableDILI  # noqa: E402
from repro.planstore.chaos import run_plan_chaos  # noqa: E402
from repro.planstore.format import write_plan_file  # noqa: E402
from repro.planstore.store import PlanStore  # noqa: E402

SMALL_KEYS = 10_000
LARGE_KEYS = 1_000_000
OPEN_RATIO = 3.0
OPEN_FLOOR_MS = 2.0  # absolute slack: sub-ms opens jitter more than 3x
SMOKE_KEYS = 50_000
SMOKE_PROBES = 4_096

_READER = """
import json, sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.planstore.serve import MmapDILI

served = MmapDILI({state!r})
probe = np.load({probe!r})
los, his = np.load({los!r}), np.load({his!r})
print(json.dumps({{
    "rung": served.rung,
    "generation": served.generation,
    "values": served.get_batch(probe),
    "contains": [bool(b) for b in served.contains_batch(probe)],
    "counts": [int(c) for c in served.count_range_batch(los, his)],
}}))
"""


def _open_ms(path, rounds: int = 7) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        store = PlanStore.open(path)
        best = min(best, (time.perf_counter() - t0) * 1e3)
        store.close()
    return best


def check_open_latency(workdir: Path, failures: list[str]) -> None:
    rng = np.random.default_rng(1)
    timings = {}
    for n in (SMALL_KEYS, LARGE_KEYS):
        keys = np.unique(rng.uniform(0.0, 1e9, n))
        index = DILI()
        index.bulk_load(keys)
        path = workdir / f"plan-{n}.plan"
        t0 = time.perf_counter()
        write_plan_file(path, index._plan())
        publish_ms = (time.perf_counter() - t0) * 1e3
        timings[n] = _open_ms(path)
        print(
            f"open latency: {len(keys):>9,} keys -> "
            f"{timings[n]:.3f} ms (publish {publish_ms:.0f} ms, "
            f"{path.stat().st_size:,} bytes)"
        )
    limit = max(timings[SMALL_KEYS] * OPEN_RATIO, OPEN_FLOOR_MS)
    if timings[LARGE_KEYS] > limit:
        failures.append(
            f"open latency scales with key count: {timings[LARGE_KEYS]:.3f} "
            f"ms at {LARGE_KEYS:,} keys vs {timings[SMALL_KEYS]:.3f} ms at "
            f"{SMALL_KEYS:,} (limit {limit:.3f} ms) -- open must stay "
            f"header-verify + mmap, no buffer reads"
        )


def check_corruption_sweep(workdir: Path, failures: list[str]) -> None:
    result = run_plan_chaos(workdir / "chaos", seed=0, n_keys=400)
    for run in result.runs:
        status = "ok" if run.ok else "VIOLATION"
        print(
            f"corruption sweep: {run.kind:<20} rung {run.rung} "
            f"(expected {run.expected_rung}), wrong reads "
            f"{run.wrong_reads}/{run.probes}: {status}"
        )
        if run.wrong_reads:
            failures.append(
                f"{run.kind}: {run.wrong_reads} wrong read(s) -- a "
                f"corrupted artifact leaked into served answers"
            )
        elif not run.ok:
            failures.append(
                f"{run.kind}: landed on rung {run.rung}, expected "
                f"{run.expected_rung}"
            )


def check_cross_process(workdir: Path, failures: list[str]) -> None:
    rng = np.random.default_rng(2)
    keys = np.unique(rng.uniform(0.0, 1e9, SMOKE_KEYS))
    state = workdir / "smoke-state"
    durable = DurableDILI(state, sync=False)
    durable.bulk_load(keys)
    durable.publish_plan()
    for key in rng.uniform(2e9, 3e9, 64):  # WAL tail past the plan
        durable.insert(float(key), float(key))
    durable.sync_wal()

    probe = np.concatenate(
        [rng.choice(keys, SMOKE_PROBES // 2), rng.uniform(0.0, 3e9, SMOKE_PROBES // 2)]
    )
    los = rng.uniform(0.0, 1e9, 64)
    his = los + rng.uniform(0.0, 1e8, 64)
    oracle = {
        "values": durable.get_batch(probe),
        "contains": [bool(b) for b in durable.contains_batch(probe)],
        "counts": [int(c) for c in durable.count_range_batch(los, his)],
    }
    durable.close()

    paths = {}
    for name, arr in (("probe", probe), ("los", los), ("his", his)):
        paths[name] = str(workdir / f"{name}.npy")
        np.save(paths[name], arr)
    script = _READER.format(
        src=str(SRC), state=str(state), probe=paths["probe"],
        los=paths["los"], his=paths["his"],
    )
    reports = []
    for i in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=300,
        )
        if proc.returncode != 0:
            failures.append(
                f"reader process {i} died: {proc.stderr.strip()[-400:]}"
            )
            return
        reports.append(json.loads(proc.stdout))
        print(
            f"cross-process: reader {i} rung {reports[i]['rung']}, "
            f"generation {reports[i]['generation']}, "
            f"{len(reports[i]['values'])} probes answered"
        )
    if reports[0] != reports[1]:
        failures.append("cross-process: the two readers disagree")
    for i, rep in enumerate(reports):
        if rep["rung"] != 1:
            failures.append(
                f"cross-process: reader {i} served from rung {rep['rung']}"
            )
        for field in ("values", "contains", "counts"):
            if rep[field] != oracle[field]:
                failures.append(
                    f"cross-process: reader {i} {field} diverge from the "
                    f"writer's live index"
                )


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        check_open_latency(workdir, failures)
        check_corruption_sweep(workdir, failures)
        check_cross_process(workdir, failures)
    if failures:
        print("\nPLAN STORE CHECK FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("plan store check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
