"""Extension bench: Zipfian (hot-key) read skew.

The paper queries keys uniformly; production read traffic is usually
skewed.  Under YCSB-style Zipf popularity, hot lookup paths stay
cache-resident, so every method speeds up -- and the ordering between
methods must survive the skew for the paper's conclusions to carry over
to realistic traffic.
"""

from repro.bench import make_index, print_table
from repro.workloads.generator import NAMED_SPECS, make_workload
from repro.workloads.runner import run_workload

METHODS = ["B+Tree(32)", "RMI(L)", "LIPP", "DILI"]


def test_extension_zipf_reads(cache, scale, benchmark, capsys):
    keys = cache.keys("fb")
    spec = NAMED_SPECS["Read-Only"].scaled(
        max(scale.num_queries * 3, 9_000)
    )
    rows = []
    results = {}
    for method in METHODS:
        index = cache.index(method, "fb")
        row = [method]
        for dist in ("uniform", "zipf"):
            ops = make_workload(
                spec, keys, keys[:0], seed=31, query_distribution=dist
            )
            result = run_workload(
                index, ops, name=dist, cache_lines=scale.cache_lines
            )
            results[(method, dist)] = result.sim_mops
            row.append(result.sim_mops)
        row.append(
            results[(method, "zipf")] / results[(method, "uniform")]
        )
        rows.append(row)
    with capsys.disabled():
        print_table(
            f"Extension: uniform vs Zipf read skew on FB (Mops), "
            f"scale={scale.name}",
            ["Method", "uniform", "zipf", "speedup"],
            rows,
        )

    for method in METHODS:
        # Hot keys cache their paths: skew never hurts.
        assert (
            results[(method, "zipf")]
            >= results[(method, "uniform")] * 0.95
        ), method
    # The paper's ordering survives realistic read skew.
    assert results[("DILI", "zipf")] >= max(
        results[(m, "zipf")] for m in METHODS if m != "DILI"
    ) * 0.9

    index = cache.index("DILI", "fb")
    benchmark(index.get, float(keys[111]))
