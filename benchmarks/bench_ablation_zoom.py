"""Ablation: zoom internals for DILI-LO (DESIGN.md calibration note).

Equal-width division strands dense key bodies next to extreme tails in
one oversized dense leaf; zoom internals subdivide such ranges.  The
paper-shaped datasets only graze this pathology at benchmark scale, so
the payoff is demonstrated on a synthetic worst case -- a dense integer
body plus outliers a million times beyond it -- while the regular
datasets check zoom never regresses anything.
"""

import numpy as np

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.bench.harness import measure_lookup, query_sample


def _extreme_tail_dataset(n: int, seed: int = 0) -> np.ndarray:
    """99.9% dense integer body, 0.1% outliers 2**20 beyond it."""
    rng = np.random.default_rng(seed)
    body = np.arange(n, dtype=np.float64) * 3.0
    n_tail = max(n // 1000, 2)
    tail = np.floor(
        body[-1] * 2.0 ** rng.uniform(10, 20, size=n_tail)
    )
    return np.unique(np.concatenate([body, tail]))


def test_ablation_zoom_nodes(cache, scale, benchmark, capsys):
    rows = []
    results = {}
    extreme = _extreme_tail_dataset(scale.num_keys)
    extreme_queries = query_sample(extreme, scale.num_queries)
    cases = [("extreme-tail", extreme, extreme_queries)] + [
        (name, cache.keys(name), cache.queries(name))
        for name in ("fb", "osm", "wikits")
    ]
    for name, keys, queries in cases:
        for label, zoom in (("no-zoom", False), ("zoom", True)):
            index = DILI(
                DiliConfig(local_optimization=False, zoom=zoom)
            )
            index.bulk_load(keys)
            ns, misses, _ = measure_lookup(index, queries, scale)
            results[(name, label)] = ns
            rows.append([f"{name}/{label}", ns, misses])
    with capsys.disabled():
        print_table(
            f"Ablation: DILI-LO zoom internals, scale={scale.name}",
            ["Dataset/Variant", "lookup (ns)", "LL misses"],
            rows,
        )

    # Zoom pays off decisively where the pathology actually strikes...
    assert (
        results[("extreme-tail", "zoom")]
        < results[("extreme-tail", "no-zoom")] * 0.7
    ), results
    # ...and never regresses the paper-shaped datasets.
    for name in ("fb", "osm", "wikits"):
        assert (
            results[(name, "zoom")]
            <= results[(name, "no-zoom")] * 1.05
        ), name

    index = DILI(DiliConfig(local_optimization=False))
    index.bulk_load(extreme)
    benchmark(index.get, float(extreme[55]))
