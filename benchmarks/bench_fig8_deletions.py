"""Fig. 8: throughput under deletion-heavy workloads (Section 7.4).

Protocol: bulk load the whole dataset, then run (1) a Read-Heavy mix of
lookups and deletions and (2) a Deletion-Heavy mix.  LIPP is excluded
(no deletion support), exactly as in the paper.  Expected shape: DILI
well ahead on Read-Heavy; ALEX competitive on Deletion-Heavy thanks to
its lazy deletes (it "almost equals searching").
"""

from repro.bench import make_index, print_table
from repro.data import load_dataset
from repro.workloads.generator import NAMED_SPECS, deletion_workload
from repro.workloads.runner import run_workload

METHODS = ["B+Tree(32)", "MassTree", "PGM-dyn", "ALEX(1MB)", "DILI"]
WORKLOADS = ["Read-Heavy(del)", "Deletion-Heavy"]


def _make(method: str):
    return make_index("DynPGM" if method == "PGM-dyn" else method)


def test_fig8_deletion_throughput(cache, scale, benchmark, capsys):
    total_ops = max(scale.num_queries * 3, 9_000)
    rows = {m: [m] for m in METHODS}
    for dataset in ["fb", "wikits", "logn"]:
        keys = cache.keys(dataset)
        for method in METHODS:
            for wl_name in WORKLOADS:
                spec = NAMED_SPECS[wl_name].scaled(total_ops)
                index = _make(method)
                index.bulk_load(keys)
                ops = deletion_workload(spec, keys, seed=13)
                result = run_workload(
                    index,
                    ops,
                    name=wl_name,
                    cache_lines=scale.cache_lines,
                )
                rows[method].append(result.sim_mops)
    columns = ["Method"] + [
        f"{ds[:4]}:{wl[:8]}"
        for ds in ["fb", "wikits", "logn"]
        for wl in WORKLOADS
    ]
    table_rows = [rows[m] for m in METHODS]
    with capsys.disabled():
        print_table(
            f"Fig. 8: throughput with deletions (Mops), scale={scale.name}",
            columns,
            table_rows,
            col_width=14,
            first_col_width=12,
        )

    by_method = {r[0]: r[1:] for r in table_rows}
    for col in range(0, len(columns) - 1, 2):  # Read-Heavy columns
        dili = by_method["DILI"][col]
        assert dili > by_method["B+Tree(32)"][col]
        assert dili > by_method["MassTree"][col]

    index = cache.index("DILI", "fb")
    key = float(cache.keys("fb")[4321])
    benchmark(index.get, key)
