"""Fig. 7: throughput on the four named workloads.

Protocol (Section 7.3): bulk load half the dataset, then run a random
mix of point queries over the full key set and insertions from the
other half.  RMI and RS are excluded from mixes with insertions, as in
the paper.  Simulated throughput (Mops under the cycle/cache model) is
reported; the expected shape is DILI highest everywhere, PGM worst on
write mixes, B+Tree and MassTree at the bottom of read mixes.
"""

from repro.bench.experiments import workload_throughput


def test_fig7_workload_throughput(cache, scale, benchmark, capsys):
    result = workload_throughput(cache)
    with capsys.disabled():
        print("\n" + result.to_text() + "\n")

    methods = [row[0] for row in result.rows]
    # DILI achieves the highest throughput on every dataset x workload.
    for column in result.columns[1:]:
        dili = result.cell("DILI", column)
        best_other = max(
            result.cell(m, column) for m in methods if m != "DILI"
        )
        assert dili >= best_other * 0.8, (
            f"DILI not near the top for {column}: "
            f"{dili:.2f} vs {best_other:.2f} Mops"
        )

    index = cache.index("DILI", "logn")
    key = float(cache.keys("logn")[42])
    benchmark(index.get, key)
