"""Extension bench: FITing-Tree vs the paper's learned indexes.

FITing-Tree is related work the paper cites but does not evaluate.
This bench places it in the Table 4 landscape: expected to be far more
memory-frugal than DILI (its selling point), with lookups between PGM's
and DILI's (one B-tree descent plus one bounded search).
"""

from repro.baselines import FITingTree
from repro.bench import print_table
from repro.bench.harness import measure_lookup

COMPARE = ["PGM", "ALEX(1MB)", "DILI"]


def test_extension_fiting_tree(cache, scale, benchmark, capsys):
    rows = []
    results = {}
    for dataset in ["fb", "wikits", "logn"]:
        keys = cache.keys(dataset)
        queries = cache.queries(dataset)
        fit = FITingTree(32)
        fit.bulk_load(keys)
        ns, misses, _ = measure_lookup(fit, queries, scale)
        results[(dataset, "FITing-Tree")] = (ns, fit.memory_bytes())
        rows.append(
            ["FITing-Tree/" + dataset, ns, misses,
             fit.memory_bytes() / 1e6]
        )
        for method in COMPARE:
            m_ns, m_misses, _ = cache.lookup_result(method, dataset)
            index = cache.index(method, dataset)
            results[(dataset, method)] = (m_ns, index.memory_bytes())
            rows.append(
                [f"{method}/{dataset}", m_ns, m_misses,
                 index.memory_bytes() / 1e6]
            )
    with capsys.disabled():
        print_table(
            f"Extension: FITing-Tree vs learned indexes, "
            f"scale={scale.name}",
            ["Method/Dataset", "lookup (ns)", "LL misses",
             "memory (MB)"],
            rows,
        )

    for dataset in ["fb", "wikits", "logn"]:
        fit_ns, fit_mem = results[(dataset, "FITing-Tree")]
        dili_ns, dili_mem = results[(dataset, "DILI")]
        # Memory-frugal by design; slower than DILI at point lookups.
        assert fit_mem < dili_mem, dataset
        assert fit_ns > dili_ns * 0.9, dataset

    fit = FITingTree(32)
    fit.bulk_load(cache.keys("logn"))
    benchmark(fit.get, float(cache.keys("logn")[9]))
