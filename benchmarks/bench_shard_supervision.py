"""Shard supervision bench: what the deadline + breaker machinery buys.

Prices the ISSUE 10 contract on a live 3-shard process fleet:

* **hung-shard batch read** -- wall-clock of a full-fleet `get_batch`
  with one SIGSTOP'd worker, vs the healthy baseline and vs the
  request deadline.  The whole point of one per-request budget is that
  this latency is bounded by `deadline + eps`, not
  `retries x timeout`; the assertion holds the bound.
* **partial-mode tax** -- `partial=True` read latency with one shard
  isolated behind a forced-OPEN breaker, vs fail-fast on the same
  healthy fleet: the degraded path must not be more than a small
  multiple of the healthy one (it skips the dead shard entirely).
* **supervision overhead** -- healthy-fleet throughput with heartbeats
  + background probe on vs off, pricing the always-on machinery.
"""

import time

import numpy as np

from repro.bench import print_table
from repro.sharding.breaker import RestartPolicy
from repro.sharding.coordinator import ShardedDILI
from repro.sharding.supervision import UNAVAILABLE


def _make_fleet(tmp_path, *, supervise=True, heartbeat=0.1, **kwargs):
    rng = np.random.default_rng(29)
    keys = np.unique(rng.integers(0, 10_000_000, size=6_000)).astype(
        np.float64
    )
    values = [int(k) * 3 for k in keys]
    index = ShardedDILI.create(
        tmp_path,
        keys,
        values,
        num_shards=3,
        partition="range",
        tuning="none",
        processes=True,
        sync=False,
        heartbeat_interval=heartbeat,
        supervise=supervise,
        **kwargs,
    )
    return index, keys


def _timed_read(index, probe):
    t0 = time.perf_counter()
    got = index.get_batch(probe)
    return time.perf_counter() - t0, got


def test_hung_shard_read_bounded_by_deadline(tmp_path, capsys):
    request_timeout = 8.0
    index, keys = _make_fleet(
        tmp_path / "hung",
        request_timeout=request_timeout,
        hang_timeout=0.5,
        policy=RestartPolicy(term_grace=0.3),
        supervise=False,  # measure the in-request escalation itself
    )
    probe = keys[:: max(1, len(keys) // 2_000)]
    with index:
        healthy_s, baseline = _timed_read(index, probe)
        index.pause_worker(1)
        hung_s, got = _timed_read(index, probe)
        assert got == baseline
        assert hung_s <= request_timeout + 0.5
        assert index.restarts == 1
    rows = [
        ["healthy read", healthy_s * 1e3, len(probe), 0.0],
        ["one shard hung", hung_s * 1e3, len(probe), 1.0],
        ["deadline budget", request_timeout * 1e3, len(probe), 0.0],
    ]
    with capsys.disabled():
        print_table(
            "Full-fleet batch read with a SIGSTOP'd worker "
            "(escalate + restart inside one request deadline)",
            ["case", "ms", "keys", "restarts"],
            rows,
            first_col_width=18,
        )


def test_partial_mode_tax_with_isolated_shard(tmp_path, capsys):
    index, keys = _make_fleet(tmp_path / "partial", supervise=False)
    probe = keys[:: max(1, len(keys) // 2_000)]
    with index:
        healthy_s, _ = _timed_read(index, probe)
        for _ in range(index.policy.budget):
            index.supervisor.note_failure(0, "forced open for bench")
        t0 = time.perf_counter()
        got = index.get_batch(probe, partial=True)
        partial_s = time.perf_counter() - t0
        routed = index.router.route(probe)
        unavailable = sum(1 for value in got if value is UNAVAILABLE)
        assert unavailable == int((routed == 0).sum())
        # Skipping the isolated shard must not cost more than a small
        # multiple of the healthy read (no spawn, no waiting).
        assert partial_s <= max(5.0 * healthy_s, 0.25)
    rows = [
        ["fail-fast healthy", healthy_s * 1e3, len(probe), 0.0],
        ["partial, 1 isolated", partial_s * 1e3, len(probe),
         float(unavailable)],
    ]
    with capsys.disabled():
        print_table(
            "Partial-mode read tax with one shard behind an OPEN breaker",
            ["case", "ms", "keys", "unavailable"],
            rows,
            first_col_width=20,
        )


def test_supervision_overhead_when_healthy(tmp_path, capsys):
    rows = []
    throughputs = {}
    for label, supervise, heartbeat in (
        ("unsupervised", False, 0.0),
        ("supervised", True, 0.1),
    ):
        index, keys = _make_fleet(
            tmp_path / label, supervise=supervise, heartbeat=heartbeat
        )
        probe = keys[:: max(1, len(keys) // 4_000)]
        with index:
            index.get_batch(probe[:64])  # warm the workers
            t0 = time.perf_counter()
            rounds = 12
            for _ in range(rounds):
                index.get_batch(probe)
            elapsed = time.perf_counter() - t0
        per_key = rounds * len(probe) / elapsed
        throughputs[label] = per_key
        rows.append([label, elapsed / rounds * 1e3, per_key, heartbeat])
    # Heartbeats ride the existing pipes and the probe thread sleeps
    # between sweeps: the healthy-path cost must stay marginal.
    assert throughputs["supervised"] >= 0.5 * throughputs["unsupervised"]
    with capsys.disabled():
        print_table(
            "Healthy-fleet cost of heartbeats + background probe",
            ["fleet", "ms/batch", "keys/s", "heartbeat_s"],
            rows,
            first_col_width=14,
        )
