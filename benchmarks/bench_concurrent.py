"""Extension bench: the Appendix A.8 wrapper with epoch-pinned reads.

Measures the locking overhead of :class:`ConcurrentDILI` against the
bare index (single-threaded wall-clock), verifies a multi-threaded
mixed workload completes losslessly, and tables batch-read throughput
at 1/2/4/8 reader threads.  Batch reads descend the published flat
plan under an epoch pin and take no locks at all, so they scale with
available cores and -- on any machine, GIL or not -- never stall
behind a writer's stripe/exclusive critical sections; the contention
rows price exactly that stall by re-running the same readers forced
through ``exclusive()``.  Scalar ``get`` still takes per-leaf locks,
and its overhead is what the first table pins down.
"""

import os
import threading
import time

import numpy as np

from repro import ConcurrentDILI, DILI
from repro.bench import print_table
from repro.bench.harness import measure_concurrent_read_scaling
from repro.data import split_initial


def test_concurrent_wrapper(cache, scale, benchmark, capsys):
    keys = cache.keys("wikits")
    initial, pool = split_initial(keys, 0.5, seed=3)
    probes = cache.queries("wikits")[:2_000]

    plain = DILI()
    plain.bulk_load(initial)
    wrapped = ConcurrentDILI(stripes=128)
    wrapped.bulk_load(initial)

    def time_lookups(index):
        t0 = time.perf_counter()
        for key in probes:
            index.get(float(key))
        return (time.perf_counter() - t0) / len(probes) * 1e6

    plain_us = time_lookups(plain)
    wrapped_us = time_lookups(wrapped)

    # Multi-threaded churn: 4 writers + 2 readers, lossless.
    chunks = np.array_split(pool, 4)
    stop = threading.Event()
    errors: list[Exception] = []

    def writer(chunk):
        try:
            for key in chunk:
                assert wrapped.insert(float(key), "w")
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def reader():
        try:
            while not stop.is_set():
                for key in initial[::501]:
                    assert wrapped.get(float(key)) is not None
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(c,)) for c in chunks]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads[:4]:
        thread.join()
    stop.set()
    for thread in threads[4:]:
        thread.join()
    churn_s = time.perf_counter() - t0

    with capsys.disabled():
        print_table(
            f"Concurrent DILI (A.8), scale={scale.name}",
            ["Metric", "value"],
            [
                ["bare lookup (us)", plain_us],
                ["locked lookup (us)", wrapped_us],
                ["lock overhead", wrapped_us / plain_us],
                ["4w+2r churn (s)", churn_s],
                ["inserts applied", float(len(pool))],
            ],
            first_col_width=24,
        )

    assert not errors
    assert len(wrapped) == len(initial) + len(pool)
    wrapped.index.validate()
    # Striped locking should cost well under 10x a bare lookup.
    assert wrapped_us < plain_us * 10

    benchmark(wrapped.get, float(initial[77]))


def test_lockfree_read_scaling(cache, scale, benchmark, capsys):
    keys = cache.keys("logn")
    m = measure_concurrent_read_scaling(keys)

    rows = [
        [f"{n} reader{'s' if n > 1 else ''}",
         m.ops_per_s[n] / 1e3, m.scaling(n), ""]
        for n in m.thread_counts
    ]
    with capsys.disabled():
        print_table(
            f"Epoch-pinned batch reads, scale={scale.name} "
            f"({len(keys):,} keys, {os.cpu_count()} CPU)",
            ["Readers (no writer)", "klookups/s", "vs 1 reader", ""],
            rows,
            first_col_width=22,
        )
        print_table(
            f"4 readers vs churning writer, scale={scale.name}",
            ["Read protocol", "klookups/s", "vs locked", ""],
            [
                ["epoch-pinned (lock-free)",
                 m.contention_lockfree_ops / 1e3,
                 m.contention_speedup, ""],
                ["exclusive() (pre-epoch)",
                 m.contention_locked_ops / 1e3, 1.0, ""],
            ],
            first_col_width=26,
        )

    assert m.wrong_reads == 0
    assert m.lost_updates == 0
    assert m.plan_publishes >= 1 and m.epoch_pins >= 1
    # The hard >= 2.5x floors live in check_batch_baseline.py; here a
    # loose sanity bound keeps the bench robust on loaded runners.
    assert m.contention_speedup > 1.5
    if (os.cpu_count() or 1) >= 4:
        assert m.scaling_4 > 1.5

    index = ConcurrentDILI()
    index.bulk_load(keys, list(range(len(keys))))
    index.get_batch(keys[:16])  # compile + publish the plan
    benchmark(index.get_batch, keys[:256])
