"""Extension bench: the Appendix A.8 lock-crabbing wrapper.

Measures the locking overhead of :class:`ConcurrentDILI` against the
bare index (single-threaded wall-clock) and verifies a multi-threaded
mixed workload completes losslessly.  Python's GIL precludes real
parallel speedups; what this bench pins down is the overhead and
correctness of the per-leaf locking protocol.
"""

import threading
import time

import numpy as np

from repro import ConcurrentDILI, DILI
from repro.bench import print_table
from repro.data import split_initial


def test_concurrent_wrapper(cache, scale, benchmark, capsys):
    keys = cache.keys("wikits")
    initial, pool = split_initial(keys, 0.5, seed=3)
    probes = cache.queries("wikits")[:2_000]

    plain = DILI()
    plain.bulk_load(initial)
    wrapped = ConcurrentDILI(stripes=128)
    wrapped.bulk_load(initial)

    def time_lookups(index):
        t0 = time.perf_counter()
        for key in probes:
            index.get(float(key))
        return (time.perf_counter() - t0) / len(probes) * 1e6

    plain_us = time_lookups(plain)
    wrapped_us = time_lookups(wrapped)

    # Multi-threaded churn: 4 writers + 2 readers, lossless.
    chunks = np.array_split(pool, 4)
    stop = threading.Event()
    errors: list[Exception] = []

    def writer(chunk):
        try:
            for key in chunk:
                assert wrapped.insert(float(key), "w")
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def reader():
        try:
            while not stop.is_set():
                for key in initial[::501]:
                    assert wrapped.get(float(key)) is not None
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(c,)) for c in chunks]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads[:4]:
        thread.join()
    stop.set()
    for thread in threads[4:]:
        thread.join()
    churn_s = time.perf_counter() - t0

    with capsys.disabled():
        print_table(
            f"Concurrent DILI (A.8), scale={scale.name}",
            ["Metric", "value"],
            [
                ["bare lookup (us)", plain_us],
                ["locked lookup (us)", wrapped_us],
                ["lock overhead", wrapped_us / plain_us],
                ["4w+2r churn (s)", churn_s],
                ["inserts applied", float(len(pool))],
            ],
            first_col_width=24,
        )

    assert not errors
    assert len(wrapped) == len(initial) + len(pool)
    wrapped.index.validate()
    # Striped locking should cost well under 10x a bare lookup.
    assert wrapped_us < plain_us * 10

    benchmark(wrapped.get, float(initial[77]))
