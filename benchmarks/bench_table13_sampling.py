"""Table 13 (Appendix A.7): sampling during BU-Tree construction.

Greedy merging can fit piece models on every second key; the paper
finds construction time drops noticeably while lookup time rises only
slightly.  Both claims are checked.
"""

import time

from repro import DILI, DiliConfig
from repro.bench import DATASETS, print_table
from repro.bench.harness import measure_lookup


def test_table13_sampling(cache, scale, benchmark, capsys):
    rows = []
    for dataset in DATASETS:
        keys = cache.keys(dataset)
        queries = cache.queries(dataset)
        cells = {}
        for label, sampling in (("DILI", False), ("DILI-W-Sampling", True)):
            index = DILI(DiliConfig(sampling=sampling))
            t0 = time.perf_counter()
            index.bulk_load(keys)
            build_s = time.perf_counter() - t0
            ns, _, _ = measure_lookup(index, queries, scale)
            cells[label] = (ns, build_s)
        rows.append(
            [
                dataset,
                cells["DILI"][0],
                cells["DILI-W-Sampling"][0],
                cells["DILI"][1],
                cells["DILI-W-Sampling"][1],
            ]
        )
        # "the lookup time of the DILI with sampling is only slightly
        # larger than that of the ordinary DILI"
        assert cells["DILI-W-Sampling"][0] <= cells["DILI"][0] * 1.35, (
            dataset,
            cells,
        )
    with capsys.disabled():
        print_table(
            f"Table 13: sampling strategy, scale={scale.name}",
            [
                "Dataset",
                "lookup (ns)",
                "sampled (ns)",
                "build (s)",
                "sampled build (s)",
            ],
            rows,
        )

    index = DILI(DiliConfig(sampling=True))
    benchmark(index.bulk_load, cache.keys("logn")[:5000])
