"""Table 11 (Appendix A.5): step breakdown -- DILI vs RadixSpline.

RS's Step-1 is the radix-table probe plus the spline-segment search and
interpolation; Step-2 is the error-bounded search in the data.  The
paper finds RS's Step-1 consistently more expensive than DILI's, making
RS slower overall despite small Step-2 costs.
"""

from repro.bench import DATASETS, print_table


def test_table11_rs_breakdown(cache, scale, benchmark, capsys):
    rows = []
    results = {}
    for dataset in DATASETS:
        for label, method in (("RS", "RS(L)"), ("DILI", "DILI")):
            ns, _, phases = cache.lookup_result(method, dataset)
            step1 = phases.get("step1", 0.0)
            step2 = phases.get("step2", 0.0)
            results[(dataset, label)] = (step1, step2, ns)
            rows.append([f"{dataset}/{label}", step1, step2, ns])
    with capsys.disabled():
        print_table(
            f"Table 11: DILI vs RS step breakdown (ns), "
            f"scale={scale.name}",
            ["Dataset/Model", "Step-1", "Step-2", "Total"],
            rows,
        )

    # RS pays more in Step-1 than DILI on every dataset (Table 11).
    for dataset in DATASETS:
        assert (
            results[(dataset, "RS")][0] > results[(dataset, "DILI")][0]
        ), dataset

    index = cache.index("RS(L)", "logn")
    benchmark(index.get, float(cache.keys("logn")[17]))
