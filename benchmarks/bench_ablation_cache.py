"""Ablation: sensitivity to the simulated LL-cache size.

DESIGN.md sizes the simulated cache at ~1% of the pair bytes to match
the paper's machine-to-data ratio.  This ablation sweeps the cache from
an eighth to eight times that default and checks the conclusion that
matters -- DILI's lead over LIPP and B+Tree -- holds across the sweep,
i.e. the headline result is not an artifact of the chosen cache size.
"""

from repro.bench import print_table
from repro.bench.harness import GHZ
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer

METHODS = ["B+Tree(32)", "LIPP", "DILI"]


def _measure(index, queries, lines):
    tracer = CostTracer(CacheSimulator(lines))
    split = len(queries) // 3
    for key in queries[:split]:
        index.get(float(key), tracer)
    tracer.reset_counters()
    for key in queries[split:]:
        index.get(float(key), tracer)
    return tracer.total_cycles / GHZ / max(len(queries) - split, 1)


def test_ablation_cache_size(cache, scale, benchmark, capsys):
    queries = cache.queries("fb")
    base = scale.cache_lines
    factors = [0.125, 0.5, 1.0, 2.0, 8.0]
    rows = {m: [m] for m in METHODS}
    results = {}
    for factor in factors:
        lines = max(64, int(base * factor))
        for method in METHODS:
            index = cache.index(method, "fb")
            ns = _measure(index, queries, lines)
            results[(method, factor)] = ns
            rows[method].append(ns)
    table_rows = [rows[m] for m in METHODS]
    with capsys.disabled():
        print_table(
            f"Ablation: simulated cache size on FB (lookup ns), "
            f"scale={scale.name}",
            ["Method"] + [f"{f}x" for f in factors],
            table_rows,
        )

    for factor in factors:
        assert (
            results[("DILI", factor)] < results[("B+Tree(32)", factor)]
        ), factor
        assert (
            results[("DILI", factor)]
            < results[("LIPP", factor)] * 1.15
        ), factor

    index = cache.index("DILI", "fb")
    benchmark(index.get, float(cache.keys("fb")[23]))
