"""Table 7: effect of the decay-rate hyperparameter rho.

Builds DILI on the FB dataset with rho in {0.05, 0.1, 0.2, 0.5} and
reports lookup time, memory and average height.  The paper's finding to
verify: rho has little influence -- lookup times within a few percent
and near-identical structure.
"""

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.bench.harness import measure_lookup
from repro.core.stats import tree_stats

RHOS = [0.05, 0.1, 0.2, 0.5]


def test_table7_rho_effect(cache, scale, benchmark, capsys):
    keys = cache.keys("fb")
    queries = cache.queries("fb")
    rows = []
    lookups = []
    for rho in RHOS:
        index = DILI(DiliConfig(rho=rho))
        index.bulk_load(keys)
        ns, _, _ = measure_lookup(index, queries, scale)
        st = tree_stats(index)
        lookups.append(ns)
        rows.append([f"rho={rho}", ns, st.memory_bytes / 1e6, st.avg_height])
    with capsys.disabled():
        print_table(
            f"Table 7: effect of rho on FB, scale={scale.name}",
            ["Param", "lookup (ns)", "memory (MB)", "avg height"],
            rows,
        )

    # "the value of rho has little influence": spread under 25%.
    assert max(lookups) <= min(lookups) * 1.25, lookups

    index = DILI(DiliConfig(rho=0.1))
    index.bulk_load(keys)
    benchmark(index.get, float(keys[99]))
