"""Table 8: effect of the adjustment threshold lambda.

Protocol: build DILI on half the FB dataset, insert the other half with
lambda in {1.5, 2, 4, 8}, then measure lookups.  The paper's finding:
insertion and lookup performance are almost insensitive to lambda, with
lambda = 2 marginally best.
"""

import time

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.bench.harness import measure_lookup
from repro.core.stats import tree_stats
from repro.data import split_initial

LAMBDAS = [1.5, 2.0, 4.0, 8.0]


def test_table8_lambda_effect(cache, scale, benchmark, capsys):
    keys = cache.keys("fb")
    queries = cache.queries("fb")
    initial, pool = split_initial(keys, 0.5, seed=3)
    rows = []
    lookups = []
    for lam in LAMBDAS:
        index = DILI(DiliConfig(lambda_adjust=lam))
        index.bulk_load(initial)
        t0 = time.perf_counter()
        for key in pool:
            index.insert(float(key), "w")
        insert_us = (time.perf_counter() - t0) / len(pool) * 1e6
        ns, _, _ = measure_lookup(index, queries, scale)
        st = tree_stats(index)
        lookups.append(ns)
        rows.append(
            [
                f"lambda={lam}",
                insert_us,
                ns,
                st.memory_bytes / 1e6,
                st.avg_height,
                index.adjustment_count,
            ]
        )
    with capsys.disabled():
        print_table(
            f"Table 8: effect of lambda on FB, scale={scale.name}",
            [
                "Param",
                "insert (us)",
                "lookup (ns)",
                "memory (MB)",
                "avg height",
                "adjustments",
            ],
            rows,
        )

    # "insertion performance of DILI is almost not influenced by lambda".
    assert max(lookups) <= min(lookups) * 1.3, lookups

    index = DILI(DiliConfig(lambda_adjust=2.0))
    index.bulk_load(initial)
    benchmark(index.insert, float(pool[0]), "bench")
