"""Fig. 9a (Appendix A.1): read-only throughput vs data cardinality.

The paper initializes each index with 50/100/150/200M FB keys; this
bench scales those to fractions of the benchmark scale.  Expected
shape: DILI keeps the highest throughput as cardinality grows.
"""

from repro.bench import make_index, print_table
from repro.bench.harness import measure_lookup, query_sample
from repro.data import load_dataset

METHODS = ["B+Tree(32)", "RMI(L)", "ALEX(1MB)", "LIPP", "DILI"]
FRACTIONS = [0.25, 0.5, 0.75, 1.0]


def test_fig9a_scalability(cache, scale, benchmark, capsys):
    sizes = [max(int(scale.num_keys * f), 10_000) for f in FRACTIONS]
    rows = {m: [m] for m in METHODS}
    dili_by_size = {}
    for size in sizes:
        keys = load_dataset("fb", size, seed=7)
        queries = query_sample(keys, scale.num_queries)
        for method in METHODS:
            index = make_index(method)
            index.bulk_load(keys)
            ns, _, _ = measure_lookup(index, queries, scale)
            mops = 1e3 / ns  # 1e9 ns/s / ns -> ops/s, scaled to Mops
            rows[method].append(mops)
            if method == "DILI":
                dili_by_size[size] = mops
    table_rows = [rows[m] for m in METHODS]
    with capsys.disabled():
        print_table(
            f"Fig. 9a: read-only throughput (Mops) vs cardinality on FB, "
            f"scale={scale.name}",
            ["Method"] + [f"n={s}" for s in sizes],
            table_rows,
        )

    by_method = {r[0]: r[1:] for r in table_rows}
    for i in range(len(sizes)):
        assert by_method["DILI"][i] >= max(
            by_method[m][i] for m in METHODS if m != "DILI"
        ) * 0.85, f"DILI not on top at n={sizes[i]}"

    index = cache.index("DILI", "fb")
    benchmark(index.get, float(cache.keys("fb")[1]))
