"""Omega sweep (Section 7.5, "Effects of omega").

The paper observes that varying the fanout cap omega between 1024 and
8192 leaves DILI's node layout essentially unchanged, so lookup
performance barely moves.  Verified here on FB.
"""

from repro import DILI, DiliConfig
from repro.bench import print_table
from repro.bench.harness import measure_lookup
from repro.core.stats import tree_stats

OMEGAS = [1024, 2048, 4096, 8192]


def test_omega_effect(cache, scale, benchmark, capsys):
    keys = cache.keys("fb")
    queries = cache.queries("fb")
    rows = []
    lookups = []
    for omega in OMEGAS:
        index = DILI(DiliConfig(omega=omega))
        index.bulk_load(keys)
        ns, _, _ = measure_lookup(index, queries, scale)
        st = tree_stats(index)
        lookups.append(ns)
        rows.append([f"omega={omega}", ns, st.avg_height, st.leaf_nodes])
    with capsys.disabled():
        print_table(
            f"Omega sweep on FB, scale={scale.name}",
            ["Param", "lookup (ns)", "avg height", "leaf nodes"],
            rows,
        )

    # "as long as omega is large enough, it slightly influences the
    # performance": spread bounded.
    assert max(lookups) <= min(lookups) * 1.4, lookups

    index = DILI(DiliConfig(omega=2048))
    index.bulk_load(keys)
    benchmark(index.get, float(keys[7]))
