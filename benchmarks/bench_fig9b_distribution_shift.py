"""Fig. 9b (Appendix A.2): inserting keys from a different distribution.

Protocol: bulk load the FB dataset, then insert Logn-distributed keys
mapped into a comparable magnitude, interleaved with lookups (Read-Heavy
and Write-Heavy mixes).  The paper's finding: DILI keeps a clear lead on
Read-Heavy but ALEX can edge it on Write-Heavy, because out-of-
distribution inserts trigger extra conflicts and adjustments in DILI.
"""

import numpy as np

from repro.bench import make_index, print_table
from repro.data import load_dataset
from repro.workloads.generator import NAMED_SPECS, make_workload
from repro.workloads.runner import run_workload

METHODS = ["B+Tree(32)", "ALEX(1MB)", "LIPP", "DILI"]
WORKLOADS = ["Read-Heavy", "Write-Heavy"]


def test_fig9b_distribution_shift(cache, scale, benchmark, capsys):
    base = cache.keys("fb")
    foreign = load_dataset("logn", scale.num_keys // 2, seed=21)
    # Rescale the foreign keys into the body of the FB key range so the
    # two distributions overlap (integer keys, distinct from base).
    span = float(base[int(len(base) * 0.95)]) - float(base[0])
    src_span = float(foreign[-1]) - float(foreign[0])
    mapped = np.floor(
        float(base[0]) + (foreign - float(foreign[0])) / src_span * span
    )
    pool = np.setdiff1d(np.unique(mapped), base)
    total_ops = max(scale.num_queries * 3, 9_000)
    rows = []
    results = {}
    for method in METHODS:
        row = [method]
        for wl_name in WORKLOADS:
            spec = NAMED_SPECS[wl_name].scaled(total_ops)
            if spec.inserts > len(pool):
                spec = NAMED_SPECS[wl_name].scaled(
                    int(len(pool) * 1.5)
                )
            index = make_index(method)
            index.bulk_load(base)
            ops = make_workload(spec, base, pool, seed=17)
            result = run_workload(
                index, ops, name=wl_name, cache_lines=scale.cache_lines
            )
            results[(method, wl_name)] = result.sim_mops
            row.append(result.sim_mops)
        rows.append(row)
    with capsys.disabled():
        print_table(
            f"Fig. 9b: throughput with distribution shift "
            f"(FB base, Logn inserts; Mops), scale={scale.name}",
            ["Method"] + WORKLOADS,
            rows,
        )

    # Read-Heavy: DILI keeps a clear lead over B+Tree.
    assert (
        results[("DILI", "Read-Heavy")]
        > results[("B+Tree(32)", "Read-Heavy")]
    )

    index = cache.index("DILI", "fb")
    benchmark(index.get, float(base[0]))
