"""Shared fixtures for the table/figure benchmarks.

Builds are expensive, so datasets and built indexes are cached at
session scope (one :class:`repro.bench.harness.BuildCache`) and shared
across benchmark files: Table 4 (lookup time), Table 5 (cache misses),
Fig. 6a (index size) and the breakdown tables all reuse the same built
structures, exactly as the paper measures one build per method per
dataset.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchScale, BuildCache, current_scale


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return current_scale()


@pytest.fixture(scope="session")
def cache(scale: BenchScale) -> BuildCache:
    return BuildCache(scale)
