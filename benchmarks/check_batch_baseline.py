"""Regression gate for the vectorized batch read and write paths.

Compares the current tree against ``BENCH_baseline.json`` (committed at
the repository root) and exits non-zero when any of

* the *simulated* lookup cost of the traced batch path regresses by
  more than 2% on any dataset (the simulation is deterministic, so this
  catches real cost-model or descent changes, not machine noise),
* the wall-clock speedup of ``get_batch`` over the scalar ``get`` loop
  drops below 5x at 10^5 keys on any dataset (generous against runner
  jitter; the measured margin is typically >10x),
* the serving-state speedup of ``insert_batch`` over the scalar
  ``insert`` loop (both keeping the compiled flat plan consistent)
  drops below 5x, or its traced simulated cost diverges by even one
  cycle from the scalar loop's, or
* a mixed read/write workload performs *any* full plan recompile --
  the incremental-maintenance invariant: every write batch must keep
  the plan alive through patches and subtree splices alone, or
* ``MmapDILI`` open latency over a published plan of 10^5 keys exceeds
  5x the committed ``open_ms`` baseline (with an absolute 25 ms floor
  against runner jitter) -- the O(1)-open invariant: opening a plan
  verifies a framed header and memory-maps buffers, it never
  deserializes them, or
* the epoch-pinned concurrent read path loses its win: any wrong read
  or lost writer insert (always fatal), a contention speedup -- 4
  lock-free readers vs the same readers forced through ``exclusive()``
  while a writer churns the tree -- below 2.5x, zero plan publishes or
  epoch pins during the contended run, or (only on machines with >= 4
  CPUs, where thread scaling is physically possible under CPython) a
  4-reader/1-reader throughput ratio below 2.5x, or
* the sharded multi-process serving path loses its win: any wrong
  read through the coordinator (always fatal), per-shard distribution
  tuning failing to beat the single best global config on the
  mixed-distribution keyset (the comparison is simulated, hence
  deterministic), or (only on machines with >= 2 CPUs, where process
  scaling is physically possible) batch-get throughput at 2 worker
  processes below 1.7x the 1-worker throughput through the identical
  coordinator/pipe stack.

Regenerate the baseline after an intentional cost change with::

    PYTHONPATH=src python benchmarks/check_batch_baseline.py --write
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.bench.harness import (
    MAIN_DATASETS,
    SCALES,
    BuildCache,
    measure_batch_lookup,
    measure_batch_write,
    measure_concurrent_read_scaling,
    measure_mixed_workload,
)

BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_baseline.json"

SCALE = "medium"  # 10^5 keys, the acceptance-criteria scale
QUERIES = 100_000
SIM_TOLERANCE = 0.02
MIN_SPEEDUP = 5.0
MIN_WRITE_SPEEDUP = 5.0
MAX_FULL_RECOMPILES = 0
MIXES = [("95/5", 0.05), ("80/20", 0.20), ("50/50", 0.50)]
OPEN_FACTOR = 5.0
OPEN_FLOOR_MS = 25.0
MIN_CONTENTION_SPEEDUP = 2.5
MIN_SCALING_4 = 2.5  # gated only where >= 4 CPUs make it measurable
MIN_SHARD_SCALING_2 = 1.7  # gated only where >= 2 CPUs make it measurable


def measure_sharded() -> dict:
    """Sharded multi-process throughput scaling + tuning comparison."""
    from repro.bench.harness import (
        measure_shard_tuning,
        measure_sharded_throughput,
        mixed_distribution_keys,
    )

    m = measure_sharded_throughput(mixed_distribution_keys(60_000))
    t = measure_shard_tuning()
    return {
        "worker_counts": list(m.worker_counts),
        "ops_per_s": {
            str(n): round(v) for n, v in m.ops_per_s.items()
        },
        "scaling_2": round(m.scaling_2, 2),
        "wrong_reads": m.wrong_reads,
        "num_keys": m.num_keys,
        "batch": m.batch,
        "cpu_count": m.cpu_count,
        "tuning": {
            "num_shards": t.num_shards,
            "local_cycles_per_op": round(t.local_cycles_per_op, 2),
            "global_cycles_per_op": round(t.global_cycles_per_op, 2),
            "gain_pct": round(t.gain_pct, 2),
            "local_configs": [list(c) for c in t.local_configs],
            "global_config": list(t.global_config),
        },
    }


def measure_plan_store(cache: BuildCache) -> dict:
    """Publish the logn plan and time ``MmapDILI`` open (best of 5)."""
    import tempfile
    import time

    from repro.durability.durable import DurableDILI

    keys = cache.keys("logn")
    with tempfile.TemporaryDirectory() as tmp:
        durable = DurableDILI(tmp, sync=False)
        durable.bulk_load(keys)
        t0 = time.perf_counter()
        durable.publish_plan()
        publish_ms = (time.perf_counter() - t0) * 1e3
        open_ms = float("inf")
        rung = None
        for _ in range(5):
            t0 = time.perf_counter()
            served = durable.serve_mmap()
            open_ms = min(open_ms, (time.perf_counter() - t0) * 1e3)
            rung = served.rung
            served.close()
        durable.close()
    return {
        "keys": len(keys),
        "publish_ms": round(publish_ms, 2),
        "open_ms": round(open_ms, 3),
        "rung": rung,
    }


def measure() -> dict:
    from repro.bench.harness import DATASETS, query_sample

    scale = SCALES[SCALE]
    cache = BuildCache(scale)
    out: dict[str, dict] = {}
    for dataset in DATASETS:
        index = cache.index("DILI", dataset)
        queries = query_sample(cache.keys(dataset), QUERIES)
        m = measure_batch_lookup(index, queries, scale)
        out[dataset] = {
            "sim_ns_per_op": round(m.sim_ns_per_op, 4),
            "sim_misses_per_op": round(m.sim_misses_per_op, 6),
            "scalar_ms": round(m.scalar_s * 1e3, 2),
            "batch_ms": round(m.batch_s * 1e3, 2),
            "speedup": round(m.speedup, 2),
        }
    writes: dict[str, dict] = {}
    for dataset in MAIN_DATASETS:
        w = measure_batch_write(cache.keys(dataset), scale)
        writes[dataset] = {
            "scalar_ms": round(w.scalar_s * 1e3, 2),
            "batch_ms": round(w.batch_s * 1e3, 2),
            "speedup": round(w.speedup, 2),
            "tree_speedup": round(w.tree_speedup, 2),
            "sim_parity": bool(w.sim_parity),
        }
    mixed: dict[str, dict] = {}
    for name, frac in MIXES:
        x = measure_mixed_workload(cache.keys("logn"), write_fraction=frac)
        mixed[name] = {
            "ops": x.ops,
            "wall_mops": round(x.wall_mops, 3),
            "patches": x.patches,
            "subtree_recompiles": x.subtree_recompiles,
            "full_recompiles": x.full_recompiles,
            "plan_alive": bool(x.plan_alive),
        }
    r = measure_concurrent_read_scaling(cache.keys("logn"))
    scaling = {
        "threads": list(r.thread_counts),
        "ops_per_s": {
            str(n): round(v) for n, v in r.ops_per_s.items()
        },
        "scaling_4": round(r.scaling_4, 2),
        "contention_lockfree_ops": round(r.contention_lockfree_ops),
        "contention_locked_ops": round(r.contention_locked_ops),
        "contention_speedup": round(r.contention_speedup, 2),
        "wrong_reads": r.wrong_reads,
        "lost_updates": r.lost_updates,
        "plan_publishes": r.plan_publishes,
        "epoch_pins": r.epoch_pins,
        "cpu_count": r.cpu_count,
    }
    return {
        "scale": SCALE,
        "num_keys": scale.num_keys,
        "num_queries": QUERIES,
        "datasets": out,
        "batch_write": writes,
        "mixed": mixed,
        "plan_store": measure_plan_store(cache),
        "concurrent_read_scaling": scaling,
        "sharded_throughput": measure_sharded(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write",
        action="store_true",
        help="overwrite BENCH_baseline.json with current measurements",
    )
    args = parser.parse_args(argv)

    current = measure()
    if args.write:
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures: list[str] = []
    for dataset, want in baseline["datasets"].items():
        got = current["datasets"][dataset]
        limit = want["sim_ns_per_op"] * (1.0 + SIM_TOLERANCE)
        if got["sim_ns_per_op"] > limit:
            failures.append(
                f"{dataset}: simulated cost regressed "
                f"{want['sim_ns_per_op']:.1f} -> "
                f"{got['sim_ns_per_op']:.1f} ns/op (>{SIM_TOLERANCE:.0%})"
            )
        if got["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"{dataset}: batch speedup {got['speedup']:.1f}x "
                f"below the {MIN_SPEEDUP:.0f}x floor "
                f"(baseline {want['speedup']:.1f}x)"
            )
        print(
            f"{dataset}: sim {got['sim_ns_per_op']:.1f} ns/op "
            f"(baseline {want['sim_ns_per_op']:.1f}), "
            f"speedup {got['speedup']:.1f}x "
            f"(baseline {want['speedup']:.1f}x)"
        )
    for dataset, want in baseline.get("batch_write", {}).items():
        got = current["batch_write"][dataset]
        if got["speedup"] < MIN_WRITE_SPEEDUP:
            failures.append(
                f"{dataset}: batch write speedup {got['speedup']:.1f}x "
                f"below the {MIN_WRITE_SPEEDUP:.0f}x floor "
                f"(baseline {want['speedup']:.1f}x)"
            )
        if not got["sim_parity"]:
            failures.append(
                f"{dataset}: traced insert_batch cost diverged from "
                "the scalar loop (must match cycle-for-cycle)"
            )
        print(
            f"{dataset}: write speedup {got['speedup']:.1f}x "
            f"(baseline {want['speedup']:.1f}x), "
            f"sim parity {'yes' if got['sim_parity'] else 'NO'}"
        )
    for mix, want in baseline.get("mixed", {}).items():
        got = current["mixed"][mix]
        if got["full_recompiles"] > MAX_FULL_RECOMPILES:
            failures.append(
                f"{mix}: {got['full_recompiles']} full plan recompiles "
                f"(ceiling {MAX_FULL_RECOMPILES}; every write batch "
                "must keep the plan alive via patches/splices)"
            )
        if not got["plan_alive"]:
            failures.append(f"{mix}: a write batch dropped the plan")
        print(
            f"{mix}: full recompiles {got['full_recompiles']} "
            f"(ceiling {MAX_FULL_RECOMPILES}), "
            f"patches {got['patches']}, "
            f"subtree splices {got['subtree_recompiles']}"
        )
    want_plan = baseline.get("plan_store")
    if want_plan is not None:
        got = current["plan_store"]
        limit = max(want_plan["open_ms"] * OPEN_FACTOR, OPEN_FLOOR_MS)
        if got["open_ms"] > limit:
            failures.append(
                f"plan_store: open latency {got['open_ms']:.2f} ms over a "
                f"{got['keys']:,}-key plan exceeds {limit:.1f} ms "
                f"(baseline {want_plan['open_ms']:.2f} ms; open must stay "
                f"O(1) -- header verify + mmap, no deserialization)"
            )
        if got["rung"] != 1:
            failures.append(
                f"plan_store: freshly published plan served from rung "
                f"{got['rung']}, not rung 1 (the mmap fast path)"
            )
        print(
            f"plan_store: open {got['open_ms']:.2f} ms at "
            f"{got['keys']:,} keys (baseline {want_plan['open_ms']:.2f}, "
            f"limit {limit:.1f}), publish {got['publish_ms']:.1f} ms, "
            f"rung {got['rung']}"
        )
    if baseline.get("concurrent_read_scaling") is not None:
        got = current["concurrent_read_scaling"]
        if got["wrong_reads"] != 0:
            failures.append(
                f"concurrent: {got['wrong_reads']} wrong reads -- a "
                "lock-free batch read returned a value inconsistent "
                "with the loaded data"
            )
        if got["lost_updates"] != 0:
            failures.append(
                f"concurrent: {got['lost_updates']} writer inserts "
                "lost while lock-free readers ran"
            )
        if got["contention_speedup"] < MIN_CONTENTION_SPEEDUP:
            failures.append(
                f"concurrent: contention speedup "
                f"{got['contention_speedup']:.2f}x below the "
                f"{MIN_CONTENTION_SPEEDUP}x floor (epoch-pinned reads "
                "vs exclusive-locked reads under a churning writer)"
            )
        if got["plan_publishes"] < 1 or got["epoch_pins"] < 1:
            failures.append(
                "concurrent: contended run exercised no plan "
                f"publication (publishes {got['plan_publishes']}, "
                f"pins {got['epoch_pins']}) -- the lock-free path "
                "was not actually taken"
            )
        many_cpus = (os.cpu_count() or 1) >= 4
        if many_cpus and got["scaling_4"] < MIN_SCALING_4:
            failures.append(
                f"concurrent: 4-reader scaling {got['scaling_4']:.2f}x "
                f"below the {MIN_SCALING_4}x floor on a "
                f"{os.cpu_count()}-CPU machine"
            )
        scaling_note = (
            f"scaling_4 {got['scaling_4']:.2f}x"
            + ("" if many_cpus else
               f" (not gated: {got['cpu_count']} CPU)")
        )
        print(
            f"concurrent: contention speedup "
            f"{got['contention_speedup']:.2f}x "
            f"(floor {MIN_CONTENTION_SPEEDUP}x), {scaling_note}, "
            f"wrong reads {got['wrong_reads']}, "
            f"lost updates {got['lost_updates']}, "
            f"publishes {got['plan_publishes']}, "
            f"pins {got['epoch_pins']}"
        )
    if baseline.get("sharded_throughput") is not None:
        got = current["sharded_throughput"]
        if got["wrong_reads"] != 0:
            failures.append(
                f"sharded: {got['wrong_reads']} wrong reads -- the "
                "coordinator returned a value inconsistent with the "
                "loaded data"
            )
        tuning = got["tuning"]
        if tuning["gain_pct"] <= 0.0:
            failures.append(
                f"sharded: per-shard tuning gain "
                f"{tuning['gain_pct']:.2f}% -- heterogeneous configs "
                "no longer beat the single global config on the "
                "mixed-distribution keyset (deterministic simulation)"
            )
        two_cpus = (os.cpu_count() or 1) >= 2
        if two_cpus and got["scaling_2"] < MIN_SHARD_SCALING_2:
            failures.append(
                f"sharded: 2-worker scaling {got['scaling_2']:.2f}x "
                f"below the {MIN_SHARD_SCALING_2}x floor on a "
                f"{os.cpu_count()}-CPU machine"
            )
        scaling_note = (
            f"scaling_2 {got['scaling_2']:.2f}x"
            + ("" if two_cpus else
               f" (not gated: {got['cpu_count']} CPU)")
        )
        print(
            f"sharded: {scaling_note}, "
            f"wrong reads {got['wrong_reads']}, "
            f"tuning gain {tuning['gain_pct']:.2f}% "
            f"(local {tuning['local_cycles_per_op']:.1f} vs global "
            f"{tuning['global_cycles_per_op']:.1f} cycles/op)"
        )
    if failures:
        print("\nBATCH BASELINE CHECK FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("batch baseline check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
