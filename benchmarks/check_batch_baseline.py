"""Regression gate for the vectorized batch read path.

Compares the current tree against ``BENCH_baseline.json`` (committed at
the repository root) and exits non-zero when either

* the *simulated* lookup cost of the traced batch path regresses by
  more than 2% on any dataset (the simulation is deterministic, so this
  catches real cost-model or descent changes, not machine noise), or
* the wall-clock speedup of ``get_batch`` over the scalar ``get`` loop
  drops below 5x at 10^5 keys on any dataset (generous against runner
  jitter; the measured margin is typically >10x).

Regenerate the baseline after an intentional cost change with::

    PYTHONPATH=src python benchmarks/check_batch_baseline.py --write
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import SCALES, BuildCache, measure_batch_lookup

BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_baseline.json"

SCALE = "medium"  # 10^5 keys, the acceptance-criteria scale
QUERIES = 100_000
SIM_TOLERANCE = 0.02
MIN_SPEEDUP = 5.0


def measure() -> dict:
    from repro.bench.harness import DATASETS, query_sample

    scale = SCALES[SCALE]
    cache = BuildCache(scale)
    out: dict[str, dict] = {}
    for dataset in DATASETS:
        index = cache.index("DILI", dataset)
        queries = query_sample(cache.keys(dataset), QUERIES)
        m = measure_batch_lookup(index, queries, scale)
        out[dataset] = {
            "sim_ns_per_op": round(m.sim_ns_per_op, 4),
            "sim_misses_per_op": round(m.sim_misses_per_op, 6),
            "scalar_ms": round(m.scalar_s * 1e3, 2),
            "batch_ms": round(m.batch_s * 1e3, 2),
            "speedup": round(m.speedup, 2),
        }
    return {
        "scale": SCALE,
        "num_keys": scale.num_keys,
        "num_queries": QUERIES,
        "datasets": out,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write",
        action="store_true",
        help="overwrite BENCH_baseline.json with current measurements",
    )
    args = parser.parse_args(argv)

    current = measure()
    if args.write:
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures: list[str] = []
    for dataset, want in baseline["datasets"].items():
        got = current["datasets"][dataset]
        limit = want["sim_ns_per_op"] * (1.0 + SIM_TOLERANCE)
        if got["sim_ns_per_op"] > limit:
            failures.append(
                f"{dataset}: simulated cost regressed "
                f"{want['sim_ns_per_op']:.1f} -> "
                f"{got['sim_ns_per_op']:.1f} ns/op (>{SIM_TOLERANCE:.0%})"
            )
        if got["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"{dataset}: batch speedup {got['speedup']:.1f}x "
                f"below the {MIN_SPEEDUP:.0f}x floor "
                f"(baseline {want['speedup']:.1f}x)"
            )
        print(
            f"{dataset}: sim {got['sim_ns_per_op']:.1f} ns/op "
            f"(baseline {want['sim_ns_per_op']:.1f}), "
            f"speedup {got['speedup']:.1f}x "
            f"(baseline {want['speedup']:.1f}x)"
        )
    if failures:
        print("\nBATCH BASELINE CHECK FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("batch baseline check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
