"""Mixed read/write workloads on the batched write path.

Not a paper table -- this benchmarks the repository's vectorized write
path (``DILI.insert_batch`` / ``delete_batch``) and the incremental
maintenance of the compiled flat read plan (``repro.core.flat``) under
the paper's Fig. 7 / Table 10 mixed-workload setting: batched reads
interleaved with batched writes against one serving index.

Two tables:

* batch-vs-scalar *writes*, in serving state (plan compiled and kept
  consistent per operation vs per batch) and tree-only;
* YCSB-style mixes (95/5, 80/20, 50/50) reporting wall-clock Mops and
  the plan-maintenance counters.  The key invariant -- asserted here
  and gated in CI (``benchmarks/check_batch_baseline.py``) -- is that
  the flat plan survives every write batch via patches and subtree
  splices: zero full recompiles between structural changes.

Indexes are built fresh from the cached datasets: write benchmarks
mutate their index, and the session-scoped ``BuildCache`` shares built
trees with the read benchmarks, so mutating those would poison them.
"""

from repro.bench.harness import (
    MAIN_DATASETS,
    measure_batch_write,
    measure_mixed_workload,
)
from repro.bench.reporting import format_table

MIXES = [("95/5", 0.05), ("80/20", 0.20), ("50/50", 0.50)]


def test_batch_write_speedup(cache, scale, benchmark, capsys):
    rows = []
    for dataset in MAIN_DATASETS:
        m = measure_batch_write(cache.keys(dataset), scale)
        rows.append([
            dataset,
            m.scalar_s * 1e3,
            m.batch_s * 1e3,
            m.speedup,
            m.tree_speedup,
            "yes" if m.sim_parity else "NO",
        ])
        # Serving state: per-op plan maintenance vs one amortized pass.
        assert m.speedup > 5.0, f"{dataset}: {m.speedup:.1f}x"
        # The traced batch path charges exactly the scalar loop's events.
        assert m.sim_parity, f"{dataset}: simulated cost diverged"
    with capsys.disabled():
        print("\n" + format_table(
            f"Batch vs scalar inserts ({scale.num_keys:,} keys, "
            "serving state)",
            ["Dataset", "scalar (ms)", "batch (ms)", "speedup x",
             "tree-only x", "sim parity"],
            rows,
        ) + "\n")

    keys = cache.keys("logn")
    benchmark(measure_batch_write, keys, scale, writes=64,
              parity_keys=5_000, parity_writes=200)


def test_mixed_workload_counters(cache, scale, capsys):
    rows = []
    for name, frac in MIXES:
        m = measure_mixed_workload(cache.keys("logn"), write_fraction=frac)
        rows.append([
            name,
            float(m.ops),
            m.wall_mops,
            float(m.patches),
            float(m.subtree_recompiles),
            float(m.full_recompiles),
        ])
        assert m.plan_alive, f"{name}: a write dropped the plan"
        # Zero full recompiles between structural changes: every write
        # batch kept the plan alive with patches + subtree splices.
        assert m.full_recompiles == 0, (
            f"{name}: {m.full_recompiles} full plan recompiles"
        )
    with capsys.disabled():
        print("\n" + format_table(
            f"Mixed workloads on logn ({scale.num_keys:,} keys, "
            "batched reads+writes)",
            ["Mix", "ops", "wall Mops", "patches", "subtree rec",
             "full rec"],
            rows,
        ) + "\n")
