"""Fig. 6b: short range queries (< 100 keys per range).

The paper issues random short ranges after bulk loading: a lower-bound
search plus a scan.  Per the figure's takeaway, DILI's advantage shrinks
here (its entry arrays hold gaps and mixed entry types) and DILI-LO
overtakes DILI thanks to dense leaf arrays, while B+Tree's chained
leaves keep it competitive.  Wall-clock time is used for the scan
because scan cost is dominated by per-pair iteration rather than by
cache geometry.
"""

import time

import numpy as np

from repro.bench import print_table

METHODS = [
    "B+Tree(32)",
    "PGM",
    "ALEX(1MB)",
    "LIPP",
    "DILI-LO",
    "DILI",
]
RANGE_LEN = 64  # "less than 100 keys in a range"


def test_fig6b_short_ranges(cache, scale, benchmark, capsys):
    rng = np.random.default_rng(5)
    rows = []
    per_method_us: dict[str, float] = {}
    for method in METHODS:
        row = [method]
        for dataset in ["fb", "wikits", "logn"]:
            keys = cache.keys(dataset)
            index = cache.index(method, dataset)
            starts = rng.integers(0, len(keys) - RANGE_LEN - 1, size=300)
            bounds = [
                (float(keys[s]), float(keys[s + RANGE_LEN])) for s in starts
            ]
            t0 = time.perf_counter()
            total = 0
            for lo, hi in bounds:
                total += len(index.range_query(lo, hi))
            elapsed = (time.perf_counter() - t0) / len(bounds) * 1e6
            assert total == RANGE_LEN * len(bounds)
            row.append(elapsed)
            per_method_us.setdefault(method, elapsed)
        rows.append(row)
    with capsys.disabled():
        print_table(
            f"Fig. 6b: avg short-range query time (us wall-clock, "
            f"{RANGE_LEN} keys), scale={scale.name}",
            ["Method", "fb", "wikits", "logn"],
            rows,
        )

    index = cache.index("DILI", "logn")
    keys = cache.keys("logn")
    lo, hi = float(keys[1000]), float(keys[1000 + RANGE_LEN])
    benchmark(index.range_query, lo, hi)
