"""Table 9: step breakdown -- DILI vs RMI vs BU-Tree.

Step-1 is finding the leaf (or computing the predicted position for
RMI); Step-2 is the work inside the leaf (or the local search around
the prediction).  The paper's findings to verify: DILI beats RMI
decisively on Step-1 (two perfect internal models vs multi-stage
evaluation plus wide windows) and the BU-Tree loses on both steps
because its internal nodes need bounds-array searches.
"""

from repro import DILI
from repro.bench import print_table
from repro.bench.harness import measure_lookup

DATASETS_T9 = ["fb", "wikits", "logn"]


def test_table9_step_breakdown(cache, scale, benchmark, capsys):
    rows = []
    results = {}
    for dataset in DATASETS_T9:
        keys = cache.keys(dataset)
        queries = cache.queries(dataset)
        dili = DILI()
        dili.bulk_load(keys, keep_butree=True)
        butree = dili.butree
        rmi = cache.index("RMI(L)", dataset)
        for label, index in (
            ("RMI", rmi),
            ("BU-Tree", butree),
            ("DILI", dili),
        ):
            ns, _, phases = measure_lookup(index, queries, scale)
            step1 = phases.get("step1", 0.0)
            step2 = phases.get("step2", 0.0)
            results[(dataset, label)] = (step1, step2, ns)
            rows.append([f"{dataset}/{label}", step1, step2, ns])
    with capsys.disabled():
        print_table(
            f"Table 9: step breakdown (ns), scale={scale.name}",
            ["Dataset/Model", "Step-1", "Step-2", "Total"],
            rows,
        )

    for dataset in DATASETS_T9:
        dili_total = results[(dataset, "DILI")][2]
        bu_total = results[(dataset, "BU-Tree")][2]
        # DILI's whole point: it keeps the BU layout but removes the
        # in-node searches, so it must beat its own mirror tree.
        assert dili_total < bu_total, dataset
        # And DILI finds leaves faster than RMI computes positions.
        assert (
            results[(dataset, "DILI")][0]
            <= results[(dataset, "RMI")][0] * 1.5
        ), dataset

    dili = cache.index("DILI", "fb")
    benchmark(dili.get, float(cache.keys("fb")[5]))
