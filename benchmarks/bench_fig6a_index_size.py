"""Fig. 6a: index memory cost of all representative methods.

Modelled C++ footprints in MB.  Shape to verify against the figure:
RMI/RS smallest (model-only), B+Tree/PGM around the raw pair size, DILI
above them (local-optimization slack), LIPP far above everything, and
DILI-LO back down to B+Tree territory.
"""

from repro.bench import DATASETS
from repro.bench.experiments import index_sizes


def test_fig6a_index_size(cache, scale, benchmark, capsys):
    result = index_sizes(cache)
    with capsys.disabled():
        print("\n" + result.to_text() + "\n")

    for dataset in DATASETS:
        # RMI and RS store only models: smallest footprint.
        assert result.cell("RMI(L)", dataset) < result.cell(
            "DILI", dataset
        ), dataset
        # LIPP pays the largest footprint (conflict nesting + gaps).
        assert result.cell("LIPP", dataset) > result.cell(
            "DILI", dataset
        ), dataset
        # Disabling local optimization brings DILI down near B+Tree.
        assert result.cell("DILI-LO", dataset) < result.cell(
            "DILI", dataset
        ), dataset

    benchmark(cache.index("DILI", "fb").memory_bytes)
