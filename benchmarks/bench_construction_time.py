"""Construction-time comparison (Section 7.2, "Offline Construction").

The paper reports bulk-loading 100M keys takes < 1 min for B+Tree,
~2 min for ALEX, < 1 min for LIPP and ~6 min for DILI, growing roughly
linearly with data size.  Check the shape: DILI is the slowest build
(its greedy merging dominates) and build time grows close to linearly.
"""

import time

from repro.bench import make_index, print_table
from repro.data import load_dataset

METHODS = ["B+Tree(32)", "ALEX(1MB)", "LIPP", "DILI"]


def test_construction_time(cache, scale, benchmark, capsys):
    sizes = [scale.num_keys // 2, scale.num_keys]
    rows = {m: [m] for m in METHODS}
    times = {}
    for size in sizes:
        keys = load_dataset("fb", size, seed=7)
        for method in METHODS:
            index = make_index(method)
            t0 = time.perf_counter()
            index.bulk_load(keys)
            elapsed = time.perf_counter() - t0
            times[(method, size)] = elapsed
            rows[method].append(elapsed)
    table_rows = [rows[m] for m in METHODS]
    with capsys.disabled():
        print_table(
            f"Construction time (s) on FB, scale={scale.name}",
            ["Method"] + [f"n={s}" for s in sizes],
            table_rows,
        )

    full = scale.num_keys
    # DILI is the most expensive build, as in the paper (6 min vs <= 2).
    assert times[("DILI", full)] >= times[("B+Tree(32)", full)]
    assert times[("DILI", full)] >= times[("LIPP", full)]
    # Roughly linear growth: doubling n costs < 3.5x.
    assert (
        times[("DILI", full)] <= times[("DILI", full // 2)] * 3.5
    )

    keys_small = load_dataset("fb", 5_000, seed=7)

    def build():
        index = make_index("DILI")
        index.bulk_load(keys_small)

    benchmark(build)
