"""Table 4: lookup time (ns) of all methods after bulk loading.

Reproduces the full matrix -- every B+Tree node size, every ALEX node
budget, both RMI and RS configurations, plus the DILI-LO ablation --
over the five datasets.  Values are simulated nanoseconds per point
query under the cycle/cache model; compare *ratios between methods*,
not absolute numbers, with the paper (see EXPERIMENTS.md).
"""

from repro.bench import DATASETS, method_names
from repro.bench.experiments import lookup_times


def test_table4_lookup_time(cache, scale, benchmark, capsys):
    result = lookup_times(cache)
    with capsys.disabled():
        print("\n" + result.to_text() + "\n")

    # The headline claim: DILI has the lowest lookup time everywhere.
    for dataset in DATASETS:
        dili = result.cell("DILI", dataset)
        competitors = [
            result.cell(method, dataset)
            for method in method_names()
            if method != "DILI"
        ]
        assert dili <= min(competitors) * 1.25, (
            f"DILI not competitive on {dataset}: {dili:.0f}ns vs best "
            f"competitor {min(competitors):.0f}ns"
        )

    # Wall-clock single lookup for pytest-benchmark's own table.
    index = cache.index("DILI", "fb")
    key = float(cache.keys("fb")[12345])
    benchmark(index.get, key)
