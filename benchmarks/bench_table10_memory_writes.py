"""Table 10 (Appendix A.4): memory cost before/after heavy insertions.

Protocol: bulk load half the dataset, insert the other half, measure
the footprint at both points.  Expected shape: B+Tree/MassTree/PGM
smallest, ALEX and DILI comparable in the middle, LIPP far above all.
"""

from repro.bench import make_index, print_table
from repro.data import split_initial

METHODS = ["B+Tree(32)", "MassTree", "PGM-dyn", "ALEX(1MB)", "LIPP", "DILI"]


def _make(method: str):
    return make_index("DynPGM" if method == "PGM-dyn" else method)


def test_table10_memory_after_writes(cache, scale, benchmark, capsys):
    rows = []
    after = {}
    for dataset in ["fb", "wikits", "logn"]:
        keys = cache.keys(dataset)
        initial, pool = split_initial(keys, 0.5, seed=3)
        for method in METHODS:
            index = _make(method)
            index.bulk_load(initial)
            before_mb = index.memory_bytes() / 1e6
            for key in pool:
                index.insert(float(key), "w")
            after_mb = index.memory_bytes() / 1e6
            after[(dataset, method)] = after_mb
            rows.append([f"{dataset}/{method}", before_mb, after_mb])
    with capsys.disabled():
        print_table(
            f"Table 10: memory (MB) before/after inserting the second "
            f"half, scale={scale.name}",
            ["Dataset/Method", "before", "after"],
            rows,
        )

    for dataset in ["fb", "wikits", "logn"]:
        # LIPP's footprint dominates every other method (Table 10).
        assert (
            after[(dataset, "LIPP")] > after[(dataset, "DILI")]
        ), dataset
        assert (
            after[(dataset, "DILI")] > after[(dataset, "B+Tree(32)")]
        ), dataset

    index = cache.index("DILI", "wikits")
    benchmark(index.memory_bytes)
