"""Extension bench: structural access counts per lookup.

Section 7.3 argues DILI's throughput with "DILI accesses only 0.2-1
node per point query on average" beyond its internal levels, and the
search-path-length comparisons behind Tables 4/5 are all structural.
This bench reports the raw structure -- node touches, distinct regions,
total memory touches per lookup -- with no cost model at all, so the
orderings can be checked independently of any cycle pricing.
"""

from repro.bench import print_table
from repro.simulate.access_stats import profile_lookups

METHODS = ["BinS", "B+Tree(32)", "MassTree", "LIPP", "DILI"]


def test_extension_access_statistics(cache, scale, benchmark, capsys):
    rows = []
    profiles = {}
    for dataset in ["fb", "logn"]:
        keys = cache.keys(dataset)
        probes = cache.queries(dataset)[:1_500]
        for method in METHODS:
            index = cache.index(method, dataset)
            profile = profile_lookups(index, probes)
            profiles[(method, dataset)] = profile
            rows.append(
                [
                    f"{dataset}/{method}",
                    profile.nodes_per_probe,
                    profile.regions_per_probe,
                    profile.touches_per_probe,
                    float(profile.max_nodes),
                ]
            )
    with capsys.disabled():
        print_table(
            f"Extension: structural accesses per lookup, "
            f"scale={scale.name}",
            ["Dataset/Method", "nodes", "regions", "touches",
             "max nodes"],
            rows,
        )

    for dataset in ["fb", "logn"]:
        dili = profiles[("DILI", dataset)]
        # DILI's path touches fewer memory words than BinS's log2(n)
        # probes and MassTree's layered descent.
        assert (
            dili.touches_per_probe
            < profiles[("BinS", dataset)].touches_per_probe
        ), dataset
        assert (
            dili.touches_per_probe
            < profiles[("MassTree", dataset)].touches_per_probe
        ), dataset
        # Nested conflict leaves add well under one extra node per
        # lookup on easy data (the paper's 0.2-1 extra accesses).
        if dataset == "logn":
            assert dili.nodes_per_probe < 4.0

    index = cache.index("DILI", "fb")
    benchmark(index.get, float(cache.keys("fb")[321]))
