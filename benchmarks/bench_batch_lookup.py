"""Batch read path: vectorized ``get_batch`` vs the scalar ``get`` loop.

Not a paper table -- this benchmarks the repository's compiled flat
read plan (``repro.core.flat``).  For each dataset it reports the
simulated cost of the traced batch path (which must equal the scalar
loop's, the replay charges identical events) next to the *measured*
wall-clock of both paths, plus their ratio.  The regression gate lives
in ``benchmarks/check_batch_baseline.py`` / ``BENCH_baseline.json``;
here we assert the structural invariants at whatever scale is active.
"""

import numpy as np

from repro.bench.harness import (
    BATCH_COLUMNS,
    DATASETS,
    batch_lookup_rows,
    measure_batch_lookup,
)
from repro.bench.reporting import format_table
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer


def test_batch_lookup_speedup(cache, scale, benchmark, capsys):
    rows = batch_lookup_rows(cache)
    with capsys.disabled():
        print("\n" + format_table(
            f"Batch vs scalar lookups ({scale.num_keys:,} keys, "
            f"{scale.num_queries:,} queries)",
            BATCH_COLUMNS,
            rows,
        ) + "\n")

    # The batch path must beat the scalar loop comfortably everywhere.
    for row in rows:
        assert row[5] > 2.0, f"batch barely faster on {row[0]}: {row[5]:.1f}x"

    # Wall-clock batch call for pytest-benchmark's own table.
    index = cache.index("DILI", "fb")
    queries = cache.queries("fb")
    index.get_batch(queries)  # compile outside the timed region
    benchmark(index.get_batch, queries)


def test_batch_traced_cost_matches_scalar(cache, scale):
    """The vectorized path's simulated cost is the scalar loop's, +-0."""
    index = cache.index("DILI", "logn")
    queries = cache.queries("logn")[:1500]

    scalar_tracer = CostTracer(CacheSimulator(scale.cache_lines))
    for key in queries:
        index.get(float(key), scalar_tracer)

    batch_tracer = CostTracer(CacheSimulator(scale.cache_lines))
    index.get_batch(queries, batch_tracer)

    assert batch_tracer.total_cycles == scalar_tracer.total_cycles
    assert batch_tracer.cache_misses == scalar_tracer.cache_misses
    assert batch_tracer.mem_accesses == scalar_tracer.mem_accesses


def test_batch_results_match_scalar(cache, scale):
    for dataset in DATASETS:
        index = cache.index("DILI", dataset)
        queries = cache.queries(dataset)
        rng = np.random.default_rng(5)
        missing = queries + rng.integers(1, 5, size=len(queries))
        probe = np.concatenate([queries, missing])
        batch = index.get_batch(probe)
        scalar = [index.get(float(k)) for k in probe]
        assert batch == scalar, dataset


def test_measure_batch_lookup_consistency(cache, scale):
    m = measure_batch_lookup(
        cache.index("DILI", "wikits"), cache.queries("wikits"), scale
    )
    assert m.batch_s > 0 and m.scalar_s > 0
    assert m.sim_ns_per_op > 0
    assert m.speedup == m.scalar_s / m.batch_s
