"""Tests for the B+Tree baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.btree import BPlusTree
from tests.baselines.conftest import assert_full_lookup


class TestBulkLoadAndLookup:
    @pytest.mark.parametrize("order", [4, 16, 32, 256])
    def test_lookup_across_orders(self, fb_keys, order):
        tree = BPlusTree(order)
        tree.bulk_load(fb_keys)
        assert_full_lookup(tree, fb_keys)
        tree.validate()

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=3)

    def test_empty_tree(self):
        tree = BPlusTree()
        tree.bulk_load(np.array([]))
        assert len(tree) == 0
        assert tree.get(1.0) is None
        assert tree.range_query(0.0, 10.0) == []

    def test_single_key(self):
        tree = BPlusTree()
        tree.bulk_load(np.array([42.0]), ["x"])
        assert tree.get(42.0) == "x"
        assert len(tree) == 1

    def test_height_shrinks_with_order(self, linear_keys):
        small = BPlusTree(8)
        small.bulk_load(linear_keys)
        big = BPlusTree(128)
        big.bulk_load(linear_keys)
        assert big.height() < small.height()

    def test_bulk_load_fill_invariant(self, logn_keys):
        tree = BPlusTree(16)
        tree.bulk_load(logn_keys)
        tree.validate()  # checks min-fill of every node


class TestInsert:
    def test_insert_into_empty(self):
        tree = BPlusTree(8)
        for i in range(100):
            assert tree.insert(float(i * 3), i)
        for i in range(100):
            assert tree.get(float(i * 3)) == i
        tree.validate()

    def test_duplicate_rejected(self):
        tree = BPlusTree(8)
        tree.bulk_load(np.array([1.0, 2.0]))
        assert not tree.insert(1.0, "other")
        assert tree.get(1.0) == 0

    def test_insert_splits_propagate_to_root(self):
        tree = BPlusTree(4)
        rng = np.random.default_rng(21)
        keys = rng.permutation(np.arange(2000, dtype=np.float64))
        for k in keys:
            assert tree.insert(float(k), int(k))
        assert tree.height() > 2
        for k in keys[::7]:
            assert tree.get(float(k)) == int(k)
        tree.validate()

    def test_mixed_bulk_and_insert(self, logn_keys):
        tree = BPlusTree(32)
        tree.bulk_load(logn_keys[::2])
        for k in logn_keys[1::2]:
            assert tree.insert(float(k), "new")
        assert len(tree) == len(logn_keys)
        tree.validate()


class TestDelete:
    def test_delete_with_rebalancing(self):
        tree = BPlusTree(4)
        keys = np.arange(500, dtype=np.float64)
        tree.bulk_load(keys)
        rng = np.random.default_rng(22)
        for k in rng.permutation(keys)[:400]:
            assert tree.delete(float(k))
            tree.validate()  # invariants hold after *every* delete
        assert len(tree) == 100

    def test_delete_everything(self):
        tree = BPlusTree(4)
        keys = np.arange(200, dtype=np.float64)
        tree.bulk_load(keys)
        for k in keys:
            assert tree.delete(float(k))
        assert len(tree) == 0
        assert tree.get(5.0) is None
        assert tree.insert(5.0, "again")

    def test_delete_missing(self):
        tree = BPlusTree()
        tree.bulk_load(np.array([1.0, 2.0, 3.0]))
        assert not tree.delete(9.0)
        assert len(tree) == 3

    def test_root_collapse(self):
        tree = BPlusTree(4)
        tree.bulk_load(np.arange(100, dtype=np.float64))
        for k in range(99):
            tree.delete(float(k))
        assert tree.get(99.0) == 99
        tree.validate()


class TestRangeQuery:
    def test_range_spans_leaves(self, linear_keys):
        tree = BPlusTree(16)
        tree.bulk_load(linear_keys)
        got = [k for k, _ in tree.range_query(100.0, 400.0)]
        expected = [float(k) for k in linear_keys if 100.0 <= k < 400.0]
        assert got == expected

    def test_range_empty_window(self, linear_keys):
        tree = BPlusTree(16)
        tree.bulk_load(linear_keys)
        assert tree.range_query(3.0, 7.0) == []

    def test_range_after_updates(self):
        tree = BPlusTree(8)
        tree.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        tree.insert(51.0, "odd")
        tree.delete(52.0)
        got = [k for k, _ in tree.range_query(50.0, 56.0)]
        assert got == [50.0, 51.0, 54.0]


class TestCostProfile:
    def test_larger_nodes_mean_fewer_levels_more_in_node_work(self, fb_keys):
        from repro.simulate.tracer import CostTracer

        costs = {}
        for order in (16, 512):
            tree = BPlusTree(order)
            tree.bulk_load(fb_keys)
            tracer = CostTracer()
            for k in fb_keys[::101]:
                tree.get(float(k), tracer)
            costs[order] = tracer.total_cycles
        # Table 4: huge nodes (Omega=512) lose to moderate ones because
        # in-node binary search touches many cold lines.
        assert costs[512] > costs[16] * 0.5  # sanity: same order of magnitude

    def test_memory_positive_and_scales(self, fb_keys):
        tree = BPlusTree(32)
        tree.bulk_load(fb_keys)
        small = tree.memory_bytes()
        assert small > 16 * len(fb_keys) * 0.9  # at least the pairs


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=400),
        ),
        max_size=300,
    ),
    order=st.sampled_from([4, 8, 16]),
)
@settings(max_examples=60, deadline=None)
def test_property_btree_matches_dict(ops, order):
    """Any insert/delete sequence leaves the tree equal to a dict."""
    tree = BPlusTree(order)
    reference: dict[float, object] = {}
    for op, key in ops:
        key = float(key)
        if op == "insert":
            assert tree.insert(key, key) == (key not in reference)
            reference.setdefault(key, key)
        else:
            assert tree.delete(key) == (key in reference)
            reference.pop(key, None)
    assert len(tree) == len(reference)
    for k, v in reference.items():
        assert tree.get(k) == v
    tree.validate()
