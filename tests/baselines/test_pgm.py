"""Tests for the static and dynamic PGM-index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pgm import DynamicPGM, PGMIndex, build_pla
from repro.data import load_dataset
from tests.baselines.conftest import assert_full_lookup


class TestBuildPLA:
    def test_error_bound_holds_everywhere(self):
        rng = np.random.default_rng(41)
        keys = np.unique(rng.lognormal(0, 2, 4000) * 1e6)
        for eps in (1, 8, 64):
            firsts, slopes, intercepts, starts = build_pla(keys, eps)
            seg = np.clip(
                np.searchsorted(firsts, keys, side="right") - 1,
                0,
                len(firsts) - 1,
            )
            pred = intercepts[seg] + slopes[seg] * keys
            err = np.abs(pred - np.arange(len(keys)))
            assert float(err.max()) <= eps + 1.0, eps

    def test_starts_partition_ranks(self):
        keys = load_dataset("osm", 3000, seed=42)
        firsts, _, _, starts = build_pla(keys, 16)
        assert starts[0] == 0
        assert bool(np.all(np.diff(starts) > 0))
        # Each segment's first key sits exactly at its start rank.
        for f, s in zip(firsts, starts):
            assert keys[s] == f

    def test_linear_data_one_segment(self):
        keys = np.arange(0, 10000, 7, dtype=np.float64)
        firsts, _, _, _ = build_pla(keys, 4)
        assert len(firsts) == 1

    def test_empty(self):
        firsts, _, _, starts = build_pla(np.array([]), 8)
        assert len(firsts) == 0 and len(starts) == 0


class TestPGMIndex:
    @pytest.mark.parametrize("eps", [4, 32, 128])
    def test_lookup(self, fb_keys, eps):
        index = PGMIndex(eps)
        index.bulk_load(fb_keys)
        assert_full_lookup(index, fb_keys)

    def test_lookup_on_all_datasets(self):
        for name in ("fb", "wikits", "osm", "books", "logn"):
            keys = load_dataset(name, 5000, seed=43)
            index = PGMIndex(16)
            index.bulk_load(keys)
            for i in range(0, len(keys), 53):
                assert index.get(float(keys[i])) == i, (name, i)

    def test_levels_shrink_to_single_root(self, fb_keys):
        index = PGMIndex(8)
        index.bulk_load(fb_keys)
        sizes = index.level_sizes()
        assert sizes[-1] == 1
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_smaller_epsilon_more_segments(self, fb_keys):
        tight = PGMIndex(4)
        tight.bulk_load(fb_keys)
        loose = PGMIndex(128)
        loose.bulk_load(fb_keys)
        assert tight.level_sizes()[0] > loose.level_sizes()[0]
        assert tight.memory_bytes() > loose.memory_bytes()

    def test_range_query(self):
        index = PGMIndex(16)
        index.bulk_load(np.arange(0, 1000, 3, dtype=np.float64))
        got = [k for k, _ in index.range_query(10.0, 31.0)]
        assert got == [12.0, 15.0, 18.0, 21.0, 24.0, 27.0, 30.0]

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            PGMIndex(0)

    def test_empty_and_tiny(self):
        index = PGMIndex(8)
        index.bulk_load(np.array([]))
        assert index.get(1.0) is None
        index.bulk_load(np.array([4.0]), ["v"])
        assert index.get(4.0) == "v"
        assert index.get(5.0) is None


class TestDynamicPGM:
    def test_bulk_then_lookup(self, logn_keys):
        index = DynamicPGM(32)
        index.bulk_load(logn_keys)
        assert_full_lookup(index, logn_keys)

    def test_inserts_spill_over_runs(self):
        index = DynamicPGM(16, base=32)
        index.bulk_load(np.arange(0, 1000, 2, dtype=np.float64))
        for k in range(1, 1000, 2):
            assert index.insert(float(k), "odd")
        assert len(index) == 1000
        # The logarithmic method must have created multiple run slots.
        assert sum(1 for s in index.run_sizes() if s > 0) >= 1
        for k in range(0, 1000):
            expected = "odd" if k % 2 else k // 2
            assert index.get(float(k)) == expected

    def test_duplicate_insert_rejected(self):
        index = DynamicPGM(16, base=16)
        index.bulk_load(np.array([1.0, 2.0]))
        assert not index.insert(1.0, "dup")
        assert index.get(1.0) == 0

    def test_delete_via_tombstones(self):
        index = DynamicPGM(16, base=32)
        keys = np.arange(0, 500, 1, dtype=np.float64)
        index.bulk_load(keys)
        for k in keys[::3]:
            assert index.delete(float(k))
        for k in keys[::3]:
            assert index.get(float(k)) is None
        assert index.get(1.0) == 1
        assert len(index) == 500 - len(keys[::3])
        assert not index.delete(float(keys[0]))

    def test_reinsert_after_delete(self):
        index = DynamicPGM(16, base=16)
        index.bulk_load(np.array([1.0, 2.0, 3.0]))
        assert index.delete(2.0)
        assert index.insert(2.0, "back")
        assert index.get(2.0) == "back"

    def test_range_query_merges_runs(self):
        index = DynamicPGM(16, base=16)
        index.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        index.insert(51.0, "odd")
        index.delete(52.0)
        got = [k for k, _ in index.range_query(50.0, 56.0)]
        assert got == [50.0, 51.0, 54.0]

    def test_query_probes_multiple_runs(self):
        """The paper's criticism: every lookup searches O(log n) trees."""
        index = DynamicPGM(16, base=16)
        index.bulk_load(np.arange(0, 2000, 2, dtype=np.float64))
        rng = np.random.default_rng(44)
        for k in rng.permutation(np.arange(1, 300, 2, dtype=np.float64)):
            index.insert(float(k), "x")
        occupied = sum(1 for s in index.run_sizes() if s > 0)
        assert occupied >= 2

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            DynamicPGM(16, base=1)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=300),
        ),
        max_size=150,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_dynamic_pgm_matches_dict(ops):
    """LSM runs + tombstones behave exactly like a dict."""
    index = DynamicPGM(8, base=16)
    reference: dict[float, object] = {}
    for op, key in ops:
        key = float(key)
        if op == "insert":
            assert index.insert(key, key) == (key not in reference)
            reference.setdefault(key, key)
        else:
            assert index.delete(key) == (key in reference)
            reference.pop(key, None)
    assert len(index) == len(reference)
    for k, v in reference.items():
        assert index.get(k) == v
