"""Differential testing: every index answers identically to a dict.

One hypothesis-driven test drives *all* updatable indexes and all
static indexes through the same scenario simultaneously and requires
bit-identical answers -- the strongest cross-implementation check in
the suite.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI
from repro.baselines import (
    AlexIndex,
    BinarySearchIndex,
    BPlusTree,
    DynamicPGM,
    LippIndex,
    MassTree,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
)


def _updatable():
    return [
        DILI(),
        BPlusTree(8),
        MassTree(),
        DynamicPGM(8, base=16),
        AlexIndex(4096),
    ]


def _static():
    return [
        BinarySearchIndex(),
        RMIIndex(64),
        RadixSplineIndex(8, 10),
        PGMIndex(8),
    ]


@given(
    bulk=st.lists(
        st.integers(min_value=0, max_value=2**40),
        min_size=1,
        max_size=150,
        unique=True,
    ),
    probes=st.lists(
        st.integers(min_value=0, max_value=2**40),
        max_size=40,
    ),
)
@settings(max_examples=40, deadline=None)
def test_property_all_indexes_agree_on_lookups(bulk, probes):
    """Static + updatable indexes give identical answers after bulk."""
    keys = np.array(sorted(bulk), dtype=np.float64)
    values = list(range(len(keys)))
    indexes = _updatable() + _static()
    for index in indexes:
        index.bulk_load(keys, values)
    reference = {float(k): i for i, k in enumerate(keys)}
    all_probes = [float(k) for k in keys] + [float(p) for p in probes]
    for probe in all_probes:
        expected = reference.get(probe)
        for index in indexes:
            assert index.get(probe) == expected, (
                type(index).__name__,
                probe,
            )


@given(
    bulk=st.lists(
        st.integers(min_value=0, max_value=2**40),
        min_size=1,
        max_size=80,
        unique=True,
    ),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=2**40),
        ),
        max_size=100,
    ),
)
@settings(max_examples=30, deadline=None)
def test_property_updatable_indexes_agree_under_churn(bulk, ops):
    """DILI, B+Tree, MassTree, DynamicPGM and ALEX stay in lockstep
    with a dict under arbitrary insert/delete/get interleavings."""
    keys = np.array(sorted(bulk), dtype=np.float64)
    indexes = _updatable()
    for index in indexes:
        index.bulk_load(keys)
    reference = {float(k): i for i, k in enumerate(keys)}
    for op, raw in ops:
        key = float(raw)
        if op == "insert":
            expected = key not in reference
            for index in indexes:
                assert index.insert(key, "u") == expected, (
                    type(index).__name__,
                    op,
                    key,
                )
            reference.setdefault(key, "u")
        elif op == "delete":
            expected = key in reference
            for index in indexes:
                assert index.delete(key) == expected, (
                    type(index).__name__,
                    op,
                    key,
                )
            reference.pop(key, None)
        else:
            expected_val = reference.get(key)
            for index in indexes:
                assert index.get(key) == expected_val, (
                    type(index).__name__,
                    op,
                    key,
                )
    for index in indexes:
        assert len(index) == len(reference), type(index).__name__


@given(
    bulk=st.lists(
        st.integers(min_value=0, max_value=2**40),
        min_size=2,
        max_size=120,
        unique=True,
    ),
    window=st.tuples(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=0, max_value=2**40),
    ),
)
@settings(max_examples=40, deadline=None)
def test_property_range_queries_agree(bulk, window):
    """Every range-capable index returns the same sorted slice."""
    keys = np.array(sorted(bulk), dtype=np.float64)
    lo, hi = sorted(float(w) for w in window)
    expected = [
        (float(k), i) for i, k in enumerate(keys) if lo <= k < hi
    ]
    for index in [
        DILI(),
        BPlusTree(8),
        BinarySearchIndex(),
        PGMIndex(8),
        AlexIndex(4096),
        LippIndex(),
        MassTree(),
    ]:
        index.bulk_load(keys)
        assert index.range_query(lo, hi) == expected, type(index).__name__
