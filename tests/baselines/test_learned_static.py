"""Tests for the static learned baselines: BinS, RMI, RadixSpline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BinarySearchIndex,
    RadixSplineIndex,
    RMIIndex,
    UnsupportedOperation,
)
from repro.baselines.radix_spline import _greedy_spline
from repro.data import load_dataset
from repro.simulate.tracer import CostTracer
from tests.baselines.conftest import assert_full_lookup


class TestBinarySearch:
    def test_lookup(self, fb_keys):
        index = BinarySearchIndex()
        index.bulk_load(fb_keys)
        assert_full_lookup(index, fb_keys)

    def test_no_updates(self, fb_keys):
        index = BinarySearchIndex()
        index.bulk_load(fb_keys)
        with pytest.raises(UnsupportedOperation):
            index.insert(1.0, "x")
        with pytest.raises(UnsupportedOperation):
            index.delete(float(fb_keys[0]))

    def test_range_query(self):
        index = BinarySearchIndex()
        index.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        got = [k for k, _ in index.range_query(10.0, 20.0)]
        assert got == [10.0, 12.0, 14.0, 16.0, 18.0]

    def test_cost_is_logarithmic_in_touches(self, fb_keys):
        index = BinarySearchIndex()
        index.bulk_load(fb_keys)
        tracer = CostTracer()
        index.get(float(fb_keys[1234]), tracer)
        # ~log2(8000) = 13 probes, each one memory touch.
        assert 8 <= tracer.mem_accesses <= 2 + int(np.log2(len(fb_keys))) + 3


class TestRMI:
    @pytest.mark.parametrize("root_kind", ["linear", "cubic"])
    @pytest.mark.parametrize("branching", [64, 1024])
    def test_lookup(self, fb_keys, root_kind, branching):
        index = RMIIndex(branching, root_kind)
        index.bulk_load(fb_keys)
        assert_full_lookup(index, fb_keys)

    def test_lookup_on_all_datasets(self):
        for name in ("fb", "wikits", "osm", "books", "logn"):
            keys = load_dataset(name, 4000, seed=31)
            index = RMIIndex(256)
            index.bulk_load(keys)
            for i in range(0, len(keys), 37):
                assert index.get(float(keys[i])) == i, (name, i)

    def test_more_models_tighter_windows(self, fb_keys):
        small = RMIIndex(16)
        small.bulk_load(fb_keys)
        large = RMIIndex(4096)
        large.bulk_load(fb_keys)
        assert large.max_error_window() <= small.max_error_window()

    def test_memory_scales_with_branching(self, fb_keys):
        small = RMIIndex(64)
        small.bulk_load(fb_keys)
        large = RMIIndex(4096)
        large.bulk_load(fb_keys)
        assert large.memory_bytes() > small.memory_bytes()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RMIIndex(0)
        with pytest.raises(ValueError):
            RMIIndex(16, "quadratic")

    def test_no_updates(self, fb_keys):
        index = RMIIndex(64)
        index.bulk_load(fb_keys)
        with pytest.raises(UnsupportedOperation):
            index.insert(1.0, "x")

    def test_empty_and_tiny(self):
        index = RMIIndex(16)
        index.bulk_load(np.array([]))
        assert index.get(1.0) is None
        index.bulk_load(np.array([5.0, 9.0]), ["a", "b"])
        assert index.get(5.0) == "a"
        assert index.get(9.0) == "b"
        assert index.get(7.0) is None


class TestGreedySpline:
    def test_error_bound_holds(self):
        rng = np.random.default_rng(33)
        keys = np.unique(rng.lognormal(0, 2, 5000) * 1e6)
        for eps in (4, 32, 128):
            sx, sy = _greedy_spline(keys, eps)
            # Interpolate every key and check the corridor guarantee.
            seg = np.clip(np.searchsorted(sx, keys, side="right") - 1,
                          0, len(sx) - 2)
            x0, x1 = sx[seg], sx[seg + 1]
            y0, y1 = sy[seg], sy[seg + 1]
            pred = y0 + (y1 - y0) * (keys - x0) / np.maximum(x1 - x0, 1e-30)
            err = np.abs(pred - np.arange(len(keys)))
            assert float(err.max()) <= eps + 1.0

    def test_smaller_epsilon_more_points(self):
        keys = load_dataset("books", 5000, seed=34)
        tight_x, _ = _greedy_spline(keys, 8)
        loose_x, _ = _greedy_spline(keys, 256)
        assert len(tight_x) > len(loose_x)

    def test_linear_data_needs_two_points(self):
        keys = np.arange(1000, dtype=np.float64)
        sx, sy = _greedy_spline(keys, 16)
        assert len(sx) <= 3

    def test_single_key(self):
        sx, sy = _greedy_spline(np.array([7.0]), 16)
        assert list(sx) == [7.0]


class TestRadixSpline:
    @pytest.mark.parametrize("config", [(8, 12), (32, 16), (128, 20)])
    def test_lookup(self, fb_keys, config):
        eps, bits = config
        index = RadixSplineIndex(eps, bits)
        index.bulk_load(fb_keys)
        assert_full_lookup(index, fb_keys)

    def test_lookup_on_all_datasets(self):
        for name in ("fb", "wikits", "osm", "books", "logn"):
            keys = load_dataset(name, 4000, seed=35)
            index = RadixSplineIndex(16, 14)
            index.bulk_load(keys)
            for i in range(0, len(keys), 41):
                assert index.get(float(keys[i])) == i, (name, i)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RadixSplineIndex(0, 10)
        with pytest.raises(ValueError):
            RadixSplineIndex(16, 0)

    def test_memory_tradeoff(self, fb_keys):
        # RS (L): small epsilon, big table -> more memory, less search.
        small = RadixSplineIndex(256, 8)
        small.bulk_load(fb_keys)
        large = RadixSplineIndex(8, 20)
        large.bulk_load(fb_keys)
        assert large.memory_bytes() > small.memory_bytes()
        assert large.spline_size() > small.spline_size()

    def test_no_updates(self, fb_keys):
        index = RadixSplineIndex()
        index.bulk_load(fb_keys)
        with pytest.raises(UnsupportedOperation):
            index.insert(1.0, "x")

    def test_empty_and_tiny(self):
        index = RadixSplineIndex(8, 8)
        index.bulk_load(np.array([]))
        assert index.get(1.0) is None
        index.bulk_load(np.array([3.0]), ["only"])
        assert index.get(3.0) == "only"
        assert index.get(4.0) is None


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=2**45),
        min_size=2,
        max_size=400,
        unique=True,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_static_indexes_agree(keys):
    """BinS, RMI and RS answer identically on arbitrary key sets."""
    arr = np.array(sorted(keys), dtype=np.float64)
    indexes = [BinarySearchIndex(), RMIIndex(32), RadixSplineIndex(8, 10)]
    for index in indexes:
        index.bulk_load(arr)
    probes = list(arr[::3]) + [arr[0] - 1, arr[-1] + 5, (arr[0] + arr[-1]) / 2]
    for probe in probes:
        answers = {index.get(float(probe)) for index in indexes}
        assert len(answers) == 1, (probe, answers)
