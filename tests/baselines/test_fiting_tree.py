"""Tests for the FITing-Tree extension baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BPlusTree, FITingTree
from repro.data import load_dataset
from tests.baselines.conftest import assert_full_lookup


class TestFloorItem:
    """floor_item on the underlying B+Tree (added for FITing-Tree)."""

    def test_basic(self):
        tree = BPlusTree(8)
        tree.bulk_load(np.array([10.0, 20.0, 30.0]), ["a", "b", "c"])
        assert tree.floor_item(25.0) == (20.0, "b")
        assert tree.floor_item(20.0) == (20.0, "b")
        assert tree.floor_item(9.0) is None
        assert tree.floor_item(99.0) == (30.0, "c")

    def test_across_leaf_boundaries(self):
        tree = BPlusTree(4)
        keys = np.arange(0, 1000, 10, dtype=np.float64)
        tree.bulk_load(keys)
        for probe in (5.0, 15.0, 995.0, 501.0):
            expected = float(keys[keys <= probe][-1])
            got = tree.floor_item(probe)
            assert got is not None and got[0] == expected

    def test_after_deletions(self):
        tree = BPlusTree(4)
        tree.bulk_load(np.arange(0, 100, 1, dtype=np.float64))
        for k in range(40, 60):
            tree.delete(float(k))
        assert tree.floor_item(50.0) == (39.0, 39)

    def test_empty_tree(self):
        assert BPlusTree(8).floor_item(5.0) is None


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=10**6),
        min_size=1,
        max_size=200,
        unique=True,
    ),
    probe=st.integers(min_value=-5, max_value=10**6 + 5),
)
@settings(max_examples=150, deadline=None)
def test_property_floor_item_matches_reference(keys, probe):
    arr = np.array(sorted(keys), dtype=np.float64)
    tree = BPlusTree(4)
    tree.bulk_load(arr)
    below = arr[arr <= probe]
    expected = (
        (float(below[-1]), int(np.searchsorted(arr, below[-1])))
        if len(below)
        else None
    )
    assert tree.floor_item(float(probe)) == expected


class TestFITingTree:
    @pytest.mark.parametrize("eps", [8, 32, 128])
    def test_lookup(self, fb_keys, eps):
        tree = FITingTree(eps)
        tree.bulk_load(fb_keys)
        assert_full_lookup(tree, fb_keys)

    def test_lookup_on_all_datasets(self):
        for name in ("fb", "wikits", "osm", "books", "logn"):
            keys = load_dataset(name, 5_000, seed=71)
            tree = FITingTree(16)
            tree.bulk_load(keys)
            for i in range(0, len(keys), 67):
                assert tree.get(float(keys[i])) == i, (name, i)

    def test_buffered_inserts_then_split(self, logn_keys):
        tree = FITingTree(32, buffer_size=16)
        tree.bulk_load(logn_keys[::2])
        before_segments = tree.segment_count()
        for k in logn_keys[1::2]:
            assert tree.insert(float(k), "new")
        assert not tree.insert(float(logn_keys[0]), "dup")
        for k in logn_keys[1::2][::9]:
            assert tree.get(float(k)) == "new"
        assert len(tree) == len(logn_keys)
        # Buffer overflows forced at least one merge-and-resegment.
        assert tree.moved_pairs > 0
        assert tree.segment_count() >= before_segments

    def test_insert_below_first_key(self):
        tree = FITingTree(16, buffer_size=8)
        tree.bulk_load(np.arange(100.0, 200.0))
        assert tree.insert(5.0, "low")
        assert tree.get(5.0) == "low"
        assert tree.get(4.0) is None

    def test_insert_into_empty(self):
        tree = FITingTree()
        assert tree.insert(7.0, "x")
        assert tree.get(7.0) == "x"
        assert len(tree) == 1

    def test_range_query_merges_buffers(self):
        tree = FITingTree(16, buffer_size=64)
        tree.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        tree.insert(51.0, "odd")
        got = [k for k, _ in tree.range_query(50.0, 56.0)]
        assert got == [50.0, 51.0, 52.0, 54.0]

    def test_memory_frugal_vs_dili(self, fb_keys):
        """FITing-Tree's selling point: near-minimal memory."""
        from repro import DILI

        tree = FITingTree(32)
        tree.bulk_load(fb_keys)
        dili = DILI()
        dili.bulk_load(fb_keys)
        assert tree.memory_bytes() < dili.memory_bytes()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            FITingTree(0)
        with pytest.raises(ValueError):
            FITingTree(8, buffer_size=0)

    def test_no_deletes(self, fb_keys):
        from repro.baselines import UnsupportedOperation

        tree = FITingTree()
        tree.bulk_load(fb_keys)
        with pytest.raises(UnsupportedOperation):
            tree.delete(float(fb_keys[0]))


@given(
    bulk=st.lists(
        st.integers(min_value=0, max_value=2**40),
        min_size=1,
        max_size=120,
        unique=True,
    ),
    extra=st.lists(
        st.integers(min_value=0, max_value=2**40),
        max_size=80,
        unique=True,
    ),
)
@settings(max_examples=40, deadline=None)
def test_property_fiting_tree_matches_dict(bulk, extra):
    arr = np.array(sorted(bulk), dtype=np.float64)
    tree = FITingTree(8, buffer_size=8)
    tree.bulk_load(arr)
    reference = {float(k): i for i, k in enumerate(arr)}
    for k in extra:
        k = float(k)
        assert tree.insert(k, "e") == (k not in reference)
        reference.setdefault(k, "e")
    assert len(tree) == len(reference)
    for k, v in reference.items():
        assert tree.get(k) == v
