"""Tests for the ALEX baseline (gapped arrays, adaptive structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.alex import AlexIndex, _Leaf
from repro.data import load_dataset
from tests.baselines.conftest import assert_full_lookup


class TestGappedLeaf:
    def _leaf(self, keys, capacity=None):
        keys = np.asarray(keys, dtype=np.float64)
        cap = capacity or max(64, int(len(keys) / 0.7))
        return _Leaf(float(keys[0]), float(keys[-1]) + 1.0, keys,
                     list(range(len(keys))), cap)

    def test_build_places_all_keys(self):
        keys = np.arange(0, 1000, 7, dtype=np.float64)
        leaf = self._leaf(keys)
        assert leaf.num == len(keys)
        from repro.simulate.tracer import NULL_TRACER
        for i, k in enumerate(keys):
            pos = leaf.find(float(k), NULL_TRACER)
            assert pos >= 0 and leaf.values[pos] == i

    def test_gap_fences_keep_array_sorted(self):
        keys = np.unique(np.random.default_rng(51).uniform(0, 1e6, 300))
        leaf = self._leaf(keys)
        finite = leaf.keys[np.isfinite(leaf.keys)]
        assert bool(np.all(np.diff(finite) >= 0))

    def test_iter_pairs_sorted(self):
        keys = np.unique(np.random.default_rng(52).uniform(0, 1e6, 200))
        leaf = self._leaf(keys)
        got = [k for k, _ in leaf.iter_pairs()]
        assert got == [float(k) for k in keys]

    def test_insert_uses_gap_without_shifting(self):
        from repro.simulate.tracer import NULL_TRACER
        keys = np.arange(0, 100, 10, dtype=np.float64)
        leaf = self._leaf(keys, capacity=64)
        assert leaf.insert(55.0, "new", NULL_TRACER)
        assert leaf.find(55.0, NULL_TRACER) >= 0
        got = [k for k, _ in leaf.iter_pairs()]
        assert got == sorted(got)

    def test_lazy_delete_keeps_fence(self):
        from repro.simulate.tracer import NULL_TRACER
        keys = np.arange(0, 100, 10, dtype=np.float64)
        leaf = self._leaf(keys)
        assert leaf.delete(50.0, NULL_TRACER)
        assert leaf.find(50.0, NULL_TRACER) == -1
        assert leaf.find(60.0, NULL_TRACER) >= 0
        # Re-insert into the vacated region.
        assert leaf.insert(50.0, "back", NULL_TRACER)
        assert leaf.find(50.0, NULL_TRACER) >= 0


class TestAlexIndex:
    @pytest.mark.parametrize("budget", [16 * 1024, 256 * 1024])
    def test_lookup(self, fb_keys, budget):
        index = AlexIndex(budget)
        index.bulk_load(fb_keys)
        assert_full_lookup(index, fb_keys)

    def test_lookup_on_all_datasets(self):
        for name in ("fb", "wikits", "osm", "books", "logn"):
            keys = load_dataset(name, 5000, seed=53)
            index = AlexIndex(64 * 1024)
            index.bulk_load(keys)
            for i in range(0, len(keys), 59):
                assert index.get(float(keys[i])) == i, (name, i)

    def test_small_budget_builds_deeper_tree(self):
        keys = load_dataset("logn", 20000, seed=54)
        tight = AlexIndex(16 * 1024)
        tight.bulk_load(keys)
        roomy = AlexIndex(1 << 20)
        roomy.bulk_load(keys)
        assert tight.height() >= roomy.height()

    def test_fanouts_are_powers_of_two(self):
        from repro.baselines.alex import _Internal

        keys = load_dataset("fb", 20000, seed=55)
        index = AlexIndex(16 * 1024)
        index.bulk_load(keys)
        stack = [index._root]
        saw_internal = False
        while stack:
            node = stack.pop()
            if type(node) is _Internal:
                saw_internal = True
                fanout = len(node.children)
                assert fanout & (fanout - 1) == 0, fanout
                stack.extend(node.children)
        assert saw_internal

    def test_insert_and_get(self, logn_keys):
        index = AlexIndex(64 * 1024)
        index.bulk_load(logn_keys[::2])
        for k in logn_keys[1::2]:
            assert index.insert(float(k), "new")
        assert not index.insert(float(logn_keys[0]), "dup")
        for k in logn_keys[1::2][::9]:
            assert index.get(float(k)) == "new"
        assert len(index) == len(logn_keys)

    def test_heavy_skewed_inserts_trigger_splits(self):
        index = AlexIndex(16 * 1024)
        index.bulk_load(np.arange(0, 100000, 50, dtype=np.float64))
        h0 = index.height()
        rng = np.random.default_rng(56)
        hot = np.unique(rng.uniform(777.0, 788.0, 3000))
        for k in hot:
            assert index.insert(float(k), "hot")
        for k in hot[::23]:
            assert index.get(float(k)) == "hot"
        assert index.height() >= h0  # split-down may deepen the tree

    def test_insert_into_empty(self):
        index = AlexIndex()
        assert index.insert(5.0, "a")
        assert index.get(5.0) == "a"
        assert len(index) == 1

    def test_delete_is_lazy_but_correct(self, logn_keys):
        index = AlexIndex(64 * 1024)
        index.bulk_load(logn_keys)
        mem_before = index.memory_bytes()
        for k in logn_keys[::2]:
            assert index.delete(float(k))
        for k in logn_keys[::2]:
            assert index.get(float(k)) is None
        for i in range(1, len(logn_keys), 2):
            assert index.get(float(logn_keys[i])) == i
        # Lazy deletion: the structure does not shrink (Section 7.4).
        assert index.memory_bytes() == mem_before
        assert not index.delete(float(logn_keys[0]))

    def test_range_query(self):
        index = AlexIndex(64 * 1024)
        index.bulk_load(np.arange(0, 1000, 2, dtype=np.float64))
        index.insert(101.0, "odd")
        index.delete(102.0)
        got = [k for k, _ in index.range_query(100.0, 106.0)]
        assert got == [100.0, 101.0, 104.0]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AlexIndex(max_node_bytes=10)
        with pytest.raises(ValueError):
            AlexIndex(density=0.9, max_density=0.8)

    def test_empty_bulk_load(self):
        index = AlexIndex()
        index.bulk_load(np.array([]))
        assert index.get(1.0) is None
        assert len(index) == 0


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=500),
        ),
        max_size=200,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_alex_matches_dict(ops):
    """Gapped-array shifting/splitting never loses or duplicates pairs."""
    index = AlexIndex(4096)
    reference: dict[float, object] = {}
    for op, key in ops:
        key = float(key)
        if op == "insert":
            assert index.insert(key, key) == (key not in reference)
            reference.setdefault(key, key)
        else:
            assert index.delete(key) == (key in reference)
            reference.pop(key, None)
    assert len(index) == len(reference)
    for k, v in reference.items():
        assert index.get(k) == v
    pairs = index.range_query(-np.inf, np.inf)
    assert [k for k, _ in pairs] == sorted(reference)
