"""Configuration-behaviour tests for the baselines.

Each knob a baseline exposes must visibly do the thing the paper (or
its source paper) says it does.
"""

import numpy as np
import pytest

from repro.baselines import (
    AlexIndex,
    LippIndex,
    MassTree,
    RMIIndex,
)
from repro.baselines.alex import AlexIndex as _Alex
from repro.data import load_dataset


@pytest.fixture(scope="module")
def fb():
    return load_dataset("fb", 15_000, seed=88)


class TestRMIAutoRoot:
    def test_auto_picks_a_concrete_root(self, fb):
        index = RMIIndex(512, "auto")
        index.bulk_load(fb)
        assert index.root_kind in ("linear", "cubic", "loglinear")
        assert "auto->" in index.name

    def test_auto_window_not_worse_than_any_fixed_root(self, fb):
        auto = RMIIndex(512, "auto")
        auto.bulk_load(fb)
        for kind in ("linear", "cubic", "loglinear"):
            fixed = RMIIndex(512, kind)
            fixed.bulk_load(fb)
            assert np.mean(auto._err_hi - auto._err_lo) <= np.mean(
                fixed._err_hi - fixed._err_lo
            ) + 1e-9

    def test_auto_answers_correctly(self, fb):
        index = RMIIndex(512, "auto")
        index.bulk_load(fb)
        for i in range(0, len(fb), 173):
            assert index.get(float(fb[i])) == i


class TestLippNodeCap:
    def test_cap_bounds_every_node(self, fb):
        cap = 1024
        index = LippIndex(max_node_slots=cap)
        index.bulk_load(fb)
        stack = [index._root]
        while stack:
            node = stack.pop()
            assert len(node.slots) <= max(cap, 2 * 5 * 2)
            for entry in node.slots:
                if entry is not None and type(entry) is not tuple:
                    stack.append(entry)

    def test_smaller_cap_deeper_tree(self, fb):
        shallow = LippIndex(max_node_slots=65536)
        shallow.bulk_load(fb)
        deep = LippIndex(max_node_slots=512)
        deep.bulk_load(fb)
        assert deep.max_depth() >= shallow.max_depth()

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            LippIndex(max_node_slots=10)


class TestAlexQualitySplit:
    def test_rank_rmse_zero_on_linear(self):
        assert _Alex._rank_rmse(np.arange(1000.0)) == pytest.approx(0.0)

    def test_rank_rmse_positive_on_rough(self):
        rng = np.random.default_rng(3)
        keys = np.unique(np.cumsum(rng.exponential(20.0, 5_000)))
        assert _Alex._rank_rmse(keys) > 1.0

    def test_rough_data_builds_deeper_than_smooth(self):
        smooth = AlexIndex(1 << 20)
        smooth.bulk_load(np.arange(0, 200_000, 4, dtype=np.float64))
        rng = np.random.default_rng(4)
        rough_keys = np.unique(
            np.floor(np.cumsum(rng.exponential(50.0, 50_000)))
        )
        rough = AlexIndex(1 << 20)
        rough.bulk_load(rough_keys)
        assert rough.height() >= smooth.height()


class TestMassTreeIntegerKeys:
    def test_fractional_get_is_always_miss(self):
        tree = MassTree()
        tree.bulk_load(np.array([1.0, 2.0, 3.0]))
        assert tree.get(1.5) is None
        assert tree.get(1.0000001) is None

    def test_fractional_insert_rejected(self):
        tree = MassTree()
        with pytest.raises(ValueError):
            tree.insert(1.5, "x")

    def test_fractional_delete_is_false(self):
        tree = MassTree()
        tree.bulk_load(np.array([1.0]))
        assert not tree.delete(1.5)
        assert tree.get(1.0) == 0
