"""Shared fixtures for baseline index tests."""

import numpy as np
import pytest

from repro.data import load_dataset


@pytest.fixture(scope="package")
def fb_keys():
    return load_dataset("fb", 8000, seed=11)


@pytest.fixture(scope="package")
def logn_keys():
    return load_dataset("logn", 8000, seed=12)


@pytest.fixture(scope="package")
def linear_keys():
    return np.arange(0, 50000, 10, dtype=np.float64)


def assert_full_lookup(index, keys, stride=17):
    """Every key resolves to its bulk-load position; misses return None."""
    for i in range(0, len(keys), stride):
        assert index.get(float(keys[i])) == i, (index.name, i)
    assert index.get(float(keys[0]) - 1.0) is None
    assert index.get(float(keys[-1]) + 1.0) is None
    mid = (float(keys[0]) + float(keys[1])) / 2.0
    if mid not in (float(keys[0]), float(keys[1])):
        assert index.get(mid) is None
