"""Cross-baseline tests of the traced cost behaviour.

These pin down the *structural* properties the simulated tables rely
on: which methods touch how many regions, how costs respond to
configuration knobs, and that tracing never changes answers.
"""

import numpy as np
import pytest

from repro import DILI
from repro.baselines import (
    BinarySearchIndex,
    BPlusTree,
    FITingTree,
    LippIndex,
    MassTree,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
)
from repro.data import load_dataset
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer


@pytest.fixture(scope="module")
def keys():
    return load_dataset("books", 20_000, seed=77)


def _cold_cost(index, probes):
    """Average fully-cold cost (fresh cache per probe)."""
    total = 0.0
    for key in probes:
        tracer = CostTracer(CacheSimulator(4096))
        index.get(float(key), tracer)
        total += tracer.total_cycles
    return total / len(probes)


class TestTracingIsPure:
    @pytest.mark.parametrize(
        "make",
        [
            DILI,
            BinarySearchIndex,
            lambda: BPlusTree(16),
            MassTree,
            lambda: RMIIndex(256),
            lambda: RadixSplineIndex(16, 12),
            lambda: PGMIndex(16),
            LippIndex,
            lambda: FITingTree(16),
        ],
    )
    def test_traced_and_untraced_answers_match(self, keys, make):
        index = make()
        index.bulk_load(keys)
        tracer = CostTracer()
        for i in range(0, len(keys), 211):
            key = float(keys[i])
            assert index.get(key) == index.get(key, tracer)
        probe = float(keys[0]) - 1.0
        assert index.get(probe) == index.get(probe, tracer) is None


class TestStructuralCostProperties:
    def test_bins_cost_scales_logarithmically(self):
        small = BinarySearchIndex()
        small.bulk_load(np.arange(1_000, dtype=np.float64))
        big = BinarySearchIndex()
        big.bulk_load(np.arange(1_000_000, dtype=np.float64))
        probes_small = np.arange(0, 1_000, 97, dtype=np.float64)
        probes_big = np.arange(0, 1_000_000, 97_003, dtype=np.float64)
        ratio = _cold_cost(big, probes_big) / _cold_cost(
            small, probes_small
        )
        # log2(1e6)/log2(1e3) = 2; allow generous slack.
        assert 1.5 < ratio < 3.0

    def test_btree_cold_cost_grows_with_node_size(self, keys):
        costs = {}
        for order in (16, 256):
            tree = BPlusTree(order)
            tree.bulk_load(keys)
            costs[order] = _cold_cost(tree, keys[::501])
        # Bigger nodes -> more in-node probe lines touched cold.
        assert costs[256] > costs[16] * 0.8

    def test_pgm_epsilon_trades_levels_for_search(self, keys):
        tight = PGMIndex(4)
        tight.bulk_load(keys)
        loose = PGMIndex(256)
        loose.bulk_load(keys)
        assert len(tight.level_sizes()) >= len(loose.level_sizes())
        # Looser bound -> wider final search window.
        t = CostTracer(CacheSimulator(64))
        for k in keys[::997]:
            loose.get(float(k), t)
        loose_cost = t.total_cycles
        t = CostTracer(CacheSimulator(64))
        for k in keys[::997]:
            tight.get(float(k), t)
        tight_cost = t.total_cycles
        assert loose_cost != tight_cost  # the knob does something

    def test_rmi_branching_shrinks_final_search(self, keys):
        small = RMIIndex(16)
        small.bulk_load(keys)
        large = RMIIndex(8192)
        large.bulk_load(keys)
        assert _cold_cost(large, keys[::501]) <= _cold_cost(
            small, keys[::501]
        )

    def test_dili_pays_no_last_mile_search(self, keys):
        """DILI's headline property: per-leaf work is O(1) -- one slot
        probe -- so its cold cost has no log-n search component."""
        index = DILI()
        index.bulk_load(keys)
        bins = BinarySearchIndex()
        bins.bulk_load(keys)
        assert _cold_cost(index, keys[::501]) < _cold_cost(
            bins, keys[::501]
        )

    def test_warm_cache_reduces_everyones_cost(self, keys):
        for make in (DILI, lambda: BPlusTree(32), LippIndex):
            index = make()
            index.bulk_load(keys)
            tracer = CostTracer(CacheSimulator(1 << 18))
            probes = keys[::301]
            for k in probes:
                index.get(float(k), tracer)
            cold = tracer.total_cycles
            tracer.reset_counters()
            for k in probes:
                index.get(float(k), tracer)
            warm = tracer.total_cycles
            assert warm < cold, type(index).__name__


class TestPhaseAccounting:
    @pytest.mark.parametrize(
        "make",
        [DILI, lambda: RMIIndex(256), lambda: RadixSplineIndex(16, 12)],
    )
    def test_step_phases_partition_cost(self, keys, make):
        index = make()
        index.bulk_load(keys)
        tracer = CostTracer()
        for k in keys[::401]:
            index.get(float(k), tracer)
        phases = tracer.phase_cycles
        assert phases.get("step1", 0) > 0
        assert phases.get("step2", 0) > 0
        assert (
            phases["step1"] + phases["step2"]
            <= tracer.total_cycles + 1e-6
        )
