"""Tests for MassTree and LIPP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LippIndex, MassTree, UnsupportedOperation
from repro.data import load_dataset
from repro.simulate.tracer import CostTracer
from tests.baselines.conftest import assert_full_lookup


class TestMassTree:
    def test_lookup(self, fb_keys):
        index = MassTree()
        index.bulk_load(fb_keys)
        assert_full_lookup(index, fb_keys)

    def test_rejects_insufficient_slices(self):
        with pytest.raises(ValueError):
            MassTree(slice_bits=8, levels=4)  # 32 bits < 52

    def test_insert_and_get(self, logn_keys):
        index = MassTree()
        index.bulk_load(logn_keys[::2])
        for k in logn_keys[1::2]:
            assert index.insert(float(k), "new")
        assert not index.insert(float(logn_keys[0]), "dup")
        for k in logn_keys[1::2][::9]:
            assert index.get(float(k)) == "new"
        assert len(index) == len(logn_keys)

    def test_delete_prunes_empty_layers(self):
        index = MassTree()
        keys = np.array([1.0, 2.0, 3.0])
        index.bulk_load(keys)
        mem_full = index.memory_bytes()
        for k in keys:
            assert index.delete(float(k))
        assert len(index) == 0
        assert index.get(1.0) is None
        assert index.memory_bytes() < mem_full
        assert not index.delete(1.0)

    def test_insert_into_empty(self):
        index = MassTree()
        assert index.insert(7.0, "x")
        assert index.get(7.0) == "x"

    def test_range_query(self):
        index = MassTree()
        index.bulk_load(np.arange(0, 200, 2, dtype=np.float64))
        got = [k for k, _ in index.range_query(10.0, 21.0)]
        assert got == [10.0, 12.0, 14.0, 16.0, 18.0, 20.0]

    def test_deep_traversal_costs_more_than_btree(self, fb_keys):
        """Table 4's point: the layered trie pays for its depth."""
        from repro.baselines import BPlusTree

        mass = MassTree()
        mass.bulk_load(fb_keys)
        btree = BPlusTree(32)
        btree.bulk_load(fb_keys)
        mass_tracer, btree_tracer = CostTracer(), CostTracer()
        probes = fb_keys[::41]
        for k in probes:  # warm
            mass.get(float(k), mass_tracer)
            btree.get(float(k), btree_tracer)
        mass_tracer.reset_counters()
        btree_tracer.reset_counters()
        for k in probes:
            mass.get(float(k), mass_tracer)
            btree.get(float(k), btree_tracer)
        assert mass_tracer.total_cycles > btree_tracer.total_cycles


class TestLipp:
    def test_lookup(self, fb_keys):
        index = LippIndex()
        index.bulk_load(fb_keys)
        assert_full_lookup(index, fb_keys)

    def test_lookup_on_all_datasets(self):
        for name in ("fb", "wikits", "osm", "books", "logn"):
            keys = load_dataset(name, 5000, seed=61)
            index = LippIndex()
            index.bulk_load(keys)
            for i in range(0, len(keys), 61):
                assert index.get(float(keys[i])) == i, (name, i)

    def test_no_deletions(self, fb_keys):
        index = LippIndex()
        index.bulk_load(fb_keys)
        with pytest.raises(UnsupportedOperation):
            index.delete(float(fb_keys[0]))

    def test_insert_and_get(self, logn_keys):
        index = LippIndex()
        index.bulk_load(logn_keys[::2])
        for k in logn_keys[1::2]:
            assert index.insert(float(k), "new")
        assert not index.insert(float(logn_keys[0]), "dup")
        for k in logn_keys[1::2][::9]:
            assert index.get(float(k)) == "new"
        assert len(index) == len(logn_keys)

    def test_insert_into_empty(self):
        index = LippIndex()
        assert index.insert(3.0, "a")
        assert index.get(3.0) == "a"

    def test_rebuilds_bound_depth(self):
        index = LippIndex(rebuild_threshold=2.0)
        index.bulk_load(np.arange(0, 50000, 25, dtype=np.float64))
        rng = np.random.default_rng(62)
        hot = np.unique(rng.uniform(100.0, 120.0, 1500))
        for k in hot:
            index.insert(float(k), "hot")
        assert index.rebuild_count > 0
        for k in hot[::17]:
            assert index.get(float(k)) == "hot"

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            LippIndex(rebuild_threshold=1.0)

    def test_range_query(self, logn_keys):
        index = LippIndex()
        index.bulk_load(logn_keys)
        lo, hi = float(logn_keys[50]), float(logn_keys[250])
        got = [k for k, _ in index.range_query(lo, hi)]
        assert got == [float(k) for k in logn_keys[50:250]]

    def test_memory_exceeds_dili(self):
        """Fig. 6a: LIPP's conflict nesting costs far more memory."""
        from repro import DILI

        keys = load_dataset("fb", 10000, seed=63)
        lipp = LippIndex()
        lipp.bulk_load(keys)
        dili = DILI()
        dili.bulk_load(keys)
        assert lipp.memory_bytes() > dili.memory_bytes()

    def test_max_depth_diagnostic(self, fb_keys):
        index = LippIndex()
        index.bulk_load(fb_keys)
        assert index.max_depth() >= 2  # conflicts are inevitable on FB


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=2**45),
        min_size=1,
        max_size=200,
        unique=True,
    ),
    extra=st.lists(
        st.integers(min_value=0, max_value=2**45),
        max_size=60,
        unique=True,
    ),
)
@settings(max_examples=40, deadline=None)
def test_property_lipp_and_masstree_store_everything(keys, extra):
    """Bulk + inserts: both structures retain exactly the key set."""
    arr = np.array(sorted(keys), dtype=np.float64)
    for index in (LippIndex(), MassTree()):
        index.bulk_load(arr)
        inserted = set(map(float, keys))
        for k in extra:
            k = float(k)
            assert index.insert(k, "e") == (k not in inserted)
            inserted.add(k)
        assert len(index) == len(inserted)
        for k in inserted:
            assert index.get(k) is not None
