"""Suite-wide fixtures: the ``--sanitize`` invariant-checking mode.

``pytest --sanitize`` attaches a :class:`repro.check.TreeSanitizer` to
every :class:`repro.core.dili.DILI` the tests construct, so each
mutating operation is spot-checked against the compiled flat plan and
the whole tree is deep-verified on an amortized schedule.  The CI
``check`` job runs the core and durability suites this way; locally it
is off by default because deep verification is O(n) per trigger.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="attach a TreeSanitizer to every DILI built by the tests",
    )


@pytest.fixture(autouse=True)
def _sanitize_all_trees(request, monkeypatch):
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro.check import TreeSanitizer
    from repro.core.dili import DILI

    original_init = DILI.__init__

    def init_with_sanitizer(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        # full_every stays None: the amortized policy keeps overhead
        # bounded even for the suite's pathological churn tests.
        self.sanitizer = TreeSanitizer()

    monkeypatch.setattr(DILI, "__init__", init_with_sanitizer)
    yield
