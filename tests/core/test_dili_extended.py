"""Tests for DILI's extended API: updates, accessors, persistence,
and the disk-mode configuration (the paper's Section 9 future work)."""

import numpy as np
import pytest

from repro import DILI, DiliConfig
from repro.core.nodes import DenseLeafNode


def _index(n=2_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10**9, n * 2))[:n].astype(float)
    index = DILI()
    index.bulk_load(keys, [f"v{i}" for i in range(len(keys))])
    return index, keys


class TestUpdate:
    def test_update_existing(self):
        index, keys = _index()
        assert index.update(float(keys[5]), "changed")
        assert index.get(float(keys[5])) == "changed"
        assert len(index) == len(keys)
        index.validate()

    def test_update_missing_is_noop(self):
        index, keys = _index()
        assert not index.update(float(keys[0]) - 1.0, "x")
        assert index.get(float(keys[0]) - 1.0) is None

    def test_update_nested_pair(self):
        index = DILI()
        index.bulk_load(np.arange(0, 1000, 1, dtype=np.float64))
        index.insert(500.25, "a")
        index.insert(500.5, "b")  # forces a nested conflict leaf
        assert index.update(500.25, "a2")
        assert index.get(500.25) == "a2"
        assert index.get(500.5) == "b"

    def test_update_on_empty(self):
        assert not DILI().update(1.0, "x")

    def test_update_dense_leaf(self):
        keys = np.arange(0, 500, 1, dtype=np.float64)
        index = DILI(DiliConfig(local_optimization=False))
        index.bulk_load(keys)
        assert index.update(250.0, "dense")
        assert index.get(250.0) == "dense"
        assert not index.update(250.5, "no")


class TestAccessors:
    def test_pop(self):
        index, keys = _index()
        key = float(keys[7])
        assert index.pop(key) == "v7"
        assert index.get(key) is None
        assert index.pop(key, default="gone") == "gone"
        index.validate()

    def test_min_max(self):
        index, keys = _index()
        assert index.min_item() == (float(keys[0]), "v0")
        assert index.max_item()[0] == float(keys[-1])

    def test_min_max_empty(self):
        index = DILI()
        assert index.min_item() is None
        assert index.max_item() is None

    def test_count_range(self):
        index = DILI()
        index.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        assert index.count_range(10.0, 20.0) == 5
        assert index.count_range(11.0, 12.0) == 0
        assert index.count_range(-5.0, 1000.0) == 50

    def test_keys_values_iterators(self):
        index, keys = _index(200)
        assert list(index.keys()) == [float(k) for k in keys]
        assert list(index.values()) == [f"v{i}" for i in range(len(keys))]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        index, keys = _index(1_500, seed=3)
        index.insert(0.5, "extra")
        path = tmp_path / "index.dili"
        index.save(path)
        loaded = DILI.load(path)
        assert len(loaded) == len(index)
        assert loaded.get(0.5) == "extra"
        for i in range(0, len(keys), 37):
            assert loaded.get(float(keys[i])) == f"v{i}"
        loaded.validate()

    def test_loaded_index_is_updatable(self, tmp_path):
        index, keys = _index(500, seed=4)
        path = tmp_path / "index.dili"
        index.save(path)
        loaded = DILI.load(path)
        assert loaded.insert(float(keys[-1]) + 10.0, "post-load")
        assert loaded.delete(float(keys[0]))
        loaded.validate()

    def test_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "junk.dili"
        import pickle

        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            DILI.load(path)

    def test_rejects_wrong_version(self, tmp_path):
        import pickle

        path = tmp_path / "old.dili"
        path.write_bytes(
            pickle.dumps({"format_version": 99, "index": None})
        )
        with pytest.raises(ValueError):
            DILI.load(path)


class TestDiskMode:
    def test_for_disk_builds_and_answers(self):
        keys = np.unique(
            np.random.default_rng(5).integers(0, 10**9, 8_000)
        ).astype(float)
        index = DILI(DiliConfig.for_disk())
        index.bulk_load(keys)
        for i in range(0, len(keys), 61):
            assert index.get(float(keys[i])) == i
        index.validate()

    def test_disk_mode_disables_local_opt(self):
        config = DiliConfig.for_disk()
        assert not config.local_optimization
        keys = np.arange(0, 3_000, 1, dtype=np.float64)
        index = DILI(config)
        index.bulk_load(keys)

        def leaf_kinds(node):
            if type(node) is DenseLeafNode:
                yield node
                return
            children = getattr(node, "children", None)
            if children:
                for child in children:
                    yield from leaf_kinds(child)

        assert all(
            isinstance(leaf, DenseLeafNode)
            for leaf in leaf_kinds(index.root)
        )

    def test_disk_cost_model_prefers_fewer_nodes(self):
        """Pricing node fetches as IOs pushes greedy merging toward
        fewer, larger pieces than the in-memory model chooses."""
        from repro.core.segmentation import greedy_merging

        rng = np.random.default_rng(6)
        xs = np.sort(rng.uniform(0, 1e9, 4_000))
        mem_result = greedy_merging(xs, params=DiliConfig().cost_params())
        disk_result = greedy_merging(
            xs, params=DiliConfig.for_disk().cost_params()
        )
        assert len(disk_result.segments) <= len(mem_result.segments)
