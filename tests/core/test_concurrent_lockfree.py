"""Epoch-pinned lock-free batch reads on ConcurrentDILI.

Covers the tentpole win conditions that are not wall-clock gates (those
live in ``benchmarks/check_batch_baseline.py``):

* trace identity -- a pinned published plan, however many
  copy-on-write patches produced it, simulates to *exactly* the same
  cycles and cache misses as a fresh compile of the same tree
  (Hypothesis over random mutation histories);
* snapshot semantics -- a pinned reader keeps a coherent pre-write
  view while writers publish new versions; the writing thread reads
  its own writes back;
* threaded stress -- 4 reader threads against structural writers,
  every read consistent with the loaded base data, with a
  :class:`~repro.check.LockSanitizer` attached and clean.
"""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import LockSanitizer
from repro.core.concurrent import ConcurrentDILI
from repro.core.flat import compile_plan
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.lognormal(0, 1, n) * 1e9)


def _fresh(keys, n, seed):
    rng = np.random.default_rng(seed)
    lo, hi = float(keys[0]), float(keys[-1])
    out = np.unique(rng.uniform(lo, hi, 4 * n))
    return out[~np.isin(out, keys)][:n]


def _loaded(keys):
    index = ConcurrentDILI(stripes=16)
    index.bulk_load(keys, list(range(len(keys))))
    index.get_batch(keys[:4])  # compile + publish
    return index


def _trace(plan, queries, cycles):
    tracer = CostTracer(CacheSimulator(2048))
    out, trace = plan.lookup_batch(queries, record=True)
    plan.replay_trace(queries, trace, tracer, cycles)
    return plan.gather_values(out), tracer.total_cycles, tracer.cache_misses


class TestTraceIdentity:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), data=st.data())
    def test_pinned_plan_matches_fresh_compile_cycle_for_cycle(
        self, seed, data
    ):
        keys = _keys(1500, seed=seed)
        index = _loaded(keys)
        fresh = _fresh(keys, 64, seed + 1)

        # A random mutation history drives the plan through the
        # copy-on-write tiers (value patches, slot patches, splices).
        ops = data.draw(
            st.lists(
                st.sampled_from(["insert", "delete", "update"]),
                min_size=1,
                max_size=6,
            )
        )
        inserted: list[float] = []
        rng = np.random.default_rng(seed + 2)
        for op in ops:
            if op == "insert" and len(inserted) < len(fresh):
                key = float(fresh[len(inserted)])
                assert index.insert(key, "new")
                inserted.append(key)
            elif op == "delete" and inserted:
                assert index.delete(inserted.pop())
            else:
                pos = int(rng.integers(0, len(keys)))
                assert index.update(float(keys[pos]), ("upd", pos))

        pinned = index._published.load()
        assert pinned is not None and pinned.frozen
        rebuilt = compile_plan(index.index.root)
        queries = np.concatenate(
            [keys[:: max(1, len(keys) // 200)], np.asarray(inserted or [0.0])]
        )
        cycles = index.index._cycles
        got_pinned, cyc_pinned, miss_pinned = _trace(pinned, queries, cycles)
        got_fresh, cyc_fresh, miss_fresh = _trace(rebuilt, queries, cycles)
        assert got_pinned == got_fresh
        assert cyc_pinned == cyc_fresh  # +-0 simulated cycles
        assert miss_pinned == miss_fresh


class TestSnapshotSemantics:
    def test_pinned_reader_keeps_prewrite_view(self):
        keys = _keys(1000, seed=3)
        index = _loaded(keys)
        victim = float(keys[100])
        with index._pinned_plan() as plan:
            before = plan.version
            assert index.update(victim, "rewritten")  # publishes anew
            # The pinned snapshot is immutable: same version, old value.
            assert plan.version == before
            assert plan.get_batch(np.asarray([victim])) == [100]
        # A fresh read observes the new version and the new value.
        assert index.published_plan_version > before
        assert index.get_batch([victim]) == ["rewritten"]

    def test_writer_thread_reads_its_own_writes(self):
        keys = _keys(1000, seed=4)
        index = _loaded(keys)
        fresh = _fresh(keys, 32, 5)
        index.insert_batch(fresh, [("mine", i) for i in range(len(fresh))])
        assert index.get_batch(fresh) == [
            ("mine", i) for i in range(len(fresh))
        ]
        index.delete_batch(fresh[:16])
        assert index.get_batch(fresh[:16]) == [None] * 16

    def test_unabsorbable_mutation_falls_back_and_republishes(self):
        keys = _keys(400, seed=6)
        index = _loaded(keys)
        # A bulk_load replaces the tree wholesale: nothing to patch,
        # so the wrapper republishes whatever plan state results and
        # reads stay correct through the fallback path.
        index.bulk_load(keys, [("v2", i) for i in range(len(keys))])
        assert index.get_batch(keys[:8]) == [("v2", i) for i in range(8)]


class TestThreadedStress:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_four_readers_vs_writers_sanitizer_clean(self, seed):
        keys = _keys(2000, seed=seed)
        index = _loaded(keys)
        san = LockSanitizer(index)
        fresh = _fresh(keys, 96, seed + 1)
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader(rseed):
            rng = np.random.default_rng(rseed)
            try:
                while not stop.is_set():
                    idx = rng.integers(0, len(keys), size=64)
                    got = index.get_batch(keys[idx])
                    # Base keys are never touched by the writers, so
                    # every published version agrees on their values.
                    if got != [int(i) for i in idx]:
                        raise AssertionError(
                            "lock-free batch read returned a value "
                            "inconsistent with every published version"
                        )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                chunks = np.array_split(fresh, 6)
                for round_no in range(12):
                    chunk = chunks[round_no % len(chunks)]
                    if round_no % 2 == 0:
                        index.insert_batch(chunk, [round_no] * len(chunk))
                    else:
                        index.delete_batch(chunk)
                index.bulk_insert(fresh, [-1] * len(fresh))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        readers = [
            threading.Thread(target=reader, args=(seed + 10 + r,))
            for r in range(4)
        ]
        churn = threading.Thread(target=writer)
        for t in readers:
            t.start()
        churn.start()
        churn.join()
        stop.set()
        for t in readers:
            t.join()
        try:
            assert not errors, errors[0]
            san.assert_clean()
            stats = index.lock_stats
            assert stats["plan_publishes"] >= 1
            assert stats["epoch_pins"] >= 1
            index.index.validate()
        finally:
            san.detach()
