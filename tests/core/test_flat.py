"""Unit tests for the compiled flat read plan (repro.core.flat)."""

import pickle

import numpy as np
import pytest

from repro import DILI, DiliConfig
from repro.core.flat import FlatPlan, compile_plan
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer


def _dataset(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.lognormal(0, 1, n) * 1e9)


@pytest.fixture(scope="module")
def loaded():
    keys = _dataset(4000, seed=3)
    index = DILI()
    index.bulk_load(keys)
    return index, keys


@pytest.fixture(scope="module")
def loaded_dense():
    keys = _dataset(4000, seed=4)
    index = DILI(DiliConfig(local_optimization=False))
    index.bulk_load(keys)
    return index, keys


class TestCompile:
    def test_plan_compiles_lazily(self):
        keys = _dataset(500, seed=9)
        index = DILI()
        index.bulk_load(keys)
        assert index._flat is None
        index.get_batch(keys[:10])
        assert isinstance(index._flat, FlatPlan)

    def test_plan_is_reused_between_batch_reads(self, loaded):
        index, keys = loaded
        index.get_batch(keys[:5])
        plan = index._flat
        index.get_batch(keys[5:10])
        assert index._flat is plan

    def test_pair_keys_sorted(self, loaded):
        index, _ = loaded
        plan = compile_plan(index.root)
        assert np.all(np.diff(plan.pair_keys) > 0)
        assert plan.num_pairs == len(index)

    def test_dense_plan(self, loaded_dense):
        index, keys = loaded_dense
        plan = compile_plan(index.root)
        assert len(plan.dense_keys) == len(keys)
        assert np.all(np.diff(plan.dense_keys) > 0)

    def test_memory_bytes_positive(self, loaded):
        index, _ = loaded
        plan = compile_plan(index.root)
        assert plan.memory_bytes() > 0


class TestIncrementalMaintenance:
    @pytest.mark.parametrize("mutate", ["insert", "delete", "update",
                                        "bulk_insert"])
    def test_mutations_keep_the_plan_consistent(self, mutate):
        keys = _dataset(800, seed=11)
        index = DILI()
        index.bulk_load(keys)
        index.get_batch(keys[:4])
        assert index._flat is not None
        if mutate == "insert":
            index.insert(float(keys[-1]) + 7.0, "new")
        elif mutate == "delete":
            index.delete(float(keys[3]))
        elif mutate == "update":
            index.update(float(keys[3]), "changed")
        else:
            extra = np.array([float(keys[-1]) + k for k in (3.0, 9.0, 15.0)])
            index.bulk_insert(extra)
        # Mutations patch/splice the plan in place instead of dropping
        # it; the maintained plan must equal a fresh compile.
        plan = index._flat
        assert plan is not None, mutate
        fresh = compile_plan(index.root)
        assert np.array_equal(plan.pair_keys, fresh.pair_keys), mutate
        assert plan.values == fresh.values, mutate

    @pytest.mark.parametrize("mutate", ["insert", "delete"])
    def test_noop_mutations_leave_the_plan_untouched(self, mutate):
        keys = _dataset(800, seed=11)
        index = DILI()
        index.bulk_load(keys)
        index.get_batch(keys[:4])
        plan = index._flat
        if mutate == "insert":
            assert not index.insert(float(keys[3]), "dup")
        else:
            assert not index.delete(float(keys[3]) + 0.5)
        assert index._flat is plan, mutate
        assert index.plan_patches == 0
        assert index.plan_subtree_recompiles == 0

    def test_batch_sees_mutations(self):
        keys = np.array([10.0, 20.0, 30.0, 40.0, 50.0])
        index = DILI()
        index.bulk_load(keys, list("abcde"))
        assert index.get_batch([20.0, 25.0]) == ["b", None]
        index.insert(25.0, "x")
        index.delete(20.0)
        index.update(30.0, "C")
        assert index.get_batch([20.0, 25.0, 30.0]) == [None, "x", "C"]
        assert index.contains_batch([20.0, 25.0]).tolist() == [False, True]

    def test_bulk_load_replaces_plan(self):
        keys = _dataset(300, seed=13)
        index = DILI()
        index.bulk_load(keys)
        index.get_batch(keys[:2])
        index.bulk_load(keys[: len(keys) // 2])
        assert index._flat is None
        assert index.get_batch(keys[:2]) == [0, 1]


class TestBatchReads:
    def test_hits_and_misses(self, loaded):
        index, keys = loaded
        probe = np.concatenate([keys[:50], keys[:50] + 1.0])
        got = index.get_batch(probe)
        assert got[:50] == list(range(50))
        assert got[50:] == [None] * 50

    def test_dense_hits_and_misses(self, loaded_dense):
        index, keys = loaded_dense
        probe = np.concatenate([keys[-50:], keys[-50:] + 1.0])
        got = index.get_batch(probe)
        n = len(keys)
        assert got[:50] == list(range(n - 50, n))
        assert got[50:] == [None] * 50

    def test_empty_batch(self, loaded):
        index, _ = loaded
        assert index.get_batch([]) == []
        assert index.contains_batch([]).tolist() == []
        assert index.count_range_batch([], []).tolist() == []

    def test_empty_index(self):
        index = DILI()
        assert index.get_batch([1.0, 2.0]) == [None, None]
        assert index.contains_batch([1.0]).tolist() == [False]
        assert index.count_range_batch([0.0], [9.0]).tolist() == [0]

    def test_rejects_bad_shapes(self, loaded):
        index, keys = loaded
        with pytest.raises(ValueError):
            index.get_batch(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            index.count_range_batch([1.0, 2.0], [3.0])

    def test_count_range_batch_matches_scalar(self, loaded):
        index, keys = loaded
        rng = np.random.default_rng(17)
        los = rng.choice(keys, size=40)
        his = los + rng.uniform(0.0, 1e10, size=40)
        counts = index.count_range_batch(los, his)
        for lo, hi, c in zip(los, his, counts):
            assert c == index.count_range(float(lo), float(hi))


class TestTracedCostParity:
    @pytest.mark.parametrize("dense", [False, True])
    def test_batch_trace_equals_scalar_trace(self, dense):
        keys = _dataset(3000, seed=21)
        cfg = DiliConfig(local_optimization=not dense)
        index = DILI(cfg)
        index.bulk_load(keys)
        rng = np.random.default_rng(23)
        probe = np.concatenate([
            rng.choice(keys, size=600),
            rng.choice(keys, size=100) + 1.0,  # misses
        ])

        scalar = CostTracer(CacheSimulator(1024))
        for k in probe:
            index.get(float(k), scalar)

        batch = CostTracer(CacheSimulator(1024))
        index.get_batch(probe, batch)

        assert batch.total_cycles == scalar.total_cycles
        assert batch.cache_misses == scalar.cache_misses
        assert batch.mem_accesses == scalar.mem_accesses
        assert batch.phase_cycles == scalar.phase_cycles


class TestPersistence:
    def test_pickle_round_trip_drops_plan(self, loaded):
        index, keys = loaded
        index.get_batch(keys[:3])
        clone = pickle.loads(pickle.dumps(index))
        assert clone._flat is None
        assert clone.get_batch(keys[:3]) == [0, 1, 2]
