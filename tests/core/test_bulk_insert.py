"""Tests for DILI.bulk_insert (batch ingestion)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI


def _index(n=2_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10**9, 3 * n))[:n].astype(float)
    index = DILI()
    index.bulk_load(keys, [f"v{i}" for i in range(len(keys))])
    return index, keys


class TestBulkInsert:
    def test_small_batch_uses_insert_path(self):
        index, keys = _index()
        batch = np.array([0.5, 1.5, 2.5])
        added = index.bulk_insert(batch, ["a", "b", "c"])
        assert added == 3
        assert index.get(1.5) == "b"
        assert len(index) == len(keys) + 3
        index.validate()

    def test_large_batch_triggers_rebuild(self):
        index, keys = _index(1_000, seed=1)
        rng = np.random.default_rng(2)
        batch = np.setdiff1d(
            np.unique(rng.integers(0, 10**9, 3_000)).astype(float), keys
        )
        added = index.bulk_insert(batch, [f"n{i}" for i in range(len(batch))])
        assert added == len(batch)
        assert len(index) == len(keys) + len(batch)
        # Old values survive the rebuild.
        assert index.get(float(keys[10])) == "v10"
        assert index.get(float(batch[5])) == "n5"
        index.validate()

    def test_existing_keys_keep_old_values(self):
        index, keys = _index(500, seed=3)
        batch = keys[:100].copy()
        added = index.bulk_insert(batch, ["clash"] * len(batch))
        assert added == 0
        assert index.get(float(keys[0])) == "v0"
        assert len(index) == len(keys)

    def test_mixed_batch_counts_only_new(self):
        index, keys = _index(4_00, seed=4)
        fresh = np.array([0.25, 0.75])
        batch = np.concatenate([keys[:3], fresh])
        added = index.bulk_insert(
            batch, ["x"] * len(batch), rebuild_ratio=0.001
        )
        assert added == 2
        assert index.get(0.25) == "x"
        assert index.get(float(keys[0])) == "v0"
        index.validate()

    def test_unsorted_batch_accepted(self):
        index, _ = _index(300, seed=5)
        added = index.bulk_insert([3.5, 1.5, 2.5])
        assert added == 3
        assert index.get(1.5) == "inserted"

    def test_duplicate_batch_keys_rejected(self):
        index, _ = _index(300, seed=6)
        with pytest.raises(ValueError):
            index.bulk_insert([1.5, 1.5])

    def test_value_length_mismatch_rejected(self):
        index, _ = _index(300, seed=7)
        with pytest.raises(ValueError):
            index.bulk_insert([1.0, 2.0], ["only-one"])

    def test_empty_batch(self):
        index, keys = _index(300, seed=8)
        assert index.bulk_insert([]) == 0
        assert len(index) == len(keys)

    def test_into_empty_index(self):
        index = DILI()
        added = index.bulk_insert([3.0, 1.0, 2.0], ["c", "a", "b"])
        assert added == 3
        assert index.get(1.0) == "a"
        index.validate()


@given(
    initial=st.lists(
        st.integers(min_value=0, max_value=2**40),
        min_size=0,
        max_size=100,
        unique=True,
    ),
    batch=st.lists(
        st.integers(min_value=0, max_value=2**40),
        max_size=120,
        unique=True,
    ),
    ratio=st.sampled_from([0.01, 0.3, 10.0]),
)
@settings(max_examples=60, deadline=None)
def test_property_bulk_insert_matches_loop_of_inserts(initial, batch, ratio):
    """bulk_insert is semantically a loop of insert() calls, whatever
    the internal strategy (per-key vs rebuild)."""
    initial = sorted(initial)
    bulk = DILI()
    loop = DILI()
    if initial:
        arr = np.array(initial, dtype=np.float64)
        bulk.bulk_load(arr)
        loop.bulk_load(arr)
    batch_arr = np.array(sorted(batch), dtype=np.float64)
    added = bulk.bulk_insert(
        batch_arr, ["b"] * len(batch_arr), rebuild_ratio=ratio
    )
    expected_added = sum(
        1 for k in batch_arr if loop.insert(float(k), "b")
    )
    assert added == expected_added
    assert len(bulk) == len(loop)
    for key in set(initial) | set(batch):
        assert bulk.get(float(key)) == loop.get(float(key))
    bulk.validate()
