"""Tests for the lock-crabbing concurrent wrapper (Appendix A.8)."""

import threading

import numpy as np
import pytest

from repro.core.concurrent import ConcurrentDILI


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.uniform(0, 1e9, n))


class TestBasicOperations:
    def test_single_threaded_semantics(self):
        keys = _keys(1000)
        index = ConcurrentDILI()
        index.bulk_load(keys)
        assert len(index) == len(keys)
        assert index.get(float(keys[10])) == 10
        assert index.insert(0.5, "x")
        assert not index.insert(0.5, "y")
        assert index.delete(0.5)
        assert not index.delete(0.5)
        assert float(keys[3]) in index
        index.index.validate()

    def test_empty_index(self):
        index = ConcurrentDILI()
        assert index.get(1.0) is None
        assert not index.delete(1.0)
        assert index.insert(1.0, "a")
        assert index.get(1.0) == "a"

    def test_range_query(self):
        index = ConcurrentDILI()
        index.bulk_load(np.arange(0.0, 100.0))
        got = [k for k, _ in index.range_query(10.0, 15.0)]
        assert got == [10.0, 11.0, 12.0, 13.0, 14.0]

    def test_insert_many(self):
        index = ConcurrentDILI()
        index.bulk_load(np.arange(0.0, 10.0))
        added = index.insert_many([(100.0, "a"), (5.0, "dup"), (101.0, "b")])
        assert added == 2

    def test_rejects_bad_stripes(self):
        with pytest.raises(ValueError):
            ConcurrentDILI(stripes=0)

    def test_update(self):
        index = ConcurrentDILI()
        index.bulk_load(np.arange(0.0, 100.0))
        assert index.update(5.0, "new")
        assert index.get(5.0) == "new"
        assert not index.update(1000.0, "absent")
        assert ConcurrentDILI().update(1.0, "empty") is False

    def test_bulk_insert(self):
        index = ConcurrentDILI()
        index.bulk_load(np.arange(0.0, 100.0))
        added = index.bulk_insert([200.5, 201.5, 5.0], ["a", "b", "dup"])
        assert added == 2
        assert index.get(200.5) == "a"
        assert len(index) == 102
        index.index.validate()

    def test_adopts_existing_index(self):
        from repro import DILI

        inner = DILI()
        inner.bulk_load(np.arange(0.0, 50.0))
        index = ConcurrentDILI(index=inner)
        assert len(index) == 50
        assert index.index is inner

    def test_items_snapshot(self):
        index = ConcurrentDILI()
        index.bulk_load(np.arange(0.0, 10.0))
        assert [k for k, _ in index.items()] == list(np.arange(0.0, 10.0))


class TestConcurrency:
    def test_parallel_inserts_are_all_applied(self):
        base = _keys(2000, seed=1)
        index = ConcurrentDILI()
        index.bulk_load(base)
        extra = np.setdiff1d(_keys(4000, seed=2), base)
        chunks = np.array_split(extra, 8)
        errors = []

        def worker(chunk):
            try:
                for k in chunk:
                    assert index.insert(float(k), "t")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(index) == len(base) + len(extra)
        for k in extra[::97]:
            assert index.get(float(k)) == "t"
        index.index.validate()

    def test_mixed_readers_and_writers(self):
        base = _keys(3000, seed=3)
        index = ConcurrentDILI()
        index.bulk_load(base)
        extra = np.setdiff1d(_keys(2000, seed=4), base)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    for k in base[::201]:
                        assert index.get(float(k)) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer(chunk):
            try:
                for k in chunk:
                    index.insert(float(k), "w")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [
            threading.Thread(target=writer, args=(c,))
            for c in np.array_split(extra, 4)
        ]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert len(index) == len(base) + len(extra)
        index.index.validate()

    def test_concurrent_deletes_remove_exactly_once(self):
        base = _keys(2000, seed=5)
        index = ConcurrentDILI()
        index.bulk_load(base)
        victims = base[::2]
        deleted = []
        lock = threading.Lock()

        def worker():
            count = 0
            for k in victims:
                if index.delete(float(k)):
                    count += 1
            with lock:
                deleted.append(count)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each victim key is deleted by exactly one thread overall.
        assert sum(deleted) == len(victims)
        assert len(index) == len(base) - len(victims)
        index.index.validate()


class TestVerifiedLocking:
    def test_point_ops_race_whole_tree_rebuilds(self):
        """The lock-verification protocol: bulk rebuilds swap the tree
        out from under the lock-free descent, so the stripe computed
        before acquisition can guard a dead leaf.  Verified acquisition
        must re-descend and retry; no op may be lost or crash."""
        base = _keys(1500, seed=20)
        index = ConcurrentDILI(stripes=16)
        index.bulk_load(base)
        extra = np.setdiff1d(_keys(1500, seed=21), base)
        stop = threading.Event()
        errors = []

        def rebuilder():
            try:
                # Large batches force the merge-and-rebulk-load path,
                # replacing every node object in the tree.
                batch = np.setdiff1d(_keys(4000, seed=22), base)
                while not stop.is_set():
                    index.bulk_insert(batch[:900], ["rb"] * 900)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def pointops(chunk):
            try:
                for k in chunk:
                    assert index.insert(float(k), "p")
                    assert index.get(float(k)) == "p"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        rb = threading.Thread(target=rebuilder)
        workers = [
            threading.Thread(target=pointops, args=(c,))
            for c in np.array_split(extra, 3)
        ]
        rb.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        rb.join()
        assert not errors
        for k in extra[::53]:
            assert index.get(float(k)) == "p"
        index.index.validate()

    def test_exclusive_blocks_point_ops(self):
        index = ConcurrentDILI(stripes=8)
        index.bulk_load(np.arange(0.0, 100.0))
        entered = threading.Event()
        release = threading.Event()
        order = []

        def holder():
            with index.exclusive():
                entered.set()
                release.wait(timeout=5)
                order.append("exclusive-done")

        def writer():
            entered.wait(timeout=5)
            index.insert(1000.5, "w")
            order.append("write-done")

        h = threading.Thread(target=holder)
        w = threading.Thread(target=writer)
        h.start()
        w.start()
        entered.wait(timeout=5)
        import time as _time

        _time.sleep(0.05)  # give the writer a chance to (wrongly) run
        release.set()
        h.join()
        w.join()
        assert order == ["exclusive-done", "write-done"]


class TestLockStats:
    def test_empty_tree_locked_escalates_and_is_counted(self):
        """locked() on an empty tree finds no leaf to lock (the
        ``leaf is None`` break) and must fall back to exclusive();
        the fallback is no longer silent."""
        index = ConcurrentDILI()
        stats = index.lock_stats
        assert {stats[k] for k in ("acquisitions", "retries", "escalations")} \
            == {0}
        # The epoch-publication counters ride along in the same dict.
        for key in ("plan_publishes", "plans_retired", "epoch_pins"):
            assert stats[key] == 0
        assert index.insert(1.0, "first")
        assert index.lock_stats["escalations"] == 1
        assert index.lock_stats["acquisitions"] == 0
        # With a leaf present, verified acquisition succeeds normally.
        assert index.insert(2.0, "second")
        assert index.lock_stats["acquisitions"] == 1
        assert index.lock_stats["escalations"] == 1

    def test_single_key_tree_point_ops_use_verified_acquisition(self):
        index = ConcurrentDILI()
        index.bulk_load(np.array([10.0]))
        assert index.get(10.0) == 0
        assert index.get(11.0) is None  # miss still locks the owner leaf
        assert index.update(10.0, "x")
        assert index.delete(10.0)
        assert index.lock_stats["acquisitions"] == 4
        assert index.lock_stats["escalations"] == 0
        # The root leaf persists after the delete (empty, not None), so
        # the next point write still verifies instead of escalating.
        assert index.insert(5.0, "y")
        assert index.lock_stats["acquisitions"] == 5
        assert index.lock_stats["escalations"] == 0

    def test_exclusive_partial_acquisition_unwinds(self):
        """A stripe lock that raises mid-acquisition must not leave the
        earlier stripes (or the global lock) held."""

        class Boom(RuntimeError):
            pass

        events = []

        class TrackingLock:
            def __init__(self, inner, name):
                self.inner = inner
                self.name = name
                self.fail_next = False

            def acquire(self, *args, **kwargs):
                if self.fail_next:
                    self.fail_next = False
                    raise Boom(self.name)
                result = self.inner.acquire(*args, **kwargs)
                events.append(("acquire", self.name))
                return result

            def release(self):
                self.inner.release()
                events.append(("release", self.name))

            def __enter__(self):
                self.acquire()
                return self

            def __exit__(self, *exc):
                self.release()

        index = ConcurrentDILI(stripes=8)
        index.bulk_load(np.arange(0.0, 100.0))
        wrappers = {}

        def wrap(lock, name):
            wrappers[name] = TrackingLock(lock, name)
            return wrappers[name]

        index.instrument_locks(wrap)
        wrappers["stripe[3]"].fail_next = True
        events.clear()

        with pytest.raises(Boom):
            with index.exclusive():
                pass  # pragma: no cover - never reached

        # Stripes 0..2 were acquired and released in reverse order;
        # stripe 3 raised before touching its inner lock; the global
        # lock unwound through its context manager.
        assert events == [
            ("acquire", "global"),
            ("acquire", "stripe[0]"),
            ("acquire", "stripe[1]"),
            ("acquire", "stripe[2]"),
            ("release", "stripe[2]"),
            ("release", "stripe[1]"),
            ("release", "stripe[0]"),
            ("release", "global"),
        ]

        # Nothing is left held: point ops and full exclusive sections
        # proceed, including on the stripe that raised.
        assert index.insert(1000.5, "after")
        with index.exclusive():
            pass
        assert ("acquire", "stripe[3]") in events


class TestConcurrentRangeAndMixedOps:
    def test_range_queries_during_writes_are_consistent_snapshots(self):
        """Scans run under exclusive() (stripe-locked point writers
        would otherwise mutate a leaf mid-scan), so each one must see a
        sorted, duplicate-free view containing every base key in range
        even while writers run."""
        base = _keys(2000, seed=7)
        index = ConcurrentDILI()
        index.bulk_load(base)
        extra = np.setdiff1d(_keys(2000, seed=8), base)
        stop = threading.Event()
        errors = []
        lo, hi = float(base[100]), float(base[900])
        base_in_range = set(base[(base >= lo) & (base < hi)])  # [lo, hi)

        def scanner():
            try:
                while not stop.is_set():
                    pairs = index.range_query(lo, hi)
                    keys_only = [k for k, _ in pairs]
                    assert keys_only == sorted(set(keys_only))
                    # No writer deletes, so an exclusive scan can never
                    # miss a base key that falls inside the range.
                    assert base_in_range.issubset(keys_only)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer(chunk):
            try:
                for k in chunk:
                    index.insert(float(k), "w")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        scan_threads = [threading.Thread(target=scanner) for _ in range(2)]
        write_threads = [
            threading.Thread(target=writer, args=(c,))
            for c in np.array_split(extra, 3)
        ]
        for t in scan_threads + write_threads:
            t.start()
        for t in write_threads:
            t.join()
        stop.set()
        for t in scan_threads:
            t.join()
        assert not errors
        index.index.validate()

    def test_items_during_writes_is_consistent_snapshot(self):
        """items() is exclusive too: every snapshot it returns must be
        sorted, duplicate-free, and a superset of the base keys."""
        base = _keys(1500, seed=9)
        index = ConcurrentDILI()
        index.bulk_load(base)
        extra = np.setdiff1d(_keys(1500, seed=10), base)
        stop = threading.Event()
        errors = []
        base_set = set(base)

        def scanner():
            try:
                while not stop.is_set():
                    keys_only = [k for k, _ in index.items()]
                    assert keys_only == sorted(set(keys_only))
                    assert base_set.issubset(keys_only)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer(chunk):
            try:
                for k in chunk:
                    index.insert(float(k), "w")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        scan_thread = threading.Thread(target=scanner)
        write_threads = [
            threading.Thread(target=writer, args=(c,))
            for c in np.array_split(extra, 3)
        ]
        scan_thread.start()
        for t in write_threads:
            t.start()
        for t in write_threads:
            t.join()
        stop.set()
        scan_thread.join()
        assert not errors
        assert len(index) == len(base) + len(extra)
        index.index.validate()

    def test_interleaved_insert_delete_get_across_threads(self):
        base = _keys(3000, seed=9)
        index = ConcurrentDILI()
        index.bulk_load(base)
        victims = base[::3]
        extra = np.setdiff1d(_keys(3000, seed=10), base)
        errors = []

        def deleter():
            try:
                for k in victims:
                    index.delete(float(k))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def inserter():
            try:
                for k in extra:
                    assert index.insert(float(k), "i")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def getter():
            try:
                survivors = np.setdiff1d(base, victims)
                for k in survivors[::7]:
                    assert index.get(float(k)) is not None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=f)
            for f in (deleter, inserter, getter, getter)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(index) == len(base) - len(victims) + len(extra)
        index.index.validate()
