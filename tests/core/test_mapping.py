"""Tests for the DiliMap MutableMapping facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import DiliMap


class TestConstruction:
    def test_from_dict(self):
        m = DiliMap({10: "a", 20: "b"})
        assert m[10] == "a"
        assert len(m) == 2

    def test_from_pairs(self):
        m = DiliMap([(3, "c"), (1, "a")])
        assert list(m) == [1.0, 3.0]

    def test_duplicate_keys_last_wins(self):
        m = DiliMap([(1, "first"), (1, "second")])
        assert m[1] == "second"
        assert len(m) == 1

    def test_empty(self):
        m = DiliMap()
        assert len(m) == 0
        assert 1 not in m


class TestMappingProtocol:
    def test_set_get_del(self):
        m = DiliMap()
        m[5] = "x"
        assert m[5] == "x"
        m[5] = "y"  # overwrite via update path
        assert m[5] == "y"
        assert len(m) == 1
        del m[5]
        assert 5 not in m
        with pytest.raises(KeyError):
            m[5]
        with pytest.raises(KeyError):
            del m[5]

    def test_get_default(self):
        m = DiliMap({1: "a"})
        assert m.get(1) == "a"
        assert m.get(2) is None
        assert m.get(2, "d") == "d"

    def test_iteration_is_sorted(self):
        m = DiliMap({30: "c", 10: "a", 20: "b"})
        assert list(m) == [10.0, 20.0, 30.0]
        assert list(m.values()) == ["a", "b", "c"]
        assert list(m.items()) == [(10.0, "a"), (20.0, "b"), (30.0, "c")]

    def test_update_and_setdefault(self):
        m = DiliMap({1: "a"})
        m.update({2: "b", 3: "c"})
        assert len(m) == 3
        assert m.setdefault(1, "z") == "a"
        assert m.setdefault(4, "d") == "d"

    def test_pop(self):
        m = DiliMap({1: "a"})
        assert m.pop(1) == "a"
        assert m.pop(1, "gone") == "gone"
        with pytest.raises(KeyError):
            m.pop(1)

    def test_contains_non_numeric(self):
        m = DiliMap({1: "a"})
        assert "banana" not in m

    def test_rejects_none_values_and_nan_keys(self):
        m = DiliMap()
        with pytest.raises(ValueError):
            m[1] = None
        with pytest.raises(ValueError):
            m[float("nan")] = "x"


class TestOrderedExtensions:
    def test_irange(self):
        m = DiliMap({float(k): k for k in range(0, 100, 10)})
        assert [k for k, _ in m.irange(15, 45)] == [20.0, 30.0, 40.0]

    def test_peekitem(self):
        m = DiliMap({5: "lo", 50: "hi"})
        assert m.peekitem() == (50.0, "hi")
        assert m.peekitem(last=False) == (5.0, "lo")
        with pytest.raises(KeyError):
            DiliMap().peekitem()

    def test_underlying_index_accessible(self):
        m = DiliMap({1: "a", 2: "b"})
        m.index.validate()
        assert len(m.index) == 2


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["set", "del", "get"]),
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=150,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_dilimap_matches_dict(ops):
    """DiliMap behaves exactly like a dict with float keys."""
    m = DiliMap()
    ref: dict[float, int] = {}
    for op, raw_key, value in ops:
        key = float(raw_key)
        if op == "set":
            m[key] = value
            ref[key] = value
        elif op == "del":
            if key in ref:
                del m[key]
                del ref[key]
            else:
                with pytest.raises(KeyError):
                    del m[key]
        else:
            assert m.get(key) == ref.get(key)
    assert len(m) == len(ref)
    assert dict(m.items()) == ref
    m.index.validate()
