"""Tests for the bottom-up mirror tree (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.butree import BUTree
from repro.core.cost import CostParams
from repro.simulate.tracer import CostTracer


def _uniform(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.uniform(0, 1e12, n))


def _lognormal(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.lognormal(0, 1, n) * 1e9)


class TestBUTreeConstruction:
    def test_rejects_empty_keys(self):
        with pytest.raises(ValueError):
            BUTree(np.array([]), [])

    def test_rejects_unsorted_keys(self):
        with pytest.raises(ValueError):
            BUTree(np.array([3.0, 1.0, 2.0]), [0, 1, 2])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError):
            BUTree(np.array([1.0, 1.0, 2.0]), [0, 1, 2])

    def test_height_is_at_least_one(self):
        keys = np.array([1.0, 2.0, 3.0])
        tree = BUTree(keys, [0, 1, 2])
        assert tree.height >= 1
        assert tree.root.fanout >= 1

    def test_levels_shrink_upward(self):
        tree = BUTree(_uniform(5000), list(range(5000)))
        sizes = [len(level) for level in tree.levels]
        assert sizes[-1] == 1
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_leaves_cover_all_keys_contiguously(self):
        keys = _lognormal(3000)
        tree = BUTree(keys, list(range(len(keys))))
        leaves = tree.levels[0]
        assert leaves[0].start == 0
        assert leaves[-1].end == len(keys)
        for a, b in zip(leaves, leaves[1:]):
            assert a.end == b.start
            assert a.ub == pytest.approx(b.lb)

    def test_internal_bounds_match_children(self):
        tree = BUTree(_uniform(4000, seed=1), list(range(4000)))
        for level in tree.levels[1:]:
            for node in level:
                assert node.children is not None
                assert node.lb == node.children[0].lb
                assert node.ub == node.children[-1].ub
                assert list(node.bounds) == [c.lb for c in node.children]

    def test_level_lower_bounds_accessor(self):
        tree = BUTree(_uniform(2000, seed=2), list(range(2000)))
        lbs = tree.level_lower_bounds(0)
        assert len(lbs) == len(tree.levels[0])
        assert bool(np.all(np.diff(lbs) > 0))


class TestBUTreeLookup:
    @pytest.mark.parametrize("make", [_uniform, _lognormal])
    def test_finds_every_key(self, make):
        keys = make(2500, seed=3)
        values = [f"v{i}" for i in range(len(keys))]
        tree = BUTree(keys, values)
        for i in range(0, len(keys), 13):
            assert tree.get(float(keys[i])) == values[i]

    def test_misses_return_none(self):
        keys = np.array([10.0, 20.0, 30.0, 40.0, 50.0, 60.0])
        tree = BUTree(keys, list(range(6)))
        assert tree.get(15.0) is None
        assert tree.get(5.0) is None
        assert tree.get(65.0) is None

    def test_traced_lookup_accumulates_cost(self):
        keys = _uniform(1000, seed=4)
        tree = BUTree(keys, list(range(len(keys))))
        tracer = CostTracer()
        assert tree.get(float(keys[500]), tracer) == 500
        assert tracer.total_cycles > 0
        assert tracer.mem_accesses > 0
        assert "step1" in tracer.phase_cycles
        assert "step2" in tracer.phase_cycles

    def test_memory_and_node_count_positive(self):
        tree = BUTree(_uniform(500, seed=5), list(range(500)))
        assert tree.memory_bytes() > 0
        assert tree.node_count() >= tree.height + 1


class TestCostModelEffects:
    def test_small_omega_means_more_leaves(self):
        keys = _lognormal(4000, seed=6)
        wide = BUTree(keys, list(range(len(keys))), params=CostParams(omega=4096))
        narrow = BUTree(keys, list(range(len(keys))), params=CostParams(omega=64))
        assert len(narrow.levels[0]) >= len(wide.levels[0])

    def test_sampling_build_still_correct(self):
        keys = _lognormal(3000, seed=7)
        tree = BUTree(keys, list(range(len(keys))), sample=True)
        for i in range(0, len(keys), 41):
            assert tree.get(float(keys[i])) == i


class TestBUTreeProperties:
    def test_lookup_agrees_with_searchsorted_on_random_shapes(self):
        """BU-Tree answers must match a reference search for a spread of
        distribution shapes (its own accuracy is only approximate, but
        its *answers* must be exact)."""
        import numpy as np

        rng = np.random.default_rng(123)
        shapes = {
            "uniform": np.unique(rng.integers(0, 10**9, 3000)),
            "lognormal": np.unique(
                np.floor(rng.lognormal(0, 2, 3000) * 1e5)
            ),
            "steps": np.unique(
                np.cumsum(rng.choice([1, 1000], size=3000))
            ),
        }
        for name, keys in shapes.items():
            keys = keys.astype(np.float64)
            tree = BUTree(keys, list(range(len(keys))))
            probes = np.concatenate(
                [keys[::37], keys[::41] + 0.5, [keys[0] - 5, keys[-1] + 5]]
            )
            lookup = {float(k): i for i, k in enumerate(keys)}
            for probe in probes:
                assert tree.get(float(probe)) == lookup.get(
                    float(probe)
                ), (name, probe)

    def test_breakdown_phases_recorded(self):
        keys = _uniform(1500, seed=9)
        tree = BUTree(keys, list(range(len(keys))))
        tracer = CostTracer()
        for k in keys[::101]:
            tree.get(float(k), tracer)
        assert tracer.phase_cycles.get("step1", 0) > 0
        assert tracer.phase_cycles.get("step2", 0) > 0

    def test_sampling_halves_level0_fit_input(self):
        keys = _lognormal(6000, seed=10)
        full = BUTree(keys, list(range(len(keys))))
        sampled = BUTree(keys, list(range(len(keys))), sample=True)
        # The sampled layout has a comparable number of leaf pieces and
        # still covers every key exactly once.
        n_full = len(full.levels[0])
        n_samp = len(sampled.levels[0])
        assert abs(n_full - n_samp) <= max(4, 0.5 * n_full)
        assert sampled.levels[0][0].start == 0
        assert sampled.levels[0][-1].end == len(keys)
