"""Property tests: batch writes agree with the scalar loop, always.

The contract of ``insert_batch`` / ``delete_batch`` / ``update_batch``
(docs/api.md) is *semantic identity* with the per-key loop:

* identical resulting tree (same items, validates, same bookkeeping
  counters),
* identical simulated cost trace under a real tracer -- same total
  cycles, memory accesses, cache misses and per-phase breakdown, to
  the cycle,
* and, when a compiled flat plan is being maintained, the patched /
  subtree-spliced plan is bit-identical to a fresh ``compile_plan`` of
  the mutated tree -- with interleaved batch reads staying correct the
  whole time.

The same equivalence is asserted through the ``ConcurrentDILI`` wrapper
and across a ``DurableDILI`` crash-replay of the single framed
batch-write WAL records.
"""

import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI
from repro.core.concurrent import ConcurrentDILI
from repro.core.flat import compile_plan
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer

key_sets = st.sets(
    st.integers(min_value=0, max_value=2**40), min_size=4, max_size=100
)
# Write batches reuse the same universe so batches overlap existing
# keys (duplicate inserts, misses on delete/update) as well as miss it.
write_lists = st.lists(
    st.integers(min_value=0, max_value=2**40), min_size=0, max_size=60
)

_PLAN_ARRAYS = (
    "kind", "slope", "intercept", "size", "base", "region",
    "slot_kind", "slot_ref", "pair_keys", "sorted_keys",
)


def _bulk(keys_set):
    keys = np.array(sorted(float(k) for k in keys_set))
    index = DILI()
    index.bulk_load(keys, [("v", float(k)) for k in keys])
    return index, keys


def _writes(raw):
    return np.asarray([float(k) for k in raw], dtype=np.float64)


def _assert_same_tree(a, b):
    assert list(a.items()) == list(b.items())
    assert len(a) == len(b)
    assert a.insert_count == b.insert_count
    assert a.moved_pairs == b.moved_pairs
    a.validate()
    b.validate()


def _assert_same_trace(ta, tb):
    assert ta.total_cycles == tb.total_cycles
    assert ta.mem_accesses == tb.mem_accesses
    assert ta.cache_misses == tb.cache_misses
    assert ta.phase_cycles == tb.phase_cycles


def _assert_plan_matches_fresh(index):
    plan = index._flat
    assert plan is not None, "a batch write dropped the compiled plan"
    fresh = compile_plan(index.root)
    for name in _PLAN_ARRAYS:
        assert np.array_equal(getattr(plan, name), getattr(fresh, name)), name
    assert plan.values == fresh.values
    assert plan.num_pairs == fresh.num_pairs


class TestScalarLoopEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(keys_set=key_sets, ins=write_lists, dels=write_lists)
    def test_insert_delete_batch(self, keys_set, ins, dels):
        a, keys = _bulk(keys_set)
        b, _ = _bulk(keys_set)
        ta = CostTracer(CacheSimulator(64))
        tb = CostTracer(CacheSimulator(64))
        ins_arr = _writes(ins)
        vals = [("new", float(k)) for k in ins_arr]
        got = [a.insert(float(k), v, ta) for k, v in zip(ins_arr, vals)]
        out = b.insert_batch(ins_arr, vals, tb)
        assert out.tolist() == got
        _assert_same_tree(a, b)
        _assert_same_trace(ta, tb)
        dels_arr = _writes(dict.fromkeys(dels))  # scalar==batch on dups
        got = [a.delete(float(k), ta) for k in dels_arr]
        out = b.delete_batch(dels_arr, tb)
        assert out.tolist() == got
        _assert_same_tree(a, b)
        _assert_same_trace(ta, tb)

    @settings(max_examples=30, deadline=None)
    @given(keys_set=key_sets, ups=write_lists)
    def test_update_batch(self, keys_set, ups):
        a, keys = _bulk(keys_set)
        b, _ = _bulk(keys_set)
        ups_arr = _writes(dict.fromkeys(ups))
        vals = [("up", float(k)) for k in ups_arr]
        got = [a.update(float(k), v) for k, v in zip(ups_arr, vals)]
        out = b.update_batch(ups_arr, vals)
        assert out.tolist() == got
        _assert_same_tree(a, b)


class TestPlanMaintenance:
    @settings(max_examples=50, deadline=None)
    @given(keys_set=key_sets, ins=write_lists, dels=write_lists,
           ups=write_lists)
    def test_patched_plan_equals_fresh_compile(
        self, keys_set, ins, dels, ups
    ):
        index, keys = _bulk(keys_set)
        index.get_batch(keys[:4])  # compile the flat plan
        probe = np.concatenate([keys, keys + 1.0])

        def check():
            _assert_plan_matches_fresh(index)
            batch = index.get_batch(probe)
            assert batch == [index.get(float(k)) for k in probe]

        index.insert_batch(_writes(ins), [("n", k) for k in ins])
        check()
        index.delete_batch(_writes(dict.fromkeys(dels)))
        check()
        ups_arr = _writes(dict.fromkeys(ups))
        index.update_batch(ups_arr, [("u", float(k)) for k in ups_arr])
        check()
        # Full plan recompiles never happened: only patches/splices.
        assert index.plan_recompiles == 1

    @settings(max_examples=30, deadline=None)
    @given(keys_set=key_sets, rounds=st.lists(
        st.tuples(write_lists, write_lists), min_size=1, max_size=4,
    ))
    def test_interleaved_batches_keep_plan_alive(self, keys_set, rounds):
        index, keys = _bulk(keys_set)
        index.get_batch(keys[:4])
        for ins, dels in rounds:
            index.insert_batch(_writes(ins), [("n", k) for k in ins])
            index.delete_batch(_writes(dict.fromkeys(dels)))
            _assert_plan_matches_fresh(index)
        assert index.plan_recompiles == 1


class TestConcurrentWrapper:
    @settings(max_examples=30, deadline=None)
    @given(keys_set=key_sets, ins=write_lists, dels=write_lists)
    def test_concurrent_batches_match_plain(self, keys_set, ins, dels):
        plain, keys = _bulk(keys_set)
        wrapped = ConcurrentDILI(stripes=8)
        wrapped.bulk_load(
            keys.copy(), [("v", float(k)) for k in keys]
        )
        ins_arr = _writes(ins)
        vals = [("new", float(k)) for k in ins_arr]
        assert (
            wrapped.insert_batch(ins_arr, vals).tolist()
            == plain.insert_batch(ins_arr, vals).tolist()
        )
        dels_arr = _writes(dict.fromkeys(dels))
        assert (
            wrapped.delete_batch(dels_arr).tolist()
            == plain.delete_batch(dels_arr).tolist()
        )
        assert list(wrapped.items()) == list(plain.items())
        wrapped._index.validate()


class TestDurableCrashReplay:
    @settings(max_examples=15, deadline=None)
    @given(keys_set=key_sets, ins=write_lists, dels=write_lists,
           ups=write_lists)
    def test_batch_wal_records_replay(self, keys_set, ins, dels, ups):
        from repro.durability import DurableDILI, recover

        with tempfile.TemporaryDirectory() as d:
            live = DurableDILI(d, sync=False)
            keys = np.array(sorted(float(k) for k in keys_set))
            live.bulk_load(keys, [("v", float(k)) for k in keys])
            ins_arr = _writes(ins)
            live.insert_batch(ins_arr, [("n", float(k)) for k in ins_arr])
            live.delete_batch(_writes(dict.fromkeys(dels)))
            ups_arr = _writes(dict.fromkeys(ups))
            live.update_batch(ups_arr, [("u", float(k)) for k in ups_arr])
            live.sync_wal()
            # Crash: reopen from disk without close/snapshot.  The
            # three batch records replay through the same batch APIs.
            result = recover(d)
            assert result.replayed == 3
            assert result.failed == 0
            assert list(result.index.items()) == list(live.items())
            live.close()
