"""Unit tests for the DILI node structures."""

import numpy as np
import pytest

from repro.core.linear_model import LinearModel
from repro.core.local_opt import local_opt
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode


class TestInternalNode:
    def test_child_index_paper_example(self):
        # Fig. 1: N_T covers [80, 160) with 4 children; key 101 -> child 1.
        node = InternalNode(80.0, 160.0, 4)
        assert node.child_index(101.0) == 1
        assert node.child_index(80.0) == 0
        assert node.child_index(159.999) == 3

    def test_child_index_clamps_out_of_range(self):
        node = InternalNode(0.0, 100.0, 10)
        assert node.child_index(-50.0) == 0
        assert node.child_index(500.0) == 9

    def test_child_bounds_partition_range(self):
        node = InternalNode(0.0, 120.0, 3)
        bounds = [node.child_bounds(i) for i in range(3)]
        assert bounds[0] == (0.0, 40.0)
        assert bounds[2] == (80.0, 120.0)
        # Contiguous partition.
        for (___, ub), (lb, __) in zip(bounds, bounds[1:]):
            assert ub == lb

    def test_keys_route_into_their_bounds(self):
        node = InternalNode(7.0, 993.0, 17)
        rng = np.random.default_rng(1)
        for key in rng.uniform(7.0, 993.0, 200):
            i = node.child_index(float(key))
            lb, ub = node.child_bounds(i)
            assert lb <= key < ub or i == node.fanout - 1

    def test_fanout(self):
        assert InternalNode(0.0, 1.0, 5).fanout == 5


class TestLeafNode:
    def test_predict_slot_clamps(self):
        leaf = LeafNode(0.0, 100.0)
        leaf.set_model(LinearModel(1.0, 0.0))
        leaf.slots = [None] * 10
        assert leaf.predict_slot(-5.0) == 0
        assert leaf.predict_slot(4.2) == 4
        assert leaf.predict_slot(99.0) == 9

    def test_iter_pairs_recurses_in_key_order(self):
        leaf = LeafNode(0.0, 100.0)
        # Cluster keys so nesting definitely occurs.
        keys = sorted(
            [10.0, 10.001, 10.002, 50.0, 90.0, 90.0001, 90.0002]
        )
        pairs = [(k, i) for i, k in enumerate(keys)]
        local_opt(leaf, pairs)
        assert list(leaf.iter_pairs()) == pairs

    def test_fanout_tracks_slots(self):
        leaf = LeafNode(0.0, 1.0)
        leaf.slots = [None] * 7
        assert leaf.fanout == 7


class TestDenseLeafNode:
    def _make(self, n=100):
        keys = np.arange(n, dtype=np.float64) * 2.0
        model = LinearModel.fit(keys)
        return DenseLeafNode(0.0, 2.0 * n, keys, list(range(n)), model)

    def test_predict_position(self):
        leaf = self._make()
        assert leaf.predict_position(40.0) == 20

    def test_iter_pairs(self):
        leaf = self._make(5)
        assert list(leaf.iter_pairs()) == [
            (0.0, 0), (2.0, 1), (4.0, 2), (6.0, 3), (8.0, 4)
        ]

    def test_num_pairs(self):
        assert self._make(13).num_pairs == 13
