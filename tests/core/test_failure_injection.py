"""Failure-injection tests: validate() must catch structural damage.

A production index needs a checker that actually detects corruption;
these tests break invariants on purpose and assert the checker trips.
On-disk failure injection (torn WAL records, corrupt snapshots, kill-9
crash storms) lives in the dedicated ``tests/durability/`` suite; the
persistence tests here cover the plain ``DILI.save``/``load`` file
format.
"""

import os

import numpy as np
import pytest

from repro import DILI
from repro.core.nodes import InternalNode, LeafNode


def _built(n=3_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10**9, 2 * n))[:n].astype(float)
    index = DILI()
    index.bulk_load(keys)
    return index


def _first_leaf_with_pair(index):
    stack = [index.root]
    while stack:
        node = stack.pop()
        if type(node) is InternalNode:
            stack.extend(node.children)
            continue
        for i, entry in enumerate(node.slots):
            if type(entry) is tuple:
                return node, i
    raise AssertionError("no pair found")


class TestValidateCatchesCorruption:
    def test_clean_index_passes(self):
        _built().validate()

    def test_misplaced_pair_detected(self):
        index = _built()
        leaf, i = _first_leaf_with_pair(index)
        # Move the pair to a slot its model does not predict.
        wrong = (i + 1) % len(leaf.slots)
        while leaf.slots[wrong] is not None:
            wrong = (wrong + 1) % len(leaf.slots)
        leaf.slots[wrong], leaf.slots[i] = leaf.slots[i], None
        with pytest.raises(AssertionError):
            index.validate()

    def test_count_drift_detected(self):
        index = _built()
        index._count += 1
        with pytest.raises(AssertionError):
            index.validate()

    def test_leaf_num_pairs_drift_detected(self):
        index = _built()
        leaf, _ = _first_leaf_with_pair(index)
        leaf.num_pairs += 1
        with pytest.raises(AssertionError):
            index.validate()

    def test_silently_dropped_pair_detected(self):
        index = _built()
        leaf, i = _first_leaf_with_pair(index)
        leaf.slots[i] = None  # lose a pair without bookkeeping
        with pytest.raises(AssertionError):
            index.validate()

    def test_duplicate_key_detected(self):
        index = _built()
        leaf, i = _first_leaf_with_pair(index)
        key, value = leaf.slots[i]
        # Plant a second copy of the same key in another leaf slot that
        # happens to predict it -- iteration order then breaks.
        other = LeafNode(key, key + 1.0)
        from repro.core.local_opt import local_opt

        local_opt(other, [(key, "dup")])
        planted = False
        stack = [index.root]
        while stack and not planted:
            node = stack.pop()
            if type(node) is InternalNode:
                stack.extend(node.children)
                continue
            for j, entry in enumerate(node.slots):
                if entry is None and node is not other:
                    node.slots[j] = other
                    node.num_pairs += 1
                    index._count += 1
                    planted = True
                    break
        assert planted
        with pytest.raises(AssertionError):
            index.validate()


class TestPersistenceCorruption:
    """save()/load() must reject damaged files with clear ValueErrors."""

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "index.dili"
        _built(500).save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(ValueError):
            DILI.load(path)

    def test_flipped_payload_byte_rejected(self, tmp_path):
        path = tmp_path / "index.dili"
        _built(500).save(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            DILI.load(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "index.dili"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            DILI.load(path)

    def test_foreign_pickle_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "index.dili"
        path.write_bytes(pickle.dumps({"just": "a dict"}))
        with pytest.raises(ValueError, match="not a saved DILI"):
            DILI.load(path)

    def test_save_is_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "index.dili"
        _built(500).save(path)
        _built(500).save(path)  # overwrite goes through rename too
        assert os.listdir(tmp_path) == ["index.dili"]

    def test_load_validate_flag_catches_planted_damage(self, tmp_path):
        path = tmp_path / "index.dili"
        index = _built(1_000)
        leaf, i = _first_leaf_with_pair(index)
        leaf.slots[i] = None  # structural damage validate() detects
        index.save(path)
        DILI.load(path)  # without the flag, damage loads silently
        with pytest.raises(AssertionError):
            DILI.load(path, validate=True)

    def test_roundtrip_with_validate(self, tmp_path):
        path = tmp_path / "index.dili"
        index = _built(1_000)
        index.save(path)
        loaded = DILI.load(path, validate=True)
        assert len(loaded) == len(index)


class TestBPlusTreeValidator:
    def test_detects_unsorted_leaf(self):
        from repro.baselines import BPlusTree

        tree = BPlusTree(8)
        tree.bulk_load(np.arange(100, dtype=np.float64))
        node = tree._root
        while not node.is_leaf:
            node = node.children[0]
        node.keys[0], node.keys[1] = node.keys[1], node.keys[0]
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_bad_separator(self):
        from repro.baselines import BPlusTree

        tree = BPlusTree(8)
        tree.bulk_load(np.arange(1000, dtype=np.float64))
        assert not tree._root.is_leaf
        tree._root.keys[0] = -1.0
        with pytest.raises(AssertionError):
            tree.validate()
