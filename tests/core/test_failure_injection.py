"""Failure-injection tests: validate() must catch structural damage.

A production index needs a checker that actually detects corruption;
these tests break invariants on purpose and assert the checker trips.
"""

import numpy as np
import pytest

from repro import DILI
from repro.core.nodes import InternalNode, LeafNode


def _built(n=3_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10**9, 2 * n))[:n].astype(float)
    index = DILI()
    index.bulk_load(keys)
    return index


def _first_leaf_with_pair(index):
    stack = [index.root]
    while stack:
        node = stack.pop()
        if type(node) is InternalNode:
            stack.extend(node.children)
            continue
        for i, entry in enumerate(node.slots):
            if type(entry) is tuple:
                return node, i
    raise AssertionError("no pair found")


class TestValidateCatchesCorruption:
    def test_clean_index_passes(self):
        _built().validate()

    def test_misplaced_pair_detected(self):
        index = _built()
        leaf, i = _first_leaf_with_pair(index)
        # Move the pair to a slot its model does not predict.
        wrong = (i + 1) % len(leaf.slots)
        while leaf.slots[wrong] is not None:
            wrong = (wrong + 1) % len(leaf.slots)
        leaf.slots[wrong], leaf.slots[i] = leaf.slots[i], None
        with pytest.raises(AssertionError):
            index.validate()

    def test_count_drift_detected(self):
        index = _built()
        index._count += 1
        with pytest.raises(AssertionError):
            index.validate()

    def test_leaf_num_pairs_drift_detected(self):
        index = _built()
        leaf, _ = _first_leaf_with_pair(index)
        leaf.num_pairs += 1
        with pytest.raises(AssertionError):
            index.validate()

    def test_silently_dropped_pair_detected(self):
        index = _built()
        leaf, i = _first_leaf_with_pair(index)
        leaf.slots[i] = None  # lose a pair without bookkeeping
        with pytest.raises(AssertionError):
            index.validate()

    def test_duplicate_key_detected(self):
        index = _built()
        leaf, i = _first_leaf_with_pair(index)
        key, value = leaf.slots[i]
        # Plant a second copy of the same key in another leaf slot that
        # happens to predict it -- iteration order then breaks.
        other = LeafNode(key, key + 1.0)
        from repro.core.local_opt import local_opt

        local_opt(other, [(key, "dup")])
        planted = False
        stack = [index.root]
        while stack and not planted:
            node = stack.pop()
            if type(node) is InternalNode:
                stack.extend(node.children)
                continue
            for j, entry in enumerate(node.slots):
                if entry is None and node is not other:
                    node.slots[j] = other
                    node.num_pairs += 1
                    index._count += 1
                    planted = True
                    break
        assert planted
        with pytest.raises(AssertionError):
            index.validate()


class TestBPlusTreeValidator:
    def test_detects_unsorted_leaf(self):
        from repro.baselines import BPlusTree

        tree = BPlusTree(8)
        tree.bulk_load(np.arange(100, dtype=np.float64))
        node = tree._root
        while not node.is_leaf:
            node = node.children[0]
        node.keys[0], node.keys[1] = node.keys[1], node.keys[0]
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_bad_separator(self):
        from repro.baselines import BPlusTree

        tree = BPlusTree(8)
        tree.bulk_load(np.arange(1000, dtype=np.float64))
        assert not tree._root.is_leaf
        tree._root.keys[0] = -1.0
        with pytest.raises(AssertionError):
            tree.validate()
