"""Structural tests for the bulk loader (Algorithm 4 + deviations)."""

import numpy as np
import pytest

from repro import DILI, DiliConfig
from repro.core.bulk_load import bulk_load
from repro.core.cost import CostParams
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode


def _walk_nodes(root):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if type(node) is InternalNode:
            stack.extend(node.children)
        elif type(node) is LeafNode:
            for entry in node.slots:
                if entry is not None and type(entry) is not tuple:
                    stack.append(entry)


class TestLayout:
    def test_internal_children_partition_parent_range(self):
        rng = np.random.default_rng(1)
        keys = np.unique(rng.integers(0, 10**9, 20_000)).astype(float)
        result = bulk_load(keys, list(range(len(keys))), CostParams())
        for node in _walk_nodes(result.root):
            if type(node) is not InternalNode:
                continue
            width = (node.ub - node.lb) / node.fanout
            for i, child in enumerate(node.children):
                if hasattr(child, "lb"):
                    assert child.lb == pytest.approx(
                        node.lb + i * width, rel=1e-9
                    )

    def test_no_single_child_internal_chains(self):
        """The collapse deviation: every internal node partitions."""
        rng = np.random.default_rng(2)
        keys = np.unique(rng.lognormal(0, 2, 20_000) * 1e6)
        result = bulk_load(keys, list(range(len(keys))), CostParams())
        for node in _walk_nodes(result.root):
            if type(node) is InternalNode:
                assert node.fanout >= 2

    def test_all_keys_land_in_covering_leaves(self):
        rng = np.random.default_rng(3)
        keys = np.unique(rng.integers(0, 10**8, 10_000)).astype(float)
        result = bulk_load(keys, list(range(len(keys))), CostParams())
        found = sorted(
            k
            for node in _walk_nodes(result.root)
            if type(node) is LeafNode
            for k, _ in (
                entry
                for entry in node.slots
                if entry is not None and type(entry) is tuple
            )
        )
        assert found == sorted(set(found))
        assert len(found) + sum(
            0 for _ in ()
        ) <= len(keys)  # no duplicates materialized

    def test_leaf_count_matches_bu_level0(self):
        """Algorithm 4: DILI has as many top-level leaves as the BU-Tree
        has level-0 nodes (plus/minus the clipping at equal-width
        boundaries)."""
        rng = np.random.default_rng(4)
        keys = np.unique(rng.integers(0, 10**8, 30_000)).astype(float)
        index = DILI()
        index.bulk_load(keys, keep_butree=True)
        bu_leaves = len(index.butree.levels[0])
        top_leaves = 0

        def count_top(node):
            nonlocal top_leaves
            if type(node) is InternalNode:
                for child in node.children:
                    count_top(child)
            else:
                top_leaves += 1

        count_top(index.root)
        assert abs(top_leaves - bu_leaves) <= max(2, 0.2 * bu_leaves)

    def test_empty_range_leaves_accept_inserts(self):
        # A dataset with a huge hole: equal-width children inside the
        # hole become empty leaves that must still absorb inserts.
        keys = np.concatenate(
            [
                np.arange(0, 5_000, 1, dtype=np.float64),
                np.arange(10**7, 10**7 + 5_000, 1, dtype=np.float64),
            ]
        )
        index = DILI()
        index.bulk_load(keys)
        hole_key = 5.0e6
        assert index.get(hole_key) is None
        assert index.insert(hole_key, "hole")
        assert index.get(hole_key) == "hole"
        index.validate()


class TestZoom:
    def _tailed(self, n=30_000):
        body = np.arange(n, dtype=np.float64)
        tail = body[-1] * 2.0 ** np.arange(10, 20, dtype=np.float64)
        return np.unique(np.concatenate([body, tail]))

    def test_zoom_bounds_dense_leaf_sizes(self):
        keys = self._tailed()
        config = DiliConfig(local_optimization=False, zoom=True)
        index = DILI(config)
        index.bulk_load(keys)
        omega = config.omega
        for node in _walk_nodes(index.root):
            if type(node) is DenseLeafNode:
                assert len(node.keys) <= 4 * omega

    def test_no_zoom_reproduces_literal_algorithm(self):
        keys = self._tailed()
        index = DILI(DiliConfig(local_optimization=False, zoom=False))
        index.bulk_load(keys)
        sizes = [
            len(node.keys)
            for node in _walk_nodes(index.root)
            if type(node) is DenseLeafNode
        ]
        # The literal algorithm strands nearly the whole body somewhere.
        assert max(sizes) > 4 * DiliConfig().omega
        # Still correct, just slow.
        for i in range(0, len(keys), 997):
            assert index.get(float(keys[i])) == i

    def test_zoom_never_applies_to_local_opt_trees(self):
        keys = self._tailed()
        index = DILI(DiliConfig(zoom=True))
        index.bulk_load(keys)
        for i in range(0, len(keys), 997):
            assert index.get(float(keys[i])) == i
        index.validate()
