"""Tests for the traced exponential search helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search_util import exp_search_floor, exp_search_lub
from repro.simulate.tracer import CostTracer


class TestExpSearchLub:
    def setup_method(self):
        self.keys = np.array([10.0, 20.0, 30.0, 40.0, 50.0])

    def test_exact_hits(self):
        for i, k in enumerate(self.keys):
            assert exp_search_lub(self.keys, float(k), hint=0) == i
            assert exp_search_lub(self.keys, float(k), hint=4) == i

    def test_between_keys(self):
        assert exp_search_lub(self.keys, 25.0, hint=2) == 2
        assert exp_search_lub(self.keys, 10.5, hint=0) == 1

    def test_below_and_above_range(self):
        assert exp_search_lub(self.keys, 5.0, hint=2) == 0
        assert exp_search_lub(self.keys, 99.0, hint=2) == len(self.keys)

    def test_empty(self):
        assert exp_search_lub(np.array([]), 1.0, hint=0) == 0

    def test_wild_hints_are_clamped(self):
        assert exp_search_lub(self.keys, 30.0, hint=-100) == 2
        assert exp_search_lub(self.keys, 30.0, hint=10**6) == 2

    def test_cost_grows_with_hint_error(self):
        keys = np.arange(0, 100_000, 1, dtype=np.float64)
        near, far = CostTracer(), CostTracer()
        exp_search_lub(keys, 50_000.0, hint=50_001, tracer=near, region=1)
        exp_search_lub(keys, 50_000.0, hint=10, tracer=far, region=1)
        assert far.mem_accesses > near.mem_accesses


class TestExpSearchFloor:
    def test_basic(self):
        keys = np.array([10.0, 20.0, 30.0])
        assert exp_search_floor(keys, 10.0, hint=0) == 0
        assert exp_search_floor(keys, 15.0, hint=0) == 0
        assert exp_search_floor(keys, 30.0, hint=1) == 2
        assert exp_search_floor(keys, 99.0, hint=1) == 2

    def test_below_all(self):
        keys = np.array([10.0, 20.0])
        assert exp_search_floor(keys, 5.0, hint=1) == -1


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=10**6),
        min_size=1,
        max_size=300,
        unique=True,
    ),
    probe=st.integers(min_value=-10, max_value=10**6 + 10),
    hint=st.integers(min_value=-50, max_value=400),
)
@settings(max_examples=300, deadline=None)
def test_property_lub_matches_searchsorted(keys, probe, hint):
    """exp_search_lub agrees with numpy's searchsorted for any hint."""
    arr = np.array(sorted(keys), dtype=np.float64)
    expected = int(np.searchsorted(arr, float(probe), side="left"))
    assert exp_search_lub(arr, float(probe), hint=hint) == expected
