"""Tests for greedy merging segmentation (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostParams
from repro.core.segmentation import _initial_pieces, greedy_merging


def _check_partition(segments, n):
    """Segments must tile [0, n) contiguously and in order."""
    assert segments[0].start == 0
    assert segments[-1].end == n
    for a, b in zip(segments, segments[1:]):
        assert a.end == b.start


class TestInitialPieces:
    def test_even_length(self):
        assert _initial_pieces(6) == [(0, 2), (2, 4), (4, 6)]

    def test_odd_length_last_piece_has_three(self):
        assert _initial_pieces(7) == [(0, 2), (2, 4), (4, 7)]

    def test_tiny_inputs_are_single_piece(self):
        assert _initial_pieces(1) == [(0, 1)]
        assert _initial_pieces(3) == [(0, 3)]


class TestGreedyMerging:
    def test_empty_input(self):
        result = greedy_merging(np.array([]))
        assert result.segments == []

    def test_single_key(self):
        result = greedy_merging(np.array([5.0]))
        assert len(result.segments) == 1
        assert result.segments[0].size == 1

    def test_segments_partition_input(self):
        rng = np.random.default_rng(4)
        xs = np.sort(rng.uniform(0, 1e6, 1000))
        result = greedy_merging(xs)
        _check_partition(result.segments, 1000)

    def test_perfectly_linear_data_merges_to_few_pieces(self):
        xs = np.arange(2000, dtype=np.float64) * 3.0 + 100.0
        result = greedy_merging(xs)
        # Linear data has zero loss everywhere; the cost model should
        # drive the piece count toward the shallow-tree end.
        assert len(result.segments) <= 4
        assert all(seg.rmse < 1e-6 for seg in result.segments)

    def test_piecewise_linear_data_recovers_more_pieces_than_linear(self):
        # Two segments with very different slopes.
        left = np.arange(500, dtype=np.float64)
        right = 500.0 + np.arange(500, dtype=np.float64) * 1000.0
        xs = np.concatenate([left, right])
        res_pw = greedy_merging(xs)
        res_lin = greedy_merging(np.arange(1000, dtype=np.float64))
        assert len(res_pw.segments) >= len(res_lin.segments)

    def test_max_piece_size_respected(self):
        params = CostParams(omega=16)
        xs = np.sort(np.random.default_rng(5).uniform(0, 1e6, 500))
        result = greedy_merging(xs, params=params)
        assert all(seg.size <= 2 * params.omega for seg in result.segments)

    def test_omega_bounds_minimum_piece_count(self):
        params = CostParams(omega=50)
        xs = np.arange(1000, dtype=np.float64)  # favours heavy merging
        result = greedy_merging(xs, params=params)
        assert len(result.segments) >= 1000 / 50 / 2  # k_min = ceil(n/omega)

    def test_cost_curve_covers_visited_piece_counts(self):
        xs = np.sort(np.random.default_rng(6).uniform(0, 1e6, 200))
        result = greedy_merging(xs)
        ks = sorted(result.cost_curve)
        assert ks == list(range(ks[0], ks[-1] + 1))
        best = min(result.cost_curve.values())
        assert result.cost == pytest.approx(best)

    def test_chosen_k_matches_segment_count(self):
        xs = np.sort(np.random.default_rng(7).uniform(0, 1e6, 300))
        result = greedy_merging(xs)
        assert len(result.segments) in result.cost_curve
        assert result.cost_curve[len(result.segments)] == pytest.approx(
            result.cost
        )

    def test_models_fit_global_positions(self):
        xs = np.arange(100, dtype=np.float64)
        result = greedy_merging(xs)
        for seg in result.segments:
            mid = (seg.start + seg.end) // 2
            assert seg.model.predict(xs[mid]) == pytest.approx(mid, abs=0.5)

    def test_sampling_changes_little_on_smooth_data(self):
        rng = np.random.default_rng(8)
        xs = np.sort(rng.lognormal(0, 1, 3000) * 1e6)
        xs = np.unique(xs)
        full = greedy_merging(xs, sample=False)
        sampled = greedy_merging(xs, sample=True)
        # Appendix A.7: sampling barely changes the layout quality.
        n_full, n_samp = len(full.segments), len(sampled.segments)
        assert abs(n_full - n_samp) <= max(2, 0.2 * n_full)

    def test_height_parameter_damps_local_cost(self):
        xs = np.sort(np.random.default_rng(9).uniform(0, 1e6, 400))
        low = greedy_merging(xs, height=0)
        high = greedy_merging(xs, height=3)
        # At higher heights the rho**h damping shrinks the error term, so
        # merging further (fewer pieces) becomes attractive.
        assert len(high.segments) <= len(low.segments)

    def test_piece_starts_accessor(self):
        xs = np.sort(np.random.default_rng(10).uniform(0, 1e3, 64))
        result = greedy_merging(xs)
        assert result.piece_starts() == [s.start for s in result.segments]


@given(
    xs=st.lists(
        st.floats(min_value=0, max_value=1e15),
        min_size=1,
        max_size=300,
        unique=True,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_segments_always_tile_the_input(xs):
    """For any strictly increasing input the output tiles [0, n)."""
    arr = np.sort(np.array(xs, dtype=np.float64))
    arr = np.unique(arr)
    result = greedy_merging(arr)
    _check_partition(result.segments, len(arr))


@given(n=st.integers(min_value=4, max_value=2000))
@settings(max_examples=50, deadline=None)
def test_property_linear_inputs_have_near_zero_rmse(n):
    """Any arithmetic progression fits every piece perfectly."""
    xs = np.arange(n, dtype=np.float64) * 7.0
    result = greedy_merging(xs)
    assert all(seg.rmse < 1e-6 for seg in result.segments)
