"""Tests for the leaf local optimization (Algorithm 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linear_model import LinearModel
from repro.core.local_opt import LocalOptStats, fit_leaf_model, local_opt
from repro.core.nodes import LeafNode


def _make_leaf(keys, **kwargs):
    pairs = [(float(k), i) for i, k in enumerate(keys)]
    leaf = LeafNode(pairs[0][0] if pairs else 0.0,
                    (pairs[-1][0] + 1.0) if pairs else 1.0)
    local_opt(leaf, pairs, **kwargs)
    return leaf, pairs


def _lookup(leaf, key):
    """Algorithm 6 walk restricted to leaf nodes."""
    node = leaf
    while True:
        entry = node.slots[node.predict_slot(key)]
        if entry is None:
            return None
        if type(entry) is tuple:
            return entry[1] if entry[0] == key else None
        node = entry


class TestPlacementExactness:
    def test_every_pair_found_at_predicted_slot(self):
        rng = np.random.default_rng(11)
        keys = np.unique(rng.uniform(0, 1e6, 500))
        leaf, pairs = _make_leaf(keys)
        for key, value in pairs:
            assert _lookup(leaf, key) == value

    def test_missing_keys_return_none(self):
        keys = np.array([10.0, 20.0, 30.0])
        leaf, _ = _make_leaf(keys)
        assert _lookup(leaf, 15.0) is None
        assert _lookup(leaf, 10.5) is None

    def test_heavily_clustered_keys_still_exact(self):
        # Keys piled into a tiny sub-range force deep conflict nesting.
        keys = np.concatenate([
            np.linspace(0.0, 1.0, 200),
            np.linspace(1e6, 1e6 + 1.0, 200),
        ])
        keys = np.unique(keys)
        leaf, pairs = _make_leaf(keys)
        for key, value in pairs:
            assert _lookup(leaf, key) == value

    def test_adjacent_float_keys(self):
        base = 1e15
        keys = np.array([base + i for i in range(20)], dtype=np.float64)
        leaf, pairs = _make_leaf(keys)
        for key, value in pairs:
            assert _lookup(leaf, key) == value


class TestBookkeeping:
    def test_empty_leaf(self):
        leaf, _ = _make_leaf(np.array([]))
        assert leaf.num_pairs == 0
        assert leaf.delta == 0
        assert _lookup(leaf, 5.0) is None

    def test_single_pair(self):
        leaf, _ = _make_leaf(np.array([42.0]))
        assert leaf.num_pairs == 1
        assert leaf.delta == 1
        assert leaf.kappa == 1.0

    def test_delta_counts_total_entry_accesses(self):
        """Delta must equal the summed per-pair access depths: a pair at
        nesting depth d under this leaf costs d+1 entry accesses."""
        rng = np.random.default_rng(12)
        keys = np.unique(rng.lognormal(0, 2, 300) * 1e3)
        leaf, pairs = _make_leaf(keys)

        def access_count(node, key, acc=1):
            entry = node.slots[node.predict_slot(key)]
            if type(entry) is tuple:
                return acc
            return access_count(entry, key, acc + 1)

        total = sum(access_count(leaf, k) for k, _ in pairs)
        assert leaf.delta == total
        assert leaf.kappa == pytest.approx(total / len(pairs))

    def test_fanout_uses_enlarge_ratio(self):
        keys = np.linspace(0, 1000, 100)
        leaf, _ = _make_leaf(np.unique(keys), enlarge=3.0)
        assert leaf.fanout >= 3 * 100

    def test_explicit_fanout_and_model_respected(self):
        keys = np.linspace(0, 999, 50)
        fanout = 400
        model = fit_leaf_model(keys, fanout)
        leaf, pairs = _make_leaf(keys, fanout=fanout, model=model)
        assert leaf.fanout == fanout
        assert leaf.slope == pytest.approx(model.slope)
        for key, value in pairs:
            assert _lookup(leaf, key) == value

    def test_conflict_stats_recorded(self):
        # A strongly nonlinear key set must create conflicts.
        rng = np.random.default_rng(13)
        keys = np.unique(rng.lognormal(0, 3, 400))
        stats = LocalOptStats()
        _make_leaf(keys, stats=stats)
        assert stats.conflicts >= 0
        assert stats.nested_leaves >= 0
        if stats.nested_leaves:
            assert stats.max_depth >= 1
            assert stats.conflicts >= 2 * stats.nested_leaves - 1

    def test_linear_keys_cause_no_conflicts(self):
        keys = np.arange(200, dtype=np.float64)
        stats = LocalOptStats()
        leaf, _ = _make_leaf(keys, stats=stats)
        assert stats.conflicts == 0
        assert leaf.delta == 200


class TestFitLeafModel:
    def test_stretches_predictions_over_fanout(self):
        keys = np.linspace(100, 200, 50)
        model = fit_leaf_model(keys, fanout=100)
        assert model.predict(100.0) == pytest.approx(0.0, abs=1.0)
        assert model.predict(200.0) == pytest.approx(98.0, abs=2.0)

    def test_empty_keys(self):
        model = fit_leaf_model([], 10)
        assert model.predict(1.0) == 0.0

    def test_duplicate_keys_rejected_downstream(self):
        leaf = LeafNode(0.0, 10.0)
        with pytest.raises(ValueError):
            # Duplicate keys violate the documented precondition; the
            # degenerate-case guard must fail loudly, not loop.
            local_opt(
                leaf,
                [(5.0, "a"), (5.0, "b")],
                model=LinearModel(0.0, 0.0),
                fanout=4,
            )


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=2**50),
        min_size=1,
        max_size=250,
        unique=True,
    ),
    enlarge=st.floats(min_value=1.2, max_value=4.0),
)
@settings(max_examples=150, deadline=None)
def test_property_local_opt_is_lossless(keys, enlarge):
    """Whatever the key distribution, every pair stays retrievable and
    the tracked pair count matches."""
    keys = sorted(keys)
    pairs = [(float(k), i) for i, k in enumerate(keys)]
    leaf = LeafNode(pairs[0][0], pairs[-1][0] + 1.0)
    local_opt(leaf, pairs, enlarge=enlarge)
    assert leaf.num_pairs == len(pairs)
    for key, value in pairs:
        assert _lookup(leaf, key) == value
    assert [p for p in leaf.iter_pairs()] == pairs
