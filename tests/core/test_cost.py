"""Tests for the cache-aware search-cost model (Eq. 2, 5-7)."""

import math

import pytest

from repro.core.cost import (
    CostParams,
    accumulated_cost,
    bu_node_search_cycles,
    estimated_depth,
    exp_search_cycles,
)
from repro.simulate.latency import CyclesPerOp


class TestExpSearchCycles:
    def test_zero_error_is_free(self):
        assert exp_search_cycles(0.0) == 0.0

    def test_cost_grows_logarithmically(self):
        c4 = exp_search_cycles(4.0)
        c16 = exp_search_cycles(16.0)
        c256 = exp_search_cycles(256.0)
        assert 0 < c4 < c16 < c256
        # Doubling the log error roughly doubles the cost.
        assert c16 / c4 < 2.0
        assert c256 / c16 < 2.2

    def test_matches_formula(self):
        cycles = CyclesPerOp()
        expected = 2 * math.log2(8.0) * (
            cycles.exp_search_step + cycles.cache_miss
        )
        assert exp_search_cycles(7.0) == pytest.approx(expected)


class TestEstimatedDepth:
    def test_paper_worked_example(self):
        # n_{h-1}=1000 grouped into k=100 pieces: fanout 10, delta = 3.
        assert estimated_depth(1000, 100) == pytest.approx(3.0)

    def test_single_piece_is_depth_one(self):
        assert estimated_depth(1000, 1) == 1.0

    def test_no_progress_is_penalized(self):
        # fanout <= 1 means merging accomplished nothing.
        assert estimated_depth(100, 100) == 100.0

    def test_depth_decreases_with_fewer_pieces(self):
        depths = [estimated_depth(10000, k) for k in (5000, 1000, 100, 10)]
        assert depths == sorted(depths, reverse=True)


class TestBuNodeSearchCycles:
    def test_perfect_model_costs_node_plus_model(self):
        params = CostParams()
        c = params.cycles
        got = bu_node_search_cycles(0.0, height=0, params=params)
        assert got == pytest.approx(c.cache_miss + c.linear_model)

    def test_height_damps_error_term(self):
        base = bu_node_search_cycles(100.0, height=0)
        damped = bu_node_search_cycles(100.0, height=3)
        assert damped < base


class TestAccumulatedCost:
    def test_more_error_costs_more(self):
        low = accumulated_cost(1000, 100, mean_log_error=0.5, height=0)
        high = accumulated_cost(1000, 100, mean_log_error=5.0, height=0)
        assert high > low

    def test_tradeoff_has_an_interior_optimum(self):
        """With error shrinking as pieces multiply, the best k is neither
        extreme -- the trade-off Section 4.2.2 is built around."""
        n = 4096

        def scenario(k):
            # Larger pieces -> larger model error (toy inverse relation).
            mean_log_error = math.log2(n / k + 1.0)
            return accumulated_cost(n, k, mean_log_error, height=0)

        ks = [2, 8, 32, 128, 512, 2048]
        costs = [scenario(k) for k in ks]
        best = ks[costs.index(min(costs))]
        assert best not in (ks[0], ks[-1])

    def test_zero_error_prefers_fewest_pieces(self):
        costs = [
            accumulated_cost(1000, k, mean_log_error=0.0, height=0)
            for k in (2, 10, 100, 500)
        ]
        assert costs == sorted(costs)

    def test_rho_controls_upper_level_influence(self):
        shallow = accumulated_cost(
            1000, 100, 3.0, height=0, params=CostParams(rho=0.05)
        )
        steep = accumulated_cost(
            1000, 100, 3.0, height=0, params=CostParams(rho=0.5)
        )
        assert steep > shallow
