"""Unit and property tests for linear models and segment statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linear_model import LinearModel, SegmentStats


class TestLinearModel:
    def test_fit_recovers_exact_line(self):
        xs = np.array([1.0, 2.0, 3.0, 4.0])
        ys = 3.0 * xs + 7.0
        m = LinearModel.fit(xs, ys)
        assert m.slope == pytest.approx(3.0)
        assert m.intercept == pytest.approx(7.0)

    def test_fit_default_targets_are_ranks(self):
        xs = np.array([10.0, 20.0, 30.0])
        m = LinearModel.fit(xs)
        assert m.predict(10.0) == pytest.approx(0.0)
        assert m.predict(30.0) == pytest.approx(2.0)

    def test_fit_matches_polyfit_on_noisy_data(self):
        rng = np.random.default_rng(1)
        xs = np.sort(rng.uniform(0, 1e6, 200))
        ys = 0.5 * xs + rng.normal(0, 10.0, 200)
        m = LinearModel.fit(xs, ys)
        ref_slope, ref_intercept = np.polyfit(xs, ys, 1)
        assert m.slope == pytest.approx(ref_slope, rel=1e-9)
        assert m.intercept == pytest.approx(ref_intercept, rel=1e-6)

    def test_fit_is_stable_for_huge_keys(self):
        # Keys near 2**50: a naive normal-equation fit loses all precision.
        base = 2.0**50
        xs = base + np.arange(100, dtype=np.float64) * 17.0
        m = LinearModel.fit(xs)
        preds = [m.predict(x) for x in xs]
        assert max(abs(p - i) for i, p in enumerate(preds)) < 1e-3

    def test_empty_and_single_point_fits(self):
        assert LinearModel.fit([]).predict(5.0) == 0.0
        m = LinearModel.fit([3.0], [9.0])
        assert m.slope == 0.0
        assert m.predict(100.0) == 9.0

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LinearModel.fit([1.0, 2.0], [1.0])

    def test_from_range_divides_equally(self):
        # The paper's Fig. 1 example: range [80, 160), fanout 4.
        m = LinearModel.from_range(80.0, 160.0, 4)
        assert m.slope == pytest.approx(0.05)
        assert m.intercept == pytest.approx(-4.0)
        assert m.predict_int(80.0) == 0
        assert m.predict_int(101.0) == 1
        assert m.predict_int(159.999) == 3

    def test_from_range_rejects_empty_range(self):
        with pytest.raises(ValueError):
            LinearModel.from_range(5.0, 5.0, 4)

    def test_predict_clamped(self):
        m = LinearModel(1.0, 0.0)
        assert m.predict_clamped(-5.0, 10) == 0
        assert m.predict_clamped(99.0, 10) == 9
        assert m.predict_clamped(4.5, 10) == 4

    def test_inverse_round_trips(self):
        m = LinearModel(0.25, -3.0)
        assert m.inverse(m.predict(42.0)) == pytest.approx(42.0)

    def test_inverse_of_constant_model_raises(self):
        with pytest.raises(ZeroDivisionError):
            LinearModel(0.0, 1.0).inverse(1.0)

    def test_scaled_multiplies_both_parameters(self):
        m = LinearModel(2.0, 5.0).scaled(3.0)
        assert m.slope == 6.0
        assert m.intercept == 15.0


class TestSegmentStats:
    def test_from_arrays_matches_manual_moments(self):
        xs = np.array([1.0, 2.0, 4.0])
        ys = np.array([1.0, 3.0, 2.0])
        s = SegmentStats.from_arrays(xs, ys)
        assert s.n == 3
        assert s.mean_x == pytest.approx(xs.mean())
        assert s.sxx == pytest.approx(np.sum((xs - xs.mean()) ** 2))
        assert s.sxy == pytest.approx(
            np.sum((xs - xs.mean()) * (ys - ys.mean()))
        )

    def test_merge_equals_from_concatenation(self):
        rng = np.random.default_rng(2)
        xs = np.sort(rng.uniform(0, 100, 50))
        ys = rng.normal(0, 1, 50)
        a = SegmentStats.from_arrays(xs[:20], ys[:20])
        b = SegmentStats.from_arrays(xs[20:], ys[20:])
        merged = a.merged(b)
        ref = SegmentStats.from_arrays(xs, ys)
        assert merged.n == ref.n
        assert merged.mean_x == pytest.approx(ref.mean_x)
        assert merged.sxx == pytest.approx(ref.sxx, rel=1e-9)
        assert merged.syy == pytest.approx(ref.syy, rel=1e-9)
        assert merged.sxy == pytest.approx(ref.sxy, rel=1e-9)

    def test_merge_with_empty_is_identity(self):
        s = SegmentStats.from_arrays(
            np.array([1.0, 2.0]), np.array([3.0, 4.0])
        )
        for merged in (s.merged(SegmentStats()), SegmentStats().merged(s)):
            assert merged.n == s.n
            assert merged.sxy == pytest.approx(s.sxy)

    def test_sse_is_zero_for_collinear_points(self):
        xs = np.array([1.0, 2.0, 3.0])
        s = SegmentStats.from_arrays(xs, 2 * xs + 1)
        assert s.sse() == pytest.approx(0.0, abs=1e-9)

    def test_sse_matches_residuals_of_best_fit(self):
        rng = np.random.default_rng(3)
        xs = np.sort(rng.uniform(0, 10, 30))
        ys = xs + rng.normal(0, 0.5, 30)
        s = SegmentStats.from_arrays(xs, ys)
        m = s.model()
        residuals = ys - (m.intercept + m.slope * xs)
        assert s.sse() == pytest.approx(float(residuals @ residuals), rel=1e-9)
        assert s.rmse() == pytest.approx(
            math.sqrt(float(residuals @ residuals) / 30), rel=1e-9
        )

    def test_model_of_degenerate_segment_is_constant(self):
        s = SegmentStats.from_arrays(np.array([5.0, 5.0]), np.array([1.0, 3.0]))
        m = s.model()
        assert m.slope == 0.0
        assert m.predict(5.0) == pytest.approx(2.0)

    def test_from_points_equivalent_to_from_arrays(self):
        pts = [(1.0, 2.0), (3.0, 5.0), (4.0, 4.0)]
        a = SegmentStats.from_points(pts)
        b = SegmentStats.from_arrays(
            np.array([p[0] for p in pts]), np.array([p[1] for p in pts])
        )
        assert a.sxy == pytest.approx(b.sxy)

    def test_from_points_empty(self):
        assert SegmentStats.from_points([]).n == 0


@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=-1e9, max_value=1e9),
            st.floats(min_value=-1e6, max_value=1e6),
        ),
        min_size=2,
        max_size=60,
    ),
    split=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=200, deadline=None)
def test_property_merge_is_associative_with_concatenation(data, split):
    """Merging any prefix/suffix split reproduces whole-array statistics."""
    split = min(split, len(data))
    xs = np.array([d[0] for d in data])
    ys = np.array([d[1] for d in data])
    a = SegmentStats.from_arrays(xs[:split], ys[:split])
    b = SegmentStats.from_arrays(xs[split:], ys[split:])
    merged = a.merged(b)
    ref = SegmentStats.from_arrays(xs, ys)
    assert merged.n == ref.n
    scale = max(abs(ref.sxx), abs(ref.syy), 1.0)
    assert merged.sxx == pytest.approx(ref.sxx, abs=1e-6 * scale)
    assert merged.syy == pytest.approx(ref.syy, abs=1e-6 * scale)
    assert merged.sxy == pytest.approx(ref.sxy, abs=1e-6 * scale)


@given(
    xs=st.lists(
        st.floats(min_value=0, max_value=1e12),
        min_size=2,
        max_size=50,
        unique=True,
    )
)
@settings(max_examples=200, deadline=None)
def test_property_sse_never_negative_and_bounded_by_syy(xs):
    """The best-fit SSE is nonnegative and never exceeds total variance."""
    xs = np.sort(np.array(xs))
    ys = np.arange(len(xs), dtype=np.float64)
    s = SegmentStats.from_arrays(xs, ys)
    assert s.sse() >= 0.0
    assert s.sse() <= s.syy + 1e-9 * max(s.syy, 1.0)
