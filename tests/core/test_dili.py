"""End-to-end tests for the DILI index (Algorithms 1, 6, 7, 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI, DiliConfig
from repro.simulate.tracer import CostTracer


def _dataset(n=5000, seed=0, kind="lognormal"):
    rng = np.random.default_rng(seed)
    if kind == "lognormal":
        keys = rng.lognormal(0, 1, n) * 1e9
    elif kind == "uniform":
        keys = rng.uniform(0, 1e12, n)
    else:
        raise ValueError(kind)
    return np.unique(keys)


@pytest.fixture(scope="module")
def loaded():
    keys = _dataset(8000, seed=1)
    index = DILI()
    index.bulk_load(keys)
    return index, keys


class TestBulkLoadAndGet:
    def test_every_key_found(self, loaded):
        index, keys = loaded
        for i in range(0, len(keys), 29):
            assert index.get(float(keys[i])) == i

    def test_misses(self, loaded):
        index, keys = loaded
        assert index.get(float(keys[0]) - 1.0) is None
        assert index.get(float(keys[-1]) + 1.0) is None
        probe = (float(keys[10]) + float(keys[11])) / 2.0
        if probe not in (keys[10], keys[11]):
            assert index.get(probe) is None

    def test_len_and_contains(self, loaded):
        index, keys = loaded
        assert len(index) == len(keys)
        assert float(keys[5]) in index
        assert -1.0 not in index

    def test_validate_passes(self, loaded):
        index, _ = loaded
        index.validate()

    def test_custom_values(self):
        keys = np.array([1.0, 5.0, 9.0])
        index = DILI()
        index.bulk_load(keys, ["a", "b", "c"])
        assert index.get(5.0) == "b"

    def test_rejects_bad_inputs(self):
        index = DILI()
        with pytest.raises(ValueError):
            index.bulk_load(np.array([3.0, 1.0]))
        with pytest.raises(ValueError):
            index.bulk_load(np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            index.bulk_load(np.array([[1.0], [2.0]]))
        with pytest.raises(ValueError):
            index.bulk_load(np.array([1.0, 2.0]), ["only-one"])

    def test_empty_bulk_load(self):
        index = DILI()
        index.bulk_load(np.array([]))
        assert len(index) == 0
        assert index.get(1.0) is None
        index.validate()

    def test_tiny_datasets(self):
        for n in (1, 2, 3, 5):
            keys = np.arange(n, dtype=np.float64) * 10.0 + 1.0
            index = DILI()
            index.bulk_load(keys)
            index.validate()
            for i, k in enumerate(keys):
                assert index.get(float(k)) == i

    def test_from_pairs_sorts(self):
        index = DILI.from_pairs([(3.0, "c"), (1.0, "a"), (2.0, "b")])
        assert index.get(1.0) == "a"
        assert index.get(3.0) == "c"

    def test_keep_butree(self):
        keys = _dataset(2000, seed=2)
        index = DILI()
        index.bulk_load(keys, keep_butree=True)
        assert index.butree is not None
        assert index.butree.get(float(keys[7])) == 7


class TestTracedLookup:
    def test_cost_tracer_records(self, loaded):
        index, keys = loaded
        tracer = CostTracer()
        index.get(float(keys[123]), tracer)
        assert tracer.total_cycles > 0
        assert tracer.phase_cycles.get("step1", 0) > 0
        assert tracer.phase_cycles.get("step2", 0) > 0

    def test_warm_cache_is_cheaper(self, loaded):
        index, keys = loaded
        tracer = CostTracer()
        key = float(keys[999])
        index.get(key, tracer)
        cold = tracer.total_cycles
        tracer.reset_counters()
        index.get(key, tracer)
        warm = tracer.total_cycles
        assert warm < cold


class TestInsert:
    def test_insert_then_get(self):
        keys = _dataset(3000, seed=3)
        half = keys[::2]
        rest = keys[1::2]
        index = DILI()
        index.bulk_load(half)
        for k in rest:
            assert index.insert(float(k), "new")
        assert len(index) == len(half) + len(rest)
        for k in rest[::17]:
            assert index.get(float(k)) == "new"
        for i in range(0, len(half), 31):
            assert index.get(float(half[i])) == i
        index.validate()

    def test_duplicate_insert_rejected(self):
        index = DILI.from_pairs([(1.0, "a"), (2.0, "b")])
        assert not index.insert(1.0, "other")
        assert index.get(1.0) == "a"
        assert len(index) == 2

    def test_insert_outside_bulk_range(self):
        keys = np.linspace(100.0, 200.0, 500)
        index = DILI()
        index.bulk_load(np.unique(keys))
        assert index.insert(5.0, "low")
        assert index.insert(999.0, "high")
        assert index.get(5.0) == "low"
        assert index.get(999.0) == "high"
        index.validate()

    def test_insert_into_empty_index(self):
        index = DILI()
        assert index.insert(7.0, "x")
        assert index.get(7.0) == "x"
        assert len(index) == 1
        index.validate()

    def test_adjustments_trigger_under_conflict_pressure(self):
        # Bulk load a linear range, then hammer one tiny sub-range so one
        # leaf degrades and must adjust (Algorithm 7 lines 20-26).
        index = DILI()
        index.bulk_load(np.arange(0, 10000, 10, dtype=np.float64))
        rng = np.random.default_rng(4)
        hot = np.unique(rng.uniform(5000.0, 5010.0, 800))
        for k in hot:
            index.insert(float(k), "hot")
        assert index.adjustment_count > 0
        for k in hot[::13]:
            assert index.get(float(k)) == "hot"
        index.validate()

    def test_dili_ad_never_adjusts(self):
        index = DILI(DiliConfig(adjust=False))
        index.bulk_load(np.arange(0, 10000, 10, dtype=np.float64))
        rng = np.random.default_rng(5)
        hot = np.unique(rng.uniform(5000.0, 5010.0, 800))
        for k in hot:
            index.insert(float(k), "hot")
        assert index.adjustment_count == 0
        for k in hot[::13]:
            assert index.get(float(k)) == "hot"
        index.validate()


class TestDelete:
    def test_delete_then_miss(self):
        keys = _dataset(2000, seed=6)
        index = DILI()
        index.bulk_load(keys)
        for k in keys[::3]:
            assert index.delete(float(k))
        for k in keys[::3]:
            assert index.get(float(k)) is None
        for i in range(1, len(keys), 3):
            assert index.get(float(keys[i])) == i
        assert len(index) == len(keys) - len(keys[::3])
        index.validate()

    def test_delete_missing_returns_false(self):
        index = DILI.from_pairs([(1.0, "a")])
        assert not index.delete(99.0)
        assert not index.delete(1.5)
        assert len(index) == 1

    def test_delete_from_empty(self):
        assert not DILI().delete(1.0)

    def test_nested_leaf_trimming(self):
        """Deleting down to one pair in a nested leaf must pull the
        survivor up into the parent slot (Algorithm 8 lines 13-15)."""
        index = DILI()
        index.bulk_load(np.arange(0, 1000, 1, dtype=np.float64))
        # Force a conflict: two keys inside one slot's key interval.
        assert index.insert(500.25, "a")
        assert index.insert(500.5, "b")
        assert index.delete(500.25)
        assert index.get(500.5) == "b"
        assert index.get(500.25) is None
        index.validate()

    def test_insert_delete_interleaved(self):
        rng = np.random.default_rng(7)
        keys = np.unique(rng.uniform(0, 1e6, 3000))
        index = DILI()
        index.bulk_load(keys[:1000])
        live = {float(k): i for i, k in enumerate(keys[:1000])}
        for i, k in enumerate(keys[1000:]):
            k = float(k)
            if i % 3 == 2 and live:
                victim = next(iter(live))
                assert index.delete(victim)
                del live[victim]
            else:
                assert index.insert(k, i)
                live[k] = i
        assert len(index) == len(live)
        for k, v in list(live.items())[::37]:
            assert index.get(k) == v
        index.validate()


class TestRangeAndIteration:
    def test_items_sorted(self, loaded):
        index, keys = loaded
        got = [k for k, _ in index.items()]
        assert got == sorted(got)
        assert len(got) == len(keys)

    def test_range_query_matches_reference(self, loaded):
        index, keys = loaded
        lo, hi = float(keys[100]), float(keys[400])
        got = index.range_query(lo, hi)
        expected = [(float(k), i) for i, k in enumerate(keys) if lo <= k < hi]
        assert got == expected

    def test_range_query_empty(self, loaded):
        index, keys = loaded
        assert index.range_query(-10.0, -5.0) == []
        big = float(keys[-1]) + 10.0
        assert index.range_query(big, big + 1) == []

    def test_scan_counts(self, loaded):
        index, keys = loaded
        got = index.scan(float(keys[10]), 50)
        assert len(got) == 50
        assert [k for k, _ in got] == [float(k) for k in keys[10:60]]

    def test_range_after_updates(self):
        index = DILI()
        index.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        index.insert(51.0, "odd")
        index.delete(52.0)
        got = [k for k, _ in index.range_query(50.0, 56.0)]
        assert got == [50.0, 51.0, 54.0]


class TestDiliLoVariant:
    def test_lookup_via_algorithm1(self):
        keys = _dataset(4000, seed=8)
        index = DILI(DiliConfig(local_optimization=False))
        index.bulk_load(keys)
        for i in range(0, len(keys), 23):
            assert index.get(float(keys[i])) == i
        assert index.get(float(keys[0]) - 1) is None
        index.validate()

    def test_updates_unsupported(self):
        keys = _dataset(500, seed=9)
        index = DILI(DiliConfig(local_optimization=False))
        index.bulk_load(keys)
        with pytest.raises(NotImplementedError):
            index.insert(1.5, "x")
        with pytest.raises(NotImplementedError):
            index.delete(float(keys[0]))

    def test_uses_less_memory_than_full_dili(self):
        keys = _dataset(4000, seed=10)
        full = DILI()
        full.bulk_load(keys)
        lo = DILI(DiliConfig(local_optimization=False))
        lo.bulk_load(keys)
        # Fig. 6a: DILI-LO's dense arrays undercut DILI's gapped slots.
        assert lo.memory_bytes() < full.memory_bytes()

    def test_range_query_dense(self):
        keys = np.arange(0, 1000, 1, dtype=np.float64)
        index = DILI(DiliConfig(local_optimization=False))
        index.bulk_load(keys)
        got = [k for k, _ in index.range_query(100.0, 110.0)]
        assert got == list(np.arange(100.0, 110.0))


# Integer keys match the paper's domain (SOSD datasets are uint64 ids);
# pathological float spacing below the float64 model resolution is
# rejected explicitly by LinearModel.from_range instead.
@given(
    bulk=st.lists(
        st.integers(min_value=0, max_value=2**40),
        min_size=0,
        max_size=120,
        unique=True,
    ),
    updates=st.lists(
        st.tuples(
            st.booleans(), st.integers(min_value=0, max_value=2**40)
        ),
        max_size=80,
    ),
)
@settings(max_examples=100, deadline=None)
def test_property_dili_matches_dict_semantics(bulk, updates):
    """DILI behaves exactly like a dict under any operation sequence."""
    bulk = sorted(bulk)
    index = DILI()
    if bulk:
        index.bulk_load(np.array(bulk, dtype=np.float64))
    reference = {float(k): i for i, k in enumerate(bulk)}
    for is_insert, key in updates:
        key = float(key)
        if is_insert:
            assert index.insert(key, "u") == (key not in reference)
            reference.setdefault(key, "u")
        else:
            assert index.delete(key) == (key in reference)
            reference.pop(key, None)
    assert len(index) == len(reference)
    for key, value in reference.items():
        assert index.get(key) == value
    index.validate()
