"""Property tests: batch reads agree with the scalar APIs, always.

Hypothesis drives random keysets and random interleavings of reads,
inserts and deletes, asserting at every step that ``get_batch`` /
``contains_batch`` / ``count_range`` / ``count_range_batch`` return
exactly what the scalar ``get`` / ``__contains__`` / per-pair counting
would -- including right after mutations (plan invalidation) and under
the ``ConcurrentDILI`` wrapper.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI, DiliConfig
from repro.core.concurrent import ConcurrentDILI

# Integer-valued keys in a wide range: exactly representable, easy to
# probe around (key +- 1 stays distinct).
key_sets = st.sets(
    st.integers(min_value=0, max_value=2**40), min_size=2, max_size=120
)


def _load(keys_set, dense=False):
    keys = np.array(sorted(float(k) for k in keys_set))
    cfg = DiliConfig(local_optimization=not dense)
    index = DILI(cfg)
    index.bulk_load(keys)
    return index, keys


def _assert_batch_matches_scalar(index, probe):
    probe = np.asarray(probe, dtype=np.float64)
    batch = index.get_batch(probe)
    scalar = [index.get(float(k)) for k in probe]
    assert batch == scalar
    member = index.contains_batch(probe)
    assert member.tolist() == [v is not None for v in scalar]


class TestStaticEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(keys_set=key_sets, dense=st.booleans())
    def test_get_and_contains(self, keys_set, dense):
        index, keys = _load(keys_set, dense)
        probe = np.concatenate([keys, keys + 1.0, keys - 1.0])
        _assert_batch_matches_scalar(index, probe)

    @settings(max_examples=60, deadline=None)
    @given(keys_set=key_sets, data=st.data())
    def test_count_range(self, keys_set, data):
        index, keys = _load(keys_set)
        lo = data.draw(st.floats(min_value=-2.0, max_value=2**40 + 2))
        hi = data.draw(st.floats(min_value=-2.0, max_value=2**40 + 2))
        expected = int(np.sum((keys >= lo) & (keys < hi)))
        assert index.count_range(lo, hi) == (expected if hi > lo else 0)
        counts = index.count_range_batch([lo], [hi])
        assert counts.tolist() == [expected if hi > lo else 0]


class TestInterleavedMutations:
    @settings(max_examples=40, deadline=None)
    @given(
        keys_set=key_sets,
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "batch"]),
                st.integers(min_value=0, max_value=2**40),
            ),
            min_size=1,
            max_size=25,
        ),
    )
    def test_batch_stays_correct_across_mutations(self, keys_set, ops):
        index, keys = _load(keys_set)
        shadow = {float(k): i for i, k in enumerate(keys)}
        probe_base = np.concatenate([keys, keys + 1.0])
        for op, raw in ops:
            key = float(raw)
            if op == "insert":
                assert index.insert(key, ("v", raw)) == (key not in shadow)
                shadow.setdefault(key, ("v", raw))
            elif op == "delete":
                assert index.delete(key) == (key in shadow)
                shadow.pop(key, None)
            else:
                probe = np.concatenate([probe_base, [key, key + 0.5]])
                got = index.get_batch(probe)
                want = [shadow.get(float(k)) for k in probe]
                assert got == want
        probe = np.concatenate([probe_base, list(shadow)])
        _assert_batch_matches_scalar(index, probe)
        got = index.get_batch(probe)
        assert got == [shadow.get(float(k)) for k in probe]

    @settings(max_examples=30, deadline=None)
    @given(keys_set=key_sets)
    def test_count_range_after_mutations(self, keys_set):
        index, keys = _load(keys_set)
        live = set(keys.tolist())
        for k in keys[::3].tolist():
            index.delete(k)
            live.discard(k)
        new = [k + 0.5 for k in keys[::4].tolist()]
        for k in new:
            index.insert(k, "n")
            live.add(k)
        arr = np.array(sorted(live))
        los = np.concatenate([arr[: len(arr) // 2], [arr[0] - 1.0]])
        his = np.concatenate([arr[len(arr) // 2 :][: len(los) - 1],
                              [arr[-1] + 1.0]])
        his = his[: len(los)]
        counts = index.count_range_batch(los, his)
        for lo, hi, c in zip(los, his, counts):
            want = sum(1 for k in live if lo <= k < hi) if hi > lo else 0
            assert c == want
            assert index.count_range(float(lo), float(hi)) == want


class TestConcurrentWrapper:
    @settings(max_examples=25, deadline=None)
    @given(keys_set=key_sets)
    def test_concurrent_batch_equivalence(self, keys_set):
        keys = np.array(sorted(float(k) for k in keys_set))
        index = ConcurrentDILI(stripes=8)
        index.bulk_load(keys)
        probe = np.concatenate([keys, keys + 1.0])
        got = index.get_batch(probe)
        want = [index.get(float(k)) for k in probe]
        assert got == want
        member = index.contains_batch(probe)
        assert member.tolist() == [v is not None for v in want]
        index.insert(float(keys[0]) + 0.5, "mid")
        got = index.get_batch([float(keys[0]) + 0.5])
        assert got == ["mid"]
        assert index.count_range(float(keys[0]), float(keys[-1]) + 1.0) == (
            len(keys) + 1
        )
        counts = index.count_range_batch([float(keys[0])],
                                         [float(keys[-1]) + 1.0])
        assert counts.tolist() == [len(keys) + 1]
