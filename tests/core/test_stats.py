"""Unit tests for tree statistics (Table 6 metrics)."""

import numpy as np
import pytest

from repro import DILI, DiliConfig, tree_stats


def _build(n=5_000, seed=0, **config):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10**9, 2 * n))[:n].astype(float)
    index = DILI(DiliConfig(**config)) if config else DILI()
    index.bulk_load(keys)
    return index


class TestTreeStats:
    def test_counts_are_consistent(self):
        index = _build()
        st = tree_stats(index)
        assert st.num_pairs == len(index)
        assert st.leaf_nodes > 0
        assert st.internal_nodes >= 1
        assert st.nested_leaves <= st.leaf_nodes
        assert st.memory_bytes == index.memory_bytes()

    def test_height_bounds(self):
        st = tree_stats(_build())
        assert 1 <= st.min_height <= st.avg_height <= st.max_height

    def test_avg_height_is_key_weighted(self):
        """Hand-check against a walk that records per-pair depths."""
        index = _build(2_000, seed=1)
        from repro.core.nodes import InternalNode, LeafNode

        depths = []

        def walk(node, depth):
            if type(node) is InternalNode:
                for child in node.children:
                    walk(child, depth + 1)
                return
            pairs_here = 0
            for entry in node.slots:
                if entry is None:
                    continue
                if type(entry) is tuple:
                    pairs_here += 1
                else:
                    walk(entry, depth + 1)
            depths.extend([depth] * pairs_here)

        walk(index.root, 1)
        st = tree_stats(index)
        assert st.avg_height == pytest.approx(np.mean(depths))
        assert st.min_height == min(depths)
        assert st.max_height == max(depths)

    def test_empty_index(self):
        index = DILI()
        index.bulk_load(np.array([]))
        st = tree_stats(index)
        assert st.num_pairs == 0
        assert st.max_height == 0
        assert st.conflicts_per_1k == 0.0

    def test_dense_variant_has_no_nested_leaves(self):
        index = _build(3_000, seed=2, local_optimization=False)
        st = tree_stats(index)
        assert st.nested_leaves == 0
        assert st.num_pairs == len(index)

    def test_conflicts_metric_tracks_opt_stats(self):
        index = _build(4_000, seed=3)
        st = tree_stats(index)
        expected = 1000.0 * index.opt_stats.conflicts / len(index)
        assert st.conflicts_per_1k == pytest.approx(expected)

    def test_stats_after_updates(self):
        index = _build(2_000, seed=4)
        rng = np.random.default_rng(5)
        extra = np.unique(rng.integers(0, 10**9, 800)).astype(float)
        added = sum(1 for k in extra if index.insert(float(k), "w"))
        st = tree_stats(index)
        assert st.num_pairs == len(index) == 2_000 + added


class TestMemoryBreakdown:
    def test_breakdown_sums_to_memory_bytes(self):
        from repro.core.stats import memory_breakdown

        index = _build(3_000, seed=6)
        mem = memory_breakdown(index)
        assert mem.total == index.memory_bytes()
        assert 0 < mem.occupied_slot_bytes <= mem.slot_bytes
        assert 0.0 <= mem.slack_fraction < 1.0
        assert mem.nested_bytes <= mem.total

    def test_slack_tracks_enlarge_ratio(self):
        """eta = 2 over-allocation means roughly half the slots empty."""
        from repro.core.stats import memory_breakdown

        index = _build(3_000, seed=7)
        mem = memory_breakdown(index)
        assert 0.3 < mem.slack_fraction < 0.7

    def test_dense_variant_has_no_slack(self):
        from repro.core.stats import memory_breakdown

        index = _build(2_000, seed=8, local_optimization=False)
        mem = memory_breakdown(index)
        assert mem.slack_fraction == 0.0
        assert mem.nested_bytes == 0

    def test_empty_breakdown(self):
        from repro.core.stats import memory_breakdown

        index = DILI()
        mem = memory_breakdown(index)
        assert mem.total == 0
        assert mem.slack_fraction == 0.0


class TestDescribe:
    def test_describe_mentions_key_facts(self):
        from repro.core.stats import describe

        index = _build(2_000, seed=9)
        text = describe(index)
        assert "2,000 pairs" in text
        assert "heights" in text
        assert "memory" in text

    def test_describe_empty(self):
        from repro.core.stats import describe

        assert describe(DILI()) == "DILI(empty)"
