"""Unit tests for RCU-style epoch publication (repro.core.epoch)."""

import threading

import numpy as np
import pytest

from repro import DILI
from repro.check.errors import InvariantError
from repro.core.epoch import EpochManager, PlanPublisher, next_plan_version


def _plan(n=500, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.lognormal(0, 1, n) * 1e9)
    index = DILI()
    index.bulk_load(keys, list(range(len(keys))))
    index.get_batch(keys[:4])  # compile
    return index.peek_plan()


class TestVersionCounter:
    def test_monotonic_and_unique(self):
        versions = [next_plan_version() for _ in range(50)]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_monotonic_under_threads(self):
        out: list[int] = []
        lock = threading.Lock()

        def worker():
            mine = [next_plan_version() for _ in range(200)]
            with lock:
                out.extend(mine)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == len(out)  # never a duplicate


class TestEpochManager:
    def test_pin_yields_epoch_and_unpins(self):
        em = EpochManager()
        assert not em.current_thread_pinned()
        with em.pin() as epoch:
            assert epoch == em.epoch == 0
            assert em.current_thread_pinned()
            assert em.min_active() == 0
        assert not em.current_thread_pinned()
        assert em.min_active() is None

    def test_pin_is_reentrant(self):
        em = EpochManager()
        with em.pin():
            with em.pin():
                assert em.current_thread_pinned()
            assert em.current_thread_pinned()
        assert not em.current_thread_pinned()
        assert em.stats()["epoch_pins"] == 2

    def test_retire_without_pins_reclaims_immediately(self):
        em = EpochManager()
        em.retire("old")
        assert em.drained()
        stats = em.stats()
        assert stats["plans_retired"] == 1
        assert stats["plans_reclaimed"] == 1
        assert stats["plans_limbo"] == 0

    def test_retire_under_pin_waits_for_drain(self):
        em = EpochManager()
        with em.pin():
            em.retire("old")
            # The pin entered at epoch 0; the entry is tagged 0 and
            # must survive while the pin is active.
            assert not em.drained()
            assert em.reclaim() == 0
        assert em.reclaim() == 1
        assert em.drained()

    def test_late_pin_does_not_block_earlier_retires(self):
        em = EpochManager()
        em.retire("a")  # tagged epoch 0, epoch now 1
        with em.pin():  # pinned at epoch 1 > tag 0
            em.retire("b")  # tagged 1: observable by the pin
            stats = em.stats()
            assert stats["plans_reclaimed"] == 1  # "a" went
            assert stats["plans_limbo"] == 1  # "b" waits
        em.reclaim()
        assert em.drained()

    def test_min_active_across_threads(self):
        em = EpochManager(shards=4)
        ready = threading.Event()
        release = threading.Event()

        def reader():
            with em.pin():
                ready.set()
                release.wait(timeout=10)

        t = threading.Thread(target=reader)
        t.start()
        assert ready.wait(timeout=10)
        em.retire("x")  # other thread pinned at 0 -> cannot reclaim
        assert em.min_active() == 0
        assert not em.drained()
        release.set()
        t.join()
        em.reclaim()
        assert em.drained()

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            EpochManager(shards=0)


class TestPlanPublisher:
    def test_publish_freezes_and_loads(self):
        pub = PlanPublisher()
        assert pub.load() is None
        plan = _plan()
        assert pub.publish(plan)
        assert plan.frozen
        assert pub.load() is plan
        assert pub.stats()["plan_publishes"] == 1

    def test_frozen_plan_rejects_inplace_mutation(self):
        pub = PlanPublisher()
        plan = _plan(seed=1)
        key = float(plan.pair_keys[0])
        pub.publish(plan)
        with pytest.raises(InvariantError):
            plan.patch_value(key, "boom")
        # The copy-on-write tier still works and leaves a new,
        # unfrozen plan the publisher accepts.
        clone = plan.applied_values([(key, "fine")])
        assert clone is not None and not clone.frozen
        assert pub.publish(clone)
        assert pub.load() is clone

    def test_same_plan_and_stale_version_rejected(self):
        pub = PlanPublisher()
        old = _plan(seed=2)
        new = _plan(seed=2)
        assert new.version > old.version  # global monotonic counter
        assert pub.publish(new)
        assert not pub.publish(new)  # already current
        assert not pub.publish(old)  # stale version loses the race
        assert pub.load() is new

    def test_replaced_plan_retires_and_reclaims(self):
        pub = PlanPublisher()
        a, b = _plan(seed=3), _plan(seed=4)
        pub.publish(a)
        pub.publish(b)
        stats = pub.stats()
        assert stats["plans_retired"] == 1
        assert stats["plans_limbo"] == 0  # no pins: reclaimed at once

    def test_pinned_snapshot_survives_republish(self):
        pub = PlanPublisher()
        a, b = _plan(seed=5), _plan(seed=6)
        pub.publish(a)
        with pub.pinned() as snap:
            assert snap is a
            pub.publish(b)  # supersedes a mid-read
            assert snap.lookup_batch is not None  # still fully usable
            assert pub.stats()["plans_limbo"] == 1  # a waits on us
            assert pub.load() is b  # new readers see b
        pub.epochs.reclaim()
        assert pub.stats()["plans_limbo"] == 0

    def test_unpublish_retires(self):
        pub = PlanPublisher()
        assert not pub.unpublish()
        pub.publish(_plan(seed=7))
        assert pub.unpublish()
        assert pub.load() is None
        with pub.pinned() as snap:
            assert snap is None

    def test_current_thread_pinned_tracks_pinned_block(self):
        pub = PlanPublisher()
        pub.publish(_plan(seed=8))
        assert not pub.current_thread_pinned()
        with pub.pinned():
            assert pub.current_thread_pinned()
        assert not pub.current_thread_pinned()
