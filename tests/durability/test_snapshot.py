"""Snapshot atomicity and checksum verification."""

import os

import numpy as np
import pytest

from repro import DILI
from repro.durability.faultpoints import FaultInjector, SimulatedCrash
from repro.durability.snapshot import (
    HEADER_SIZE,
    SnapshotError,
    read_snapshot,
    read_snapshot_header,
    write_snapshot,
)


def _index(n=2_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.uniform(0, 1e9, n))
    index = DILI()
    index.bulk_load(keys)
    return index


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        index = _index()
        written = write_snapshot(index, path, last_seqno=42)
        assert written == os.path.getsize(path)
        loaded, last_seqno = read_snapshot(path)
        assert last_seqno == 42
        assert len(loaded) == len(index)
        loaded.validate()

    def test_header_parses_without_unpickling(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        write_snapshot(_index(500), path, last_seqno=7)
        version, last_seqno, payload_len, _ = read_snapshot_header(path)
        assert version == 1 and last_seqno == 7
        assert payload_len == os.path.getsize(path) - HEADER_SIZE

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        write_snapshot(_index(500), path)
        assert os.listdir(tmp_path) == ["snapshot.dili"]


class TestCorruptionRejected:
    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        write_snapshot(_index(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        path.write_bytes(b"DILISNP1\x01")
        with pytest.raises(SnapshotError, match="truncated snapshot header"):
            read_snapshot(path)

    def test_flipped_payload_byte(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        write_snapshot(_index(), path)
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            read_snapshot(path)

    def test_trailing_garbage(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        write_snapshot(_index(500), path)
        with open(path, "ab") as fh:
            fh.write(b"EXTRA")
        with pytest.raises(SnapshotError, match="trailing garbage"):
            read_snapshot(path)

    def test_foreign_file(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        path.write_bytes(b"\x00" * 200)
        with pytest.raises(SnapshotError, match="not a DILI snapshot"):
            read_snapshot(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        write_snapshot(_index(500), path)
        raw = bytearray(path.read_bytes())
        raw[8] = 0xFE  # version field (little-endian u16 at offset 8)
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="unsupported snapshot"):
            read_snapshot(path)


class TestAtomicity:
    def test_crash_before_rename_keeps_old_snapshot(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        old = _index(500, seed=1)
        write_snapshot(old, path, last_seqno=1)
        faults = FaultInjector()
        faults.arm("before_rename")
        with pytest.raises(SimulatedCrash):
            write_snapshot(_index(800, seed=2), path,
                           last_seqno=2, faults=faults)
        loaded, last_seqno = read_snapshot(path)
        assert last_seqno == 1 and len(loaded) == len(old)

    def test_torn_temp_write_never_adopted(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        old = _index(500, seed=1)
        write_snapshot(old, path, last_seqno=1)
        faults = FaultInjector()
        faults.arm("mid_snapshot_write", partial=0.5)
        with pytest.raises(SimulatedCrash):
            write_snapshot(_index(800, seed=2), path,
                           last_seqno=2, faults=faults)
        # The live snapshot is still the old, complete one...
        loaded, last_seqno = read_snapshot(path)
        assert last_seqno == 1 and len(loaded) == len(old)
        # ...and the torn temp file is itself rejected, not readable.
        tmp_file = str(path) + ".tmp"
        assert os.path.exists(tmp_file)
        with pytest.raises(SnapshotError):
            read_snapshot(tmp_file)

    def test_crash_before_any_write_leaves_no_trace(self, tmp_path):
        path = tmp_path / "snapshot.dili"
        faults = FaultInjector()
        faults.arm("before_snapshot_write")
        with pytest.raises(SimulatedCrash):
            write_snapshot(_index(300), path, faults=faults)
        assert os.listdir(tmp_path) == []
