"""WAL framing: CRC + seqno chains must catch every torn/corrupt tail."""

import os
import struct

import pytest

from repro.durability.wal import (
    OP_DELETE,
    OP_INSERT,
    WAL_MAGIC,
    WriteAheadLog,
    encode_record,
    scan_wal,
)


def _fill(path, payloads, **kwargs):
    with WriteAheadLog(path, **kwargs) as wal:
        for p in payloads:
            wal.append(OP_INSERT, p)
    return scan_wal(path)


class TestAppendAndScan:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [b"a", b"bb", b"", b"c" * 1000]
        scan = _fill(path, payloads)
        assert [r.payload for r in scan.records] == payloads
        assert [r.seqno for r in scan.records] == [1, 2, 3, 4]
        assert not scan.truncated
        assert scan.valid_offset == os.path.getsize(path)

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.log")
        assert scan.records == [] and not scan.truncated

    def test_reopen_continues_seqno_chain(self, tmp_path):
        path = tmp_path / "wal.log"
        _fill(path, [b"x", b"y"])
        with WriteAheadLog(path) as wal:
            assert wal.next_seqno == 3
            assert wal.append(OP_DELETE, b"z") == 3
        assert [r.seqno for r in scan_wal(path).records] == [1, 2, 3]

    def test_min_next_seqno_pushes_chain_forward(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, min_next_seqno=41) as wal:
            assert wal.append(OP_INSERT, b"p") == 41

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not_a_wal"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 64)
        with pytest.raises(ValueError, match="not a DILI write-ahead log"):
            scan_wal(path)

    def test_rejects_unknown_opcode_on_append(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            with pytest.raises(ValueError, match="unknown opcode"):
                wal.append(99, b"")

    def test_rejects_oversized_payload_on_append(self, tmp_path, monkeypatch):
        """scan_wal drops records above MAX_PAYLOAD as corrupt, so
        append must refuse them -- an acked-but-unscannable record
        would be silently lost on recovery."""
        import repro.durability.wal as walmod

        monkeypatch.setattr(walmod, "MAX_PAYLOAD", 64)
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(OP_INSERT, b"x" * 64)  # at the cap: fine
            with pytest.raises(ValueError, match="cap"):
                wal.append(OP_INSERT, b"x" * 65)
        scan = scan_wal(path)
        assert len(scan.records) == 1 and not scan.truncated

    def test_truncate_drops_records_but_not_seqnos(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(OP_INSERT, b"a")
            wal.append(OP_INSERT, b"b")
            wal.truncate()
            assert len(wal) == 0
            assert wal.append(OP_INSERT, b"c") == 3
        scan = scan_wal(path)
        assert [r.seqno for r in scan.records] == [3]

    def test_sync_false_still_scans_clean(self, tmp_path):
        path = tmp_path / "wal.log"
        scan = _fill(path, [b"1", b"2"], sync=False)
        assert len(scan.records) == 2 and not scan.truncated


class TestCorruptionDetection:
    def test_torn_final_record_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        _fill(path, [b"aaaa", b"bbbb", b"cccc"])
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])  # tear the last record's CRC
        scan = scan_wal(path)
        assert [r.payload for r in scan.records] == [b"aaaa", b"bbbb"]
        assert scan.truncated and "torn" in scan.reason

    def test_torn_header_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        _fill(path, [b"aaaa"])
        with open(path, "ab") as fh:
            fh.write(struct.pack("<Q", 2))  # half a record header
        scan = scan_wal(path)
        assert len(scan.records) == 1
        assert scan.truncated and scan.reason == "torn record header"

    def test_corrupt_middle_record_stops_replay_there(self, tmp_path):
        path = tmp_path / "wal.log"
        _fill(path, [b"first", b"second", b"third"])
        # Flip one byte inside the *second* record's payload.
        raw = bytearray(path.read_bytes())
        rec1 = encode_record(1, OP_INSERT, b"first")
        offset = len(WAL_MAGIC) + len(rec1) + 13  # into record 2 payload
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        scan = scan_wal(path)
        assert [r.payload for r in scan.records] == [b"first"]
        assert scan.truncated and scan.reason == "CRC mismatch"

    def test_sequence_break_treated_as_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        with open(path, "wb") as fh:
            fh.write(WAL_MAGIC)
            fh.write(encode_record(1, OP_INSERT, b"a"))
            fh.write(encode_record(5, OP_INSERT, b"b"))  # gap
        scan = scan_wal(path)
        assert len(scan.records) == 1
        assert scan.truncated and scan.reason == "sequence break"

    def test_insane_length_field_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        with open(path, "wb") as fh:
            fh.write(WAL_MAGIC)
            fh.write(struct.pack("<QBI", 1, OP_INSERT, 1 << 31))
        scan = scan_wal(path)
        assert scan.records == []
        assert scan.truncated and scan.reason == "corrupt record header"

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "wal.log"
        _fill(path, [b"keep", b"tear"])
        raw = path.read_bytes()
        path.write_bytes(raw[:-2])
        with WriteAheadLog(path) as wal:
            # The torn record is gone; new appends are reachable.
            assert wal.append(OP_INSERT, b"new") == 2
        scan = scan_wal(path)
        assert [r.payload for r in scan.records] == [b"keep", b"new"]
        assert not scan.truncated
