"""Recovery protocol: snapshot + WAL tail, stopping at corruption."""

import os
import pickle

import numpy as np
import pytest

from repro import DILI
from repro.durability.recovery import (
    SNAPSHOT_NAME,
    WAL_NAME,
    recover,
)
from repro.durability.snapshot import SnapshotError, write_snapshot
from repro.durability.wal import (
    OP_BULK_INSERT,
    OP_DELETE,
    OP_INSERT,
    WriteAheadLog,
)


def _args(*a):
    return pickle.dumps(a, protocol=pickle.HIGHEST_PROTOCOL)


def _seed_dir(tmp_path, n=1_000):
    """Snapshot of n keys at seqno 0, plus an open WAL."""
    keys = np.arange(0.0, float(n))
    index = DILI()
    index.bulk_load(keys)
    write_snapshot(index, tmp_path / SNAPSHOT_NAME, last_seqno=0)
    return keys


class TestRecoverPaths:
    def test_empty_directory_recovers_empty_index(self, tmp_path):
        result = recover(tmp_path)
        assert len(result.index) == 0
        assert result.snapshot_seqno == 0 and result.replayed == 0

    def test_wal_only_no_snapshot(self, tmp_path):
        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            for k in (5.0, 2.0, 9.0):
                wal.append(OP_INSERT, _args(k, f"v{k}"))
            wal.append(OP_DELETE, _args(2.0))
        result = recover(tmp_path)
        assert sorted(k for k, _ in result.index.items()) == [5.0, 9.0]
        assert result.replayed == 4 and result.snapshot_seqno == 0

    def test_snapshot_plus_wal_tail(self, tmp_path):
        _seed_dir(tmp_path, 1_000)
        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            wal.append(OP_INSERT, _args(5000.5, "tail"))
            wal.append(OP_DELETE, _args(17.0))
        result = recover(tmp_path)
        assert len(result.index) == 1_000  # +1 insert, -1 delete
        assert result.index.get(5000.5) == "tail"
        assert result.index.get(17.0) is None
        assert result.replayed == 2

    def test_skips_records_already_in_snapshot(self, tmp_path):
        """Crash between snapshot rename and WAL truncation: stale
        records at or below the snapshot seqno must not replay twice."""
        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            wal.append(OP_INSERT, _args(1.0, "a"))   # seqno 1
            wal.append(OP_INSERT, _args(2.0, "b"))   # seqno 2
            wal.append(OP_DELETE, _args(1.0))        # seqno 3
        index = DILI()
        index.insert(2.0, "b")
        write_snapshot(index, tmp_path / SNAPSHOT_NAME, last_seqno=3)
        result = recover(tmp_path)
        assert result.skipped == 3 and result.replayed == 0
        assert result.index.get(1.0) is None  # the delete is not undone
        assert result.next_seqno == 4

    def test_stops_at_torn_wal_tail(self, tmp_path):
        _seed_dir(tmp_path, 100)
        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            wal.append(OP_INSERT, _args(1000.5, "ok"))
            wal.append(OP_INSERT, _args(2000.5, "torn"))
        wal_path = tmp_path / WAL_NAME
        wal_path.write_bytes(wal_path.read_bytes()[:-4])
        result = recover(tmp_path)
        assert result.index.get(1000.5) == "ok"
        assert result.index.get(2000.5) is None
        assert result.wal_truncated and result.replayed == 1
        result.index.validate()

    def test_failing_record_is_skipped_not_fatal(self, tmp_path):
        """A logged-but-rejected op (e.g. a duplicate-key bulk_insert
        written by a pre-validation build) must not make the directory
        unopenable; the records behind it still replay."""
        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            wal.append(OP_INSERT, _args(1.0, "a"))
            wal.append(OP_BULK_INSERT, _args([5.0, 5.0], None))  # poison
            wal.append(OP_INSERT, _args(2.0, "b"))
        result = recover(tmp_path)
        assert result.failed == 1
        assert result.replayed == 2
        assert result.index.get(1.0) == "a"
        assert result.index.get(2.0) == "b"
        assert result.index.get(5.0) is None
        result.index.validate()

    def test_corrupt_snapshot_refused(self, tmp_path):
        _seed_dir(tmp_path, 200)
        snap = tmp_path / SNAPSHOT_NAME
        raw = bytearray(snap.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        snap.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            recover(tmp_path)

    def test_snapshot_of_wrong_object_refused(self, tmp_path):
        write_snapshot({"not": "an index"}, tmp_path / SNAPSHOT_NAME)
        with pytest.raises(SnapshotError, match="does not contain"):
            recover(tmp_path)

    def test_recover_is_read_only(self, tmp_path):
        _seed_dir(tmp_path, 100)
        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            wal.append(OP_INSERT, _args(999.5, "x"))
        before = {
            name: (tmp_path / name).read_bytes()
            for name in os.listdir(tmp_path)
        }
        recover(tmp_path)
        after = {
            name: (tmp_path / name).read_bytes()
            for name in os.listdir(tmp_path)
        }
        assert before == after

    def test_recovered_index_validates_and_serves(self, tmp_path):
        keys = _seed_dir(tmp_path, 500)
        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            for i in range(50):
                wal.append(OP_INSERT, _args(10_000.0 + i, i))
        result = recover(tmp_path, validate=True)
        assert result.index.get(float(keys[123])) == 123
        assert result.index.get(10_049.0) == 49
        got = result.index.range_query(10_000.0, 10_010.0)
        assert [k for k, _ in got] == [10_000.0 + i for i in range(10)]
