"""Crash-storm fault injection: kill-9 at every point, recover, verify.

The durability contract under test:

* **No acknowledged write lost** -- an operation whose call returned
  before the crash must be present (with its exact effect) after
  recovery.
* **No phantom write resurrected** -- no key/value the workload never
  acknowledged (other than the single in-flight operation) may appear.
* **In-flight atomicity** -- the one operation interrupted by the
  crash is recovered all-or-nothing: the index equals either the
  acknowledged state or the acknowledged state plus that whole
  operation, never a partial mix.
* The recovered index always passes ``validate()``.

``test_kill_at_every_crash_point`` hits each registered point once,
deterministically; ``test_crash_storm`` interleaves hundreds of random
operations with crashes at random points across many rounds, carrying
the surviving state from each crash into the next round.
"""

import numpy as np
import pytest

from repro import DurableDILI
from repro.durability import (
    CRASH_POINTS,
    FaultInjector,
    SimulatedCrash,
    recover,
)

# Points that fire on the mutation path (triggered by insert/delete/...)
WAL_POINTS = ("before_wal_append", "mid_wal_append", "after_wal_append")
# Points that fire on the checkpoint path (triggered by snapshot()).
SNAPSHOT_POINTS = tuple(p for p in CRASH_POINTS if p not in WAL_POINTS)


def _model_apply(model, op):
    """Apply one op to the dict model of acknowledged state."""
    kind, key, value = op
    if kind == "insert":
        model.setdefault(key, value)
    elif kind == "delete":
        model.pop(key, None)
    elif kind == "update":
        if key in model:
            model[key] = value
    return model


def _assert_recovered(tmp_path, model, inflight):
    """Recovered state == acked state, modulo the one in-flight op."""
    result = recover(tmp_path, validate=True)
    recovered = dict(result.index.items())
    if inflight is None:
        assert recovered == model, "recovered state != acknowledged state"
    else:
        with_inflight = _model_apply(dict(model), inflight)
        assert recovered in (model, with_inflight), (
            f"in-flight {inflight} recovered non-atomically: "
            f"{len(recovered)} keys vs acked {len(model)}"
        )
    return result.index, recovered


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_kill_at_every_crash_point(tmp_path, point):
    faults = FaultInjector()
    d = DurableDILI(tmp_path, faults=faults)
    d.bulk_load(np.arange(0.0, 400.0))
    model = dict(d.items())
    # A few acknowledged operations before the crash.
    for op in [
        ("insert", 1000.5, "a"),
        ("insert", 1001.5, "b"),
        ("delete", 7.0, None),
        ("update", 1000.5, "a2"),
    ]:
        kind, key, value = op
        getattr(d, kind)(*((key,) if kind == "delete" else (key, value)))
        _model_apply(model, op)

    faults.arm(point)
    inflight = None
    with pytest.raises(SimulatedCrash):
        if point in WAL_POINTS:
            inflight = ("insert", 2000.5, "doomed")
            d.insert(2000.5, "doomed")
        else:
            d.snapshot()  # checkpointing never changes logical state
    d.wal.close()  # kill-9: the kernel reclaims the descriptor

    index, recovered = _assert_recovered(tmp_path, model, inflight)
    # Life goes on: reopening trims torn tails and accepts new writes.
    d2 = DurableDILI(tmp_path, faults=FaultInjector())
    assert d2.insert(3000.5, "after-recovery")
    d2.validate()
    d2.close()


def test_crash_storm(tmp_path):
    """Random ops x random crash points x many rounds, state carried over."""
    rng = np.random.default_rng(2023)
    key_pool = np.round(rng.uniform(0.0, 1e6, 160), 3)
    faults = FaultInjector()
    d = DurableDILI(tmp_path, faults=faults)
    d.bulk_load(np.sort(np.unique(key_pool[:60])))
    model = dict(d.items())
    crashes = 0

    for round_no in range(30):
        point = str(rng.choice(CRASH_POINTS))
        faults.arm(point, skip=int(rng.integers(0, 4)),
                   partial=float(rng.uniform(0.05, 0.95)))
        inflight = None
        try:
            for _ in range(int(rng.integers(5, 25))):
                key = float(rng.choice(key_pool))
                kind = str(rng.choice(
                    ["insert", "insert", "update", "delete", "snapshot"]
                ))
                if kind == "snapshot":
                    op = None
                    d.snapshot()
                elif kind == "delete":
                    op = ("delete", key, None)
                    inflight = op
                    d.delete(key)
                else:
                    op = (kind, key, f"r{round_no}")
                    inflight = op
                    getattr(d, kind)(key, f"r{round_no}")
                if op is not None:
                    _model_apply(model, op)  # acknowledged: call returned
                inflight = None
        except SimulatedCrash:
            crashes += 1
            d.wal.close()
            index, recovered = _assert_recovered(tmp_path, model, inflight)
            model = recovered  # the survivors are the new ground truth
            d = DurableDILI(tmp_path, faults=faults)
        else:
            faults.disarm()

    assert crashes >= 10, "storm too tame: not enough crashes triggered"
    d.close()
    final = recover(tmp_path, validate=True)
    assert dict(final.index.items()) == model
