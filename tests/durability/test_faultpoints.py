"""FaultInjector unit contract: torn writes never persist a full record."""

import io
import os

import pytest

from repro.durability.faultpoints import FaultInjector, SimulatedCrash


class _Filenoed:
    """In-memory file with a fileno so tear_and_crash can fsync it."""

    def __init__(self):
        self.buf = io.BytesIO()

    def write(self, data):
        return self.buf.write(data)

    def flush(self):
        self.buf.flush()

    def fileno(self):
        return -1


@pytest.fixture(autouse=True)
def no_fsync(monkeypatch):
    """fsync of the fake fileno would fail; the durability is simulated."""
    monkeypatch.setattr(os, "fsync", lambda fd: None)


def _tear(data: bytes, fraction: float) -> bytes:
    """Run tear_and_crash over ``data`` and return what landed."""
    inj = FaultInjector()
    fh = _Filenoed()
    with pytest.raises(SimulatedCrash):
        inj.tear_and_crash("mid_wal_append", fh, data, fraction)
    return fh.buf.getvalue()


class TestTearContract:
    def test_tear_writes_proper_prefix(self):
        data = b"0123456789"
        for fraction in (0.0, 0.3, 0.5, 0.9, 1.0):
            landed = _tear(data, fraction)
            assert 1 <= len(landed) <= len(data) - 1
            assert data.startswith(landed)

    def test_single_byte_record_never_persists(self):
        """len(data) == 1 cannot tear: at most len-1 == 0 bytes may
        land, so the crash must not write the (complete) record."""
        assert _tear(b"x", 0.5) == b""
        assert _tear(b"x", 1.0) == b""

    def test_empty_data_never_persists(self):
        assert _tear(b"", 0.5) == b""

    def test_fire_is_one_shot(self):
        inj = FaultInjector()
        inj.arm("after_wal_append")
        with pytest.raises(SimulatedCrash):
            inj.fire("after_wal_append")
        inj.fire("after_wal_append")  # disarmed: no raise
        assert inj.fired == ["after_wal_append"]
