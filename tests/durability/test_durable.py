"""DurableDILI: logged mutations survive reopen; checkpoints bound replay."""

import threading

import numpy as np
import pytest

from repro import DurableDILI
from repro.durability import recover


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.uniform(0, 1e9, n))


class TestReopen:
    def test_operations_survive_close_and_reopen(self, tmp_path):
        with DurableDILI(tmp_path) as d:
            d.bulk_load(np.arange(0.0, 500.0))
            assert d.insert(1000.5, "a")
            assert d.delete(13.0)
            assert d.update(1000.5, "b")
            assert not d.update(99999.0, "absent")
            expected = dict(d.items())
        with DurableDILI(tmp_path) as d2:
            assert dict(d2.items()) == expected
            assert d2.get(1000.5) == "b"
            d2.validate()

    def test_kill_without_close_loses_nothing(self, tmp_path):
        d = DurableDILI(tmp_path)
        d.bulk_load(np.arange(0.0, 300.0))
        for i in range(40):
            assert d.insert(5000.0 + i, i)
        expected = dict(d.items())
        d.wal.close()  # simulate kill-9: no snapshot, no graceful close
        result = recover(tmp_path)
        assert dict(result.index.items()) == expected

    def test_bulk_load_is_checkpointed_immediately(self, tmp_path):
        d = DurableDILI(tmp_path)
        d.bulk_load(_keys(2_000))
        d.wal.close()  # kill before any explicit snapshot
        result = recover(tmp_path)
        assert len(result.index) == 2_000
        assert result.replayed == 0  # all in the snapshot, none in WAL

    def test_bulk_insert_is_logged(self, tmp_path):
        d = DurableDILI(tmp_path)
        d.bulk_load(np.arange(0.0, 100.0))
        added = d.bulk_insert([200.5, 201.5, 50.0], ["x", "y", "dup"])
        assert added == 2
        d.wal.close()
        result = recover(tmp_path)
        assert len(result.index) == 102
        assert result.index.get(200.5) == "x"
        assert result.index.get(50.0) == 50  # existing key kept its value

    def test_snapshot_truncates_wal(self, tmp_path):
        d = DurableDILI(tmp_path)
        d.bulk_load(np.arange(0.0, 100.0))
        for i in range(20):
            d.insert(1000.0 + i, i)
        assert len(d.wal) == 20
        d.snapshot()
        assert len(d.wal) == 0
        d.insert(2000.5, "after")
        d.close()
        result = recover(tmp_path)
        assert result.replayed == 1  # only the post-snapshot insert
        assert len(result.index) == 121

    def test_seqnos_continue_across_reopen(self, tmp_path):
        with DurableDILI(tmp_path) as d:
            d.insert(1.0, "a")
            d.insert(2.0, "b")
            first_last = d.wal.last_seqno
        with DurableDILI(tmp_path) as d2:
            d2.insert(3.0, "c")
            assert d2.wal.last_seqno == first_last + 1

    def test_empty_directory_starts_empty(self, tmp_path):
        with DurableDILI(tmp_path) as d:
            assert len(d) == 0
            assert d.get(1.0) is None
            assert d.insert(1.0, "x")
            assert 1.0 in d

    def test_delete_of_absent_key_is_harmless(self, tmp_path):
        with DurableDILI(tmp_path) as d:
            d.bulk_load(np.arange(0.0, 50.0))
            assert not d.delete(999.0)
        with DurableDILI(tmp_path) as d2:
            assert len(d2) == 50
            d2.validate()


class TestRejectedBatches:
    """A batch DILI would reject must never reach the WAL: a durably
    logged poison record would fail replay identically on every reopen
    and leave the state directory permanently unopenable."""

    def test_duplicate_keys_rejected_before_logging(self, tmp_path):
        with DurableDILI(tmp_path) as d:
            d.bulk_load(np.arange(0.0, 50.0))
            with pytest.raises(ValueError, match="unique"):
                d.bulk_insert([5.0, 5.0], ["a", "b"])
            assert len(d.wal) == 0  # nothing was logged
        with DurableDILI(tmp_path) as d2:  # directory still opens
            assert len(d2) == 50
            d2.validate()

    def test_mismatched_values_rejected_before_logging(self, tmp_path):
        with DurableDILI(tmp_path) as d:
            d.bulk_load(np.arange(0.0, 50.0))
            with pytest.raises(ValueError, match="length"):
                d.bulk_insert([100.5, 200.5], ["only-one"])
            assert len(d.wal) == 0
        with DurableDILI(tmp_path) as d2:
            assert len(d2) == 50
            d2.validate()


class TestConcurrentComposition:
    def test_threaded_inserts_all_recovered(self, tmp_path):
        base = _keys(1_000, seed=1)
        d = DurableDILI(tmp_path, concurrent=True, sync=False)
        d.bulk_load(base)
        extra = np.setdiff1d(_keys(1_200, seed=2), base)
        chunks = np.array_split(extra, 4)
        errors = []

        def worker(chunk):
            try:
                for k in chunk:
                    assert d.insert(float(k), "t")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(d) == len(base) + len(extra)
        d.sync_wal()
        d.validate()
        d.wal.close()
        result = recover(tmp_path)
        assert len(result.index) == len(base) + len(extra)
        for k in extra[::37]:
            assert result.index.get(float(k)) == "t"

    def test_snapshot_races_with_writers(self, tmp_path):
        base = _keys(800, seed=3)
        d = DurableDILI(tmp_path, concurrent=True, sync=False)
        d.bulk_load(base)
        extra = np.setdiff1d(_keys(900, seed=4), base)
        errors = []

        def writer(chunk):
            try:
                for k in chunk:
                    d.insert(float(k), "w")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def snapshotter():
            try:
                for _ in range(5):
                    d.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(c,))
            for c in np.array_split(extra, 3)
        ]
        threads.append(threading.Thread(target=snapshotter))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        d.sync_wal()
        d.wal.close()
        result = recover(tmp_path)
        assert len(result.index) == len(base) + len(extra)
        result.index.validate()

    def test_long_batch_read_does_not_block_logged_write(self, tmp_path):
        """A reader holding an epoch pin never stalls a logged write."""
        base = _keys(1_000, seed=5)
        d = DurableDILI(tmp_path, concurrent=True, sync=False)
        d.bulk_load(base, list(range(len(base))))
        d.get_batch(base[:4])  # compile + publish the plan
        extra = np.setdiff1d(_keys(1_100, seed=6), base)[:64]

        pinned = threading.Event()
        release = threading.Event()
        snapshot_out = []

        def long_reader():
            with d.index._pinned_plan() as plan:
                assert plan is not None
                pinned.set()
                # Hold the pin across the whole write below; the
                # snapshot stays readable the entire time.
                assert release.wait(timeout=30)
                snapshot_out.append(plan.get_batch(base[:8]))

        written = threading.Event()

        def logged_writer():
            assert bool(np.all(d.insert_batch(extra, ["w"] * len(extra))))
            written.set()

        reader = threading.Thread(target=long_reader)
        reader.start()
        assert pinned.wait(timeout=30)
        writer = threading.Thread(target=logged_writer)
        writer.start()
        writer.join(timeout=30)
        # The write must finish while the read is still pinned -- if
        # batch reads still took locks, the writer would be parked
        # here until ``release`` fires and the join would time out.
        assert written.is_set() and not release.is_set()
        release.set()
        reader.join(timeout=30)
        assert snapshot_out == [list(range(8))]

        d.sync_wal()
        d.wal.close()
        result = recover(tmp_path)  # the concurrent write was logged
        assert len(result.index) == len(base) + len(extra)

    def test_exclusive_writer_does_not_block_published_read(
        self, tmp_path
    ):
        """Batch reads descend the published plan past a locked writer."""
        base = _keys(1_000, seed=7)
        d = DurableDILI(tmp_path, concurrent=True, sync=False)
        d.bulk_load(base, list(range(len(base))))
        d.get_batch(base[:4])  # compile + publish the plan

        holding = threading.Event()
        release = threading.Event()

        def exclusive_holder():
            with d.index.exclusive():
                holding.set()
                assert release.wait(timeout=30)

        got = []

        def reader():
            got.append(d.get_batch(base[:16]))

        holder = threading.Thread(target=exclusive_holder)
        holder.start()
        assert holding.wait(timeout=30)
        t = threading.Thread(target=reader)
        t.start()
        t.join(timeout=30)
        # The read returns while the exclusive lock is still held.
        assert got == [list(range(16))] and not release.is_set()
        release.set()
        holder.join(timeout=30)
        d.close()
