"""Consolidated edge-case coverage across packages."""

import numpy as np
import pytest

from repro import DILI, DiliConfig
from repro.baselines import (
    AlexIndex,
    BPlusTree,
    DynamicPGM,
    MassTree,
    UnsupportedOperation,
)
from repro.workloads.generator import NAMED_SPECS, Operation, make_workload
from repro.workloads.runner import run_workload


class TestRunnerEdges:
    def test_unsupported_operation_propagates(self):
        from repro.baselines import RMIIndex

        index = RMIIndex(64)
        index.bulk_load(np.arange(100, dtype=np.float64))
        ops = [(Operation.INSERT, 0.5)]
        with pytest.raises(UnsupportedOperation):
            run_workload(index, ops, warmup=0)

    def test_empty_stream(self):
        index = DILI()
        index.bulk_load(np.arange(10, dtype=np.float64))
        result = run_workload(index, [], warmup=0)
        assert result.operations == 0
        assert result.sim_ns_per_op == 0.0

    def test_lookup_misses_counted_as_non_hits(self):
        index = DILI()
        index.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        ops = [(Operation.LOOKUP, 1.0), (Operation.LOOKUP, 2.0)]
        result = run_workload(index, ops, warmup=0)
        assert result.hits == 1


class TestWorkloadSpecEdges:
    def test_scaled_to_tiny_total(self):
        spec = NAMED_SPECS["Read-Heavy"].scaled(3)
        assert spec.lookups + spec.inserts <= 3

    def test_zero_insert_pool_read_only(self):
        keys = np.arange(50, dtype=np.float64)
        ops = make_workload(
            NAMED_SPECS["Read-Only"].scaled(20), keys, np.array([])
        )
        assert len(ops) == 20


class TestIndexChurnEdges:
    def test_btree_range_after_heavy_churn(self):
        tree = BPlusTree(4)
        rng = np.random.default_rng(11)
        live = {}
        for step, key in enumerate(rng.integers(0, 500, 2_000)):
            key = float(key)
            if step % 3 == 0 and key in live:
                tree.delete(key)
                del live[key]
            elif key not in live:
                tree.insert(key, step)
                live[key] = step
        got = tree.range_query(100.0, 400.0)
        expected = sorted(
            (k, v) for k, v in live.items() if 100.0 <= k < 400.0
        )
        assert got == expected
        tree.validate()

    def test_alex_range_after_splits(self):
        index = AlexIndex(4096)
        index.bulk_load(np.arange(0, 5_000, 5, dtype=np.float64))
        rng = np.random.default_rng(12)
        extra = np.unique(rng.integers(1_000, 1_200, 500)).astype(float)
        fresh = [k for k in extra if k % 5 != 0]
        for k in fresh:
            assert index.insert(float(k), "x")
        got = [k for k, _ in index.range_query(1_000.0, 1_200.0)]
        expected = sorted(
            set(np.arange(1_000, 1_200, 5, dtype=float).tolist())
            | set(float(k) for k in fresh)
        )
        assert got == expected

    def test_dynamic_pgm_range_after_tombstones(self):
        index = DynamicPGM(8, base=16)
        index.bulk_load(np.arange(0, 200, 2, dtype=np.float64))
        for k in range(0, 100, 4):
            assert index.delete(float(k))
        got = [k for k, _ in index.range_query(0.0, 50.0)]
        expected = [
            float(k)
            for k in range(0, 50, 2)
            if not (k < 100 and k % 4 == 0)
        ]
        assert got == expected

    def test_masstree_memory_shrinks_with_pruning(self):
        tree = MassTree()
        keys = np.arange(0, 2_000, 1, dtype=np.float64)
        tree.bulk_load(keys)
        full = tree.memory_bytes()
        for k in keys[:1_900]:
            assert tree.delete(float(k))
        assert tree.memory_bytes() < full

    def test_dili_delete_everything_then_rebuild_by_insert(self):
        keys = np.arange(0, 500, 1, dtype=np.float64)
        index = DILI()
        index.bulk_load(keys)
        for k in keys:
            assert index.delete(float(k))
        assert len(index) == 0
        index.validate()
        for k in keys[::2]:
            assert index.insert(float(k), "back")
        assert len(index) == 250
        index.validate()

    def test_dili_insert_same_key_many_times(self):
        index = DILI()
        index.bulk_load(np.arange(10, dtype=np.float64))
        for _ in range(50):
            assert not index.insert(5.0, "dup")
        assert len(index) == 10

    def test_dili_alternating_insert_delete_same_key(self):
        index = DILI()
        index.bulk_load(np.arange(0, 100, 2, dtype=np.float64))
        for round_no in range(30):
            assert index.insert(51.0, round_no)
            assert index.get(51.0) == round_no
            assert index.delete(51.0)
        assert index.get(51.0) is None
        index.validate()


class TestConfigEdges:
    def test_enlarge_exactly_one_still_works(self):
        keys = np.unique(
            np.random.default_rng(13).integers(0, 10**6, 2_000)
        ).astype(float)
        index = DILI(DiliConfig(enlarge=1.0))
        index.bulk_load(keys)
        for i in range(0, len(keys), 59):
            assert index.get(float(keys[i])) == i
        index.validate()

    def test_tiny_omega(self):
        keys = np.arange(0, 3_000, 3, dtype=np.float64)
        index = DILI(DiliConfig(omega=16))
        index.bulk_load(keys)
        for i in range(0, len(keys), 83):
            assert index.get(float(keys[i])) == i
        index.validate()

    def test_lambda_barely_above_one(self):
        keys = np.arange(0, 5_000, 5, dtype=np.float64)
        index = DILI(DiliConfig(lambda_adjust=1.01))
        index.bulk_load(keys)
        rng = np.random.default_rng(14)
        for k in np.unique(rng.uniform(100.0, 200.0, 500)):
            index.insert(float(k), "w")
        index.validate()
