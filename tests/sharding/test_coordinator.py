"""ShardedDILI end to end: scatter/gather, writes, restarts, rebalance.

Process-backed tests use the real multiprocessing pipe stack (fork
where available); in-process tests cover the same coordinator logic
without spawn cost.  Every read is audited against a shadow dict.
"""

import numpy as np
import pytest

from repro.sharding import ShardedDILI, read_manifest


def make_data(n=3_000, seed=13):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10_000_000, size=n)).astype(np.float64)
    values = [int(k) * 7 for k in keys]
    return keys, values


def make_index(tmp_path, *, num_shards=2, processes=False, **kwargs):
    keys, values = make_data()
    index = ShardedDILI.create(
        tmp_path / "shards",
        keys,
        values,
        num_shards=num_shards,
        partition="range",
        tuning="none",
        processes=processes,
        sync=False,
        **kwargs,
    )
    return index, keys, values


@pytest.mark.parametrize("num_shards", [2, 4])
@pytest.mark.parametrize("processes", [False, True])
def test_scatter_gather_order_identity(tmp_path, num_shards, processes):
    keys, values = make_data()
    shadow = dict(zip(keys.tolist(), values))
    rng = np.random.default_rng(31)
    queries = np.concatenate(
        (
            rng.choice(keys, size=500),
            rng.uniform(-1e6, 1.1e7, size=250),
        )
    )
    rng.shuffle(queries)
    with ShardedDILI.create(
        tmp_path / "s",
        keys,
        values,
        num_shards=num_shards,
        tuning="none",
        processes=processes,
        sync=False,
    ) as index:
        got = index.get_batch(queries)
        present = index.contains_batch(queries)
    want = [shadow.get(float(q)) for q in queries.tolist()]
    assert got == want
    assert present.tolist() == [
        float(q) in shadow for q in queries.tolist()
    ]


def test_writes_visible_and_order_preserved(tmp_path):
    index, keys, values = make_index(tmp_path, num_shards=3)
    with index:
        fresh = np.array([1.5, 5_000_000.5, 9_999_999.5])
        inserted = index.insert_batch(fresh, ["a", "b", "c"])
        assert inserted.tolist() == [True, True, True]
        assert index.get_batch(fresh) == ["a", "b", "c"]
        assert len(index) == len(keys) + 3

        updated = index.update_batch(fresh, ["a2", "b2", "c2"])
        assert updated.tolist() == [True, True, True]
        assert index.get_batch(fresh) == ["a2", "b2", "c2"]

        deleted = index.delete_batch(fresh[:2])
        assert deleted.tolist() == [True, True]
        assert index.get_batch(fresh) == [None, None, "c2"]
        assert len(index) == len(keys) + 1


def test_count_range_matches_numpy(tmp_path):
    index, keys, _ = make_index(tmp_path, num_shards=4)
    with index:
        rng = np.random.default_rng(37)
        los = rng.uniform(0, 9e6, size=16)
        his = los + rng.uniform(0, 3e6, size=16)
        got = index.count_range_batch(los, his)
        # count_range is half-open [lo, hi).
        want = [
            int(
                np.searchsorted(keys, hi, side="left")
                - np.searchsorted(keys, lo, side="left")
            )
            for lo, hi in zip(los, his)
        ]
        assert got.tolist() == want
        assert index.count_range(
            float(keys[0]), float(keys[-1]) + 1.0
        ) == len(keys)


def test_worker_restart_after_kill(tmp_path):
    index, keys, values = make_index(tmp_path, processes=True)
    shadow = dict(zip(keys.tolist(), values))
    with index:
        victim = 1
        old_pid = index.kill_worker(victim)
        # Stride across the whole keyspace so every shard -- including
        # the corpse -- receives part of the scatter.
        queries = keys[:: max(1, len(keys) // 300)]
        got = index.get_batch(queries)
        assert got == [shadow[float(q)] for q in queries.tolist()]
        assert index.restarts == 1
        status = index.status()
        assert status["health"] == "healthy"
        assert status["shards"][victim]["pid"] != old_pid
        assert status["shards"][victim]["rung"] == 1


def test_split_and_merge_zero_wrong_reads(tmp_path):
    index, keys, values = make_index(tmp_path, num_shards=2)
    shadow = dict(zip(keys.tolist(), values))
    queries = keys[:: max(1, len(keys) // 400)]
    want = [shadow[float(q)] for q in queries.tolist()]
    with index:
        base_generation = index.status()["generation"]
        index.split_shard(0)
        assert index.num_shards == 3
        assert index.get_batch(queries) == want
        assert len(index) == len(keys)

        index.merge_shards(0)
        assert index.num_shards == 2
        assert index.get_batch(queries) == want
        assert len(index) == len(keys)
        status = index.status()
        assert status["generation"] == base_generation + 2
        assert status["partition"] == "range"
        # Every rebalance rewrote the manifest atomically.
        manifest = read_manifest(index.dirpath)
        assert manifest.generation == status["generation"]
        assert len(manifest.shards) == 2


def test_maybe_rebalance_splits_hot_shard(tmp_path):
    index, keys, values = make_index(tmp_path, num_shards=2)
    with index:
        # Hammer shard 0 only: its ops counter becomes the hot outlier.
        hot = keys[keys < np.median(keys)][:256]
        for _ in range(4):
            index.get_batch(hot)
        action = index.maybe_rebalance(split_ratio=1.5)
        assert action is not None and action["action"] == "split"
        assert index.num_shards == 3
        assert index.rebalances == 1
        shadow = dict(zip(keys.tolist(), values))
        got = index.get_batch(keys[:300])
        assert got == [shadow[float(k)] for k in keys[:300].tolist()]


def test_reopen_from_directory(tmp_path):
    index, keys, values = make_index(tmp_path, num_shards=3)
    with index:
        fresh = np.array([2.5, 3.5])
        index.insert_batch(fresh, ["x", "y"])
    with ShardedDILI.open(
        tmp_path / "shards", processes=False, sync=False
    ) as reopened:
        assert len(reopened) == len(keys) + 2
        assert reopened.get_batch(fresh) == ["x", "y"]
        got = reopened.get_batch(keys[:200])
        assert got == values[:200]


def test_invalid_write_batch_rejected_before_scatter(tmp_path):
    index, keys, _ = make_index(tmp_path)
    with index:
        with pytest.raises(ValueError):
            index.insert_batch(np.array([1.0, np.nan]), ["a", "b"])
        with pytest.raises(ValueError):
            index.update_batch(np.array([1.0]), None)
        # Nothing partial happened.
        assert len(index) == len(keys)


def test_status_reports_per_shard_counters(tmp_path):
    index, keys, _ = make_index(tmp_path, num_shards=2)
    with index:
        index.get_batch(keys[:100])
        status = index.status()
    assert status["num_shards"] == 2
    assert status["router"]["kind"] == "range"
    assert status["router"]["routed"] >= 100
    total_reads = sum(
        s["ops"]["reads"] for s in status["shards"]
    )
    assert total_reads == 100
    for shard in status["shards"]:
        assert shard["health"] == "healthy"
        assert shard["generations"]
        assert shard["keys"] > 0


class TestPipeProtocolValidation:
    """The frame validators are the pipe protocol's trust boundary:
    whatever a half-dead peer pickles gets shape-checked before
    dispatch (worker side) or field access (coordinator side)."""

    def test_validate_request_passes_good_frames(self):
        from repro.sharding.worker import _validate_request

        frame = (7, "get_batch", (np.asarray([1.0]),))
        assert _validate_request(frame) is frame

    @pytest.mark.parametrize(
        "frame",
        [
            None,
            "stop",
            (1, "get_batch"),  # missing args
            (1, "get_batch", (), "extra"),
            ("1", "get_batch", ()),  # req_id not an int
            (True, "get_batch", ()),  # bool is not a req_id
            (1, 2, ()),  # method not a str
            (1, "get_batch", [1.0]),  # args not a tuple
        ],
    )
    def test_validate_request_rejects_malformed_frames(self, frame):
        from repro.sharding.worker import _validate_request

        with pytest.raises(ValueError):
            _validate_request(frame)

    def test_validate_response_passes_good_frames(self):
        from repro.sharding.coordinator import _validate_response

        frame = (7, True, [1, 2, 3])
        assert _validate_response(frame) is frame

    @pytest.mark.parametrize(
        "frame",
        [
            None,
            (1, True),
            (1, True, None, None),
            ("1", True, None),
            (True, True, None),  # bool is not a req_id
            (1, 1, None),  # ok not a bool
        ],
    )
    def test_validate_response_rejects_malformed_frames(self, frame):
        from repro.sharding.coordinator import _validate_response

        with pytest.raises(ValueError):
            _validate_response(frame)

    def test_worker_survives_until_malformed_frame(self, tmp_path):
        # A process worker that receives garbage exits instead of
        # dispatching on it; the coordinator sees a dead worker and
        # restarts it on the next request.
        index, keys, values = make_index(tmp_path, processes=True)
        with index:
            handle = index._handles[0]
            handle.conn.send("not a frame")
            got = index.get_batch(keys[:10])
            assert got == [values[i] for i in range(10)]


class TestRepublish:
    def test_republish_rolls_every_shard_generation(self, tmp_path):
        index, keys, values = make_index(tmp_path)
        with index:
            new_keys = keys[:50] + 0.5
            index.insert_batch(new_keys, [int(k) for k in new_keys])
            generations = index.republish()
            assert set(generations) == {
                entry.name for entry in index.manifest.shards
            }
            assert all(g >= 1 for g in generations.values())
            # Serving continues from the fresh generation.
            got = index.get_batch(keys[:20])
            assert got == [values[i] for i in range(20)]

    def test_republish_single_shard(self, tmp_path):
        index, keys, values = make_index(tmp_path)
        with index:
            generations = index.republish(0)
            assert len(generations) == 1
