"""The sharded chaos contract: zero wrong reads under kills + rebalance."""

from repro.sharding.chaos import run_shard_chaos, run_supervision_chaos


class TestShardChaos:
    def test_chaos_run_is_clean(self):
        report = run_shard_chaos(seed=3)
        assert report.clean, report.to_dict()
        assert report.wrong_reads == 0
        assert report.lost_writes == 0
        # The schedule actually exercised the failure paths.
        assert report.kills >= 2
        assert report.restarts >= 1
        assert report.mid_rebalance_kills >= 1
        assert report.rebalances >= 1
        assert report.reads > 1_000
        assert not any(
            "unhealthy" in event for event in report.events
        ), report.events

    def test_deterministic_given_seed(self):
        a = run_shard_chaos(seed=5, rounds=3, num_keys=800, num_shards=2)
        b = run_shard_chaos(seed=5, rounds=3, num_keys=800, num_shards=2)
        assert a.clean and b.clean
        assert a.reads == b.reads
        assert a.writes == b.writes
        assert a.final_keys == b.final_keys

    def test_report_dict_shape(self):
        report = run_shard_chaos(
            seed=1, rounds=2, num_keys=500, num_shards=2, kill_every=0,
            rebalance_round=99,
        )
        d = report.to_dict()
        assert d["clean"] is True
        assert d["kills"] == 0
        assert d["rebalances"] == 0
        assert d["final_shards"] == 2


class TestSupervisionChaos:
    def test_supervision_chaos_run_is_clean(self):
        report = run_supervision_chaos(seed=7)
        assert report.clean, report.to_dict()
        # Zero wrong reads and *exact* per-key unavailability.
        assert report.wrong_reads == 0
        assert report.misreported_unavailability == 0
        assert report.unavailable_marks > 0
        # Every injector actually fired and was contained.
        assert report.hung_replaced_within_deadline
        assert report.slow_worker_survived
        assert report.breaker_tripped_within_budget
        assert report.failures_at_trip <= 2  # the policy budget
        assert report.write_rejected_retryable
        assert report.healthy_shards_kept_serving
        assert report.healed
        assert report.final_health == "healthy"
        assert report.kills >= 3
        assert report.restarts >= 3
        d = report.to_dict()
        assert d["clean"] is True
