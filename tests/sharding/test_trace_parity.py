"""±0 trace parity: sharded batch reads cost exactly the unsharded index.

An aligned partition clones the global root per shard (same region ids,
same Eq.1 model, same child offsets), workers record per-key simulated
event segments, and the coordinator replays them in input order into
the caller's (stateful, LRU cache-simulating) tracer.  The acceptance
bar is the ISSUE 8 criterion: identical values, identical order, and
*bit-identical* simulated cycles and cache misses vs one unsharded
DILI over the same keys -- checked property-based in-process, and once
through the real multi-process pipe stack.
"""

import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI
from repro.sharding import ShardedDILI
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer

CACHE_LINES = 1024


@st.composite
def keys_and_queries(draw):
    keys = draw(
        st.lists(
            st.integers(0, 100_000),
            min_size=32,
            max_size=300,
            unique=True,
        )
    )
    hits = draw(
        st.lists(st.sampled_from(keys), min_size=1, max_size=48)
    )
    misses = draw(
        st.lists(st.integers(-1000, 101_000), max_size=24)
    )
    queries = [float(q) for q in hits] + [q + 0.5 for q in misses]
    return sorted(float(k) for k in keys), queries


def assert_parity(keys, queries, *, num_shards, processes):
    keys = np.asarray(keys, dtype=np.float64)
    values = [f"v{i}" for i in range(len(keys))]
    reference = DILI()
    reference.bulk_load(keys, list(values))
    live = CostTracer(CacheSimulator(CACHE_LINES))
    want = reference.get_batch(queries, live)

    with tempfile.TemporaryDirectory(prefix="repro-parity-") as tmp:
        with ShardedDILI.create(
            tmp,
            keys,
            list(values),
            num_shards=num_shards,
            partition="aligned",
            processes=processes,
            sync=False,
        ) as index:
            sharded = CostTracer(CacheSimulator(CACHE_LINES))
            got = index.get_batch(queries, sharded)

    assert got == want  # same values, same input order
    assert sharded.total_cycles == live.total_cycles  # ±0
    assert sharded.cache_misses == live.cache_misses


class TestTraceParity:
    @given(keys_and_queries())
    @settings(max_examples=20, deadline=None)
    def test_in_process_parity_is_exact(self, case):
        keys, queries = case
        assert_parity(keys, queries, num_shards=3, processes=False)

    def test_two_shard_parity(self):
        rng = np.random.default_rng(17)
        keys = np.unique(rng.integers(0, 10_000_000, size=4_000)).astype(
            np.float64
        )
        queries = np.concatenate(
            (
                rng.choice(keys, size=512),
                rng.uniform(-1e6, 1.1e7, size=256),
            )
        )
        assert_parity(keys, queries, num_shards=2, processes=False)

    def test_multi_process_parity_is_exact(self):
        # The same contract through real worker processes and pipes:
        # recorded segments survive pickling and coordinator replay.
        rng = np.random.default_rng(23)
        keys = np.unique(rng.integers(0, 5_000_000, size=5_000)).astype(
            np.float64
        )
        queries = np.concatenate(
            (rng.choice(keys, size=768), rng.uniform(0, 6e6, size=256))
        )
        assert_parity(keys, queries, num_shards=3, processes=True)

    def test_untraced_reads_match_reference_values(self):
        rng = np.random.default_rng(29)
        keys = np.unique(rng.integers(0, 1_000_000, size=2_000)).astype(
            np.float64
        )
        values = list(range(len(keys)))
        lookup = dict(zip(keys.tolist(), values))
        queries = np.concatenate(
            (rng.choice(keys, size=256), rng.uniform(0, 1.2e6, size=256))
        )
        with tempfile.TemporaryDirectory() as tmp:
            with ShardedDILI.create(
                tmp, keys, values, num_shards=4, partition="aligned",
                processes=False, sync=False,
            ) as index:
                got = index.get_batch(queries)
        want = [lookup.get(float(q)) for q in queries.tolist()]
        assert got == want
