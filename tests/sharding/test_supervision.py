"""Fleet supervision: deadlines, breakers, ledgers, degraded serving.

Unit tests drive the clock-injected state machines (Deadline,
CircuitBreaker, RestartPolicy, FleetSupervisor, HealthMonitor.drive_to)
without sleeping; integration tests use real SIGSTOP'd / delayed /
killed worker processes to pin the coordinator-level contracts: hung
workers are replaced within one request deadline, slow workers are not
killed, partial-mode reads report exact per-key unavailability, writes
to isolated shards fail with a typed retryable error, aggregate health
reflects *every* shard, and shutdown stays bounded even with a
SIGSTOP'd worker.
"""

import time

import numpy as np
import pytest

from repro.check.errors import InvariantError
from repro.resilience.health import Health, HealthMonitor
from repro.sharding.breaker import BreakerState, CircuitBreaker, RestartPolicy
from repro.sharding.coordinator import ShardedDILI
from repro.sharding.supervision import (
    HEARTBEAT_RID,
    STARTUP_RID,
    UNAVAILABLE,
    Deadline,
    DeadlineExceeded,
    FleetSupervisor,
    ShardUnavailableError,
    WorkerDied,
    _validate_response,
    drain_stale,
    poll_frame,
    recv_frame,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FakeConn:
    """A pipe endpoint stub: queued frames, optional raising."""

    def __init__(self, frames=(), fail=None) -> None:
        self.frames = list(frames)
        self.fail = fail

    def poll(self, timeout=0.0):
        if self.fail is not None:
            raise self.fail
        return bool(self.frames)

    def recv(self):
        if self.fail is not None:
            raise self.fail
        return self.frames.pop(0)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline(None)
        assert d.remaining() == float("inf")
        assert not d.expired
        assert d.slice(0.05) == 0.05

    def test_counts_down_and_expires(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert d.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert d.remaining() == pytest.approx(0.5)
        assert not d.expired
        clock.advance(1.0)
        assert d.expired
        assert d.slice(0.05) == 0.0

    def test_slice_is_bounded_by_both_cap_and_budget(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        assert d.slice(0.05) == 0.05
        clock.advance(0.98)
        assert d.slice(0.05) == pytest.approx(0.02)

    def test_negative_budget_is_an_invariant_violation(self):
        with pytest.raises(InvariantError):
            Deadline(-0.1)


# ----------------------------------------------------------------------
# RestartPolicy backoff
# ----------------------------------------------------------------------


class TestRestartPolicy:
    def test_first_failure_restarts_immediately(self):
        policy = RestartPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == 0.0

    def test_exponential_with_cap(self):
        policy = RestartPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5
        )
        assert policy.backoff(2) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.2)
        assert policy.backoff(4) == pytest.approx(0.4)
        assert policy.backoff(5) == pytest.approx(0.5)  # capped
        assert policy.backoff(50) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=5.0):
        clock = FakeClock()
        return CircuitBreaker(
            threshold=threshold, cooldown=cooldown, clock=clock
        ), clock

    def test_starts_closed_and_allows(self):
        b, _ = self.make()
        assert b.state is BreakerState.CLOSED
        assert b.closed
        assert b.allow_attempt()

    def test_trips_after_threshold_consecutive_failures(self):
        b, _ = self.make(threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state is BreakerState.CLOSED
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.trips == 1
        assert not b.allow_attempt()

    def test_cooldown_gates_the_half_open_probe(self):
        b, clock = self.make(threshold=1, cooldown=5.0)
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.cooldown_remaining() == pytest.approx(5.0)
        clock.advance(4.9)
        assert not b.allow_attempt()
        clock.advance(0.2)
        assert b.allow_attempt()
        assert b.state is BreakerState.HALF_OPEN
        # The probe is in flight; a concurrent attempt is still allowed
        # (the coordinator lock serializes them).
        assert b.allow_attempt()

    def test_failed_probe_reopens_and_counts_a_trip(self):
        b, clock = self.make(threshold=1, cooldown=5.0)
        b.record_failure()
        clock.advance(5.1)
        assert b.allow_attempt()
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.trips == 2
        assert b.cooldown_remaining() == pytest.approx(5.0)

    def test_successful_probe_restores_full_trust(self):
        b, clock = self.make(threshold=2, cooldown=5.0)
        b.record_failure()
        b.record_failure()
        clock.advance(5.1)
        assert b.allow_attempt()
        b.record_success()
        assert b.state is BreakerState.CLOSED
        assert b.failures == 0
        assert b.cooldown_remaining() == 0.0
        # One fresh failure does not re-trip a threshold-2 breaker.
        b.record_failure()
        assert b.state is BreakerState.CLOSED

    def test_snapshot_is_side_effect_free(self):
        b, clock = self.make(threshold=1, cooldown=5.0)
        b.record_failure()
        clock.advance(6.0)
        snap = b.snapshot()
        assert snap["state"] == "open"  # reading must not flip HALF_OPEN
        assert b.state is BreakerState.OPEN
        assert snap["failures"] == 1
        assert snap["trips"] == 1

    def test_threshold_must_be_positive(self):
        with pytest.raises(InvariantError):
            CircuitBreaker(threshold=0)


# ----------------------------------------------------------------------
# FleetSupervisor
# ----------------------------------------------------------------------


class TestFleetSupervisor:
    def make(self, names=("a", "b"), **policy_kwargs):
        clock = FakeClock()
        policy = RestartPolicy(
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_cap=1.0,
            budget=2,
            cooldown=5.0,
            **policy_kwargs,
        )
        return FleetSupervisor(names, policy=policy, clock=clock), clock

    def test_fresh_fleet_is_available_and_healthy(self):
        sup, _ = self.make()
        assert sup.available(0) and sup.available(1)
        assert sup.target_health() is Health.HEALTHY
        assert sup.open_breakers() == 0

    def test_down_shard_degrades_until_revived(self):
        sup, _ = self.make()
        sup.note_down(0, "killed")
        assert not sup.available(0)
        assert sup.target_health() is Health.DEGRADED
        sup.note_success(0)
        assert sup.available(0)
        assert sup.target_health() is Health.HEALTHY

    def test_alive_callback_catches_unnoticed_deaths(self):
        # The two-concurrent-kills case: ledgers say up, but a worker
        # process is gone and no request has noticed yet.
        sup, _ = self.make()
        assert sup.target_health(alive=lambda i: i != 1) is Health.DEGRADED
        assert sup.target_health(alive=lambda i: True) is Health.HEALTHY

    def test_backoff_schedule_gates_restart_attempts(self):
        sup, clock = self.make()
        assert sup.authorize_restart(0) == 0.0  # first failure: immediate
        sup.note_failure(0, "boom")
        delay = sup.authorize_restart(0)
        assert delay == pytest.approx(0.1)
        clock.advance(0.05)
        assert sup.authorize_restart(0) == pytest.approx(0.05)
        clock.advance(0.1)
        assert sup.authorize_restart(0) == 0.0

    def test_budget_exhaustion_trips_the_breaker_and_types_the_error(self):
        sup, clock = self.make()
        sup.note_failure(0, "poisoned dir")
        sup.note_failure(0, "poisoned dir")
        led = sup.ledger(0)
        assert led.breaker.state is BreakerState.OPEN
        with pytest.raises(ShardUnavailableError) as info:
            sup.authorize_restart(0)
        err = info.value
        assert err.retryable is True
        assert err.shard == 0
        assert err.name == "a"
        assert err.state is BreakerState.OPEN
        assert err.retry_after == pytest.approx(5.0)
        # After the cooldown the probe attempt is authorized again.
        clock.advance(5.1)
        assert sup.authorize_restart(0) >= 0.0
        sup.note_success(0)
        assert led.breaker.closed
        assert led.consecutive_failures == 0
        assert sup.target_health() is Health.HEALTHY

    def test_open_breaker_degrades_even_while_up(self):
        sup, _ = self.make()
        sup.note_failure(1, "x")
        sup.note_failure(1, "x")
        sup.ledger(1).up = True  # even if somehow marked up...
        assert sup.target_health() is Health.DEGRADED
        assert sup.open_breakers() == 1
        assert not sup.available(1)

    def test_probe_candidates_respect_backoff_and_cooldown(self):
        sup, clock = self.make()
        sup.note_down(0, "killed")
        assert sup.probe_candidates() == [0]
        sup.note_failure(0, "spawn failed")
        assert sup.probe_candidates() == []  # backing off
        clock.advance(0.2)
        assert sup.probe_candidates() == [0]
        sup.note_failure(0, "spawn failed")  # trips (budget=2)
        clock.advance(1.0)
        assert sup.probe_candidates() == []  # OPEN, cooling down
        clock.advance(5.0)
        assert sup.probe_candidates() == [0]  # probe-ready

    def test_splice_mirrors_a_rebalance_with_fresh_ledgers(self):
        sup, _ = self.make(names=("a", "b", "c"))
        sup.note_failure(1, "x")
        sup.splice(1, 1, ["b1", "b2"])
        names = [led.name for led in sup.ledgers]
        assert names == ["a", "b1", "b2", "c"]
        assert all(led.up for led in sup.ledgers)
        assert sup.target_health() is Health.HEALTHY

    def test_status_snapshots_every_ledger(self):
        sup, _ = self.make()
        sup.note_down(1, "killed")
        rows = sup.status()
        assert [row["name"] for row in rows] == ["a", "b"]
        assert rows[1]["up"] is False
        assert rows[1]["last_error"] == "killed"
        assert rows[0]["breaker"]["state"] == "closed"


# ----------------------------------------------------------------------
# HealthMonitor.drive_to
# ----------------------------------------------------------------------


class TestHealthDriveTo:
    @pytest.mark.parametrize("start", list(Health))
    @pytest.mark.parametrize("target", list(Health))
    def test_reaches_any_target_via_legal_hops(self, start, target):
        monitor = HealthMonitor()
        monitor.drive_to(start)
        before = len(monitor.history)
        monitor.drive_to(target)
        assert monitor.state is target
        # Every hop was committed through .to(), which enforces the
        # transition table -- so reaching the target proves legality;
        # also check the walk was minimal (<= 2 hops in this machine).
        assert len(monitor.history) - before <= 2

    def test_degraded_to_healthy_routes_through_repairing(self):
        monitor = HealthMonitor()
        monitor.to(Health.DEGRADED)
        monitor.drive_to(Health.HEALTHY)
        assert monitor.history == [
            (Health.HEALTHY, Health.DEGRADED),
            (Health.DEGRADED, Health.REPAIRING),
            (Health.REPAIRING, Health.HEALTHY),
        ]


# ----------------------------------------------------------------------
# Frame validation + sanctioned pipe wrappers
# ----------------------------------------------------------------------


class TestFrameValidation:
    def test_good_frame_passes_through(self):
        assert _validate_response((3, True, "pong")) == (3, True, "pong")

    @pytest.mark.parametrize(
        "frame",
        [
            None,
            (1, True),
            (1, True, None, None),
            ("1", True, None),
            (True, True, None),  # bool is not an acceptable req id
            (1, "yes", None),
            [1, True, None],
        ],
    )
    def test_malformed_frames_are_rejected(self, frame):
        with pytest.raises(ValueError):
            _validate_response(frame)


class TestUnavailableMarker:
    def test_falsy_distinct_singleton(self):
        assert not UNAVAILABLE
        assert UNAVAILABLE is not None
        assert repr(UNAVAILABLE) == "<unavailable>"


class TestPipeWrappers:
    def test_poll_frame_translates_os_errors_to_worker_died(self):
        conn = FakeConn(fail=OSError("broken"))
        with pytest.raises(WorkerDied):
            poll_frame(conn, 0.0, "shard-x")

    def test_recv_frame_validates_and_translates(self):
        assert recv_frame(FakeConn([(1, True, "ok")]), "s") == (1, True, "ok")
        with pytest.raises(WorkerDied):
            recv_frame(FakeConn([("bad", True, None)]), "s")
        with pytest.raises(WorkerDied):
            recv_frame(FakeConn(fail=EOFError()), "s")

    def test_drain_stale_notes_heartbeats_and_drops_responses(self):
        beats = []
        conn = FakeConn(
            [
                (HEARTBEAT_RID, True, None),
                (7, True, "stale response"),
                (HEARTBEAT_RID, True, None),
            ]
        )
        drain_stale(conn, "s", on_heartbeat=lambda: beats.append(1))
        assert conn.frames == []
        assert len(beats) == 2

    def test_drain_stale_surfaces_buffered_startup_failure(self):
        conn = FakeConn([(STARTUP_RID, False, ("OSError", "no such dir"))])
        with pytest.raises(WorkerDied, match="startup failed"):
            drain_stale(conn, "s")


# ----------------------------------------------------------------------
# Coordinator integration: real processes, real signals
# ----------------------------------------------------------------------


def make_data(n=1_500, seed=13):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10_000_000, size=n)).astype(np.float64)
    values = [int(k) * 7 for k in keys]
    return keys, values


def make_index(tmp_path, *, num_shards=3, processes=True, **kwargs):
    keys, values = make_data()
    index = ShardedDILI.create(
        tmp_path / "shards",
        keys,
        values,
        num_shards=num_shards,
        partition="range",
        tuning="none",
        processes=processes,
        sync=False,
        **kwargs,
    )
    return index, keys, values


class TestHungWorkerEscalation:
    def test_hung_worker_replaced_within_one_request_deadline(self, tmp_path):
        request_timeout = 10.0
        index, keys, values = make_index(
            tmp_path,
            request_timeout=request_timeout,
            heartbeat_interval=0.1,
            hang_timeout=0.5,
            policy=RestartPolicy(term_grace=0.3),
            supervise=False,  # force the *in-request* escalation path
        )
        shadow = dict(zip(keys.tolist(), values))
        with index:
            victim = 1
            old_pid = index._handles[victim].pid
            index.pause_worker(victim)
            queries = keys[:: max(1, len(keys) // 120)]  # spans all shards
            started = time.monotonic()
            got = index.get_batch(queries)
            elapsed = time.monotonic() - started
            assert got == [shadow[k] for k in queries.tolist()]
            assert elapsed <= request_timeout + 0.5
            assert index.restarts == 1
            assert index._handles[victim].pid != old_pid
            led = index.supervisor.ledger(victim)
            assert led.up and led.breaker.closed
            assert index.health.state is Health.HEALTHY


class TestSlowWorkerIsNotHung:
    def test_deadline_exceeded_without_killing_the_worker(self, tmp_path):
        index, keys, values = make_index(
            tmp_path,
            request_timeout=1.5,
            heartbeat_interval=0.1,
            hang_timeout=2.0,
            supervise=False,
        )
        shadow = dict(zip(keys.tolist(), values))
        with index:
            victim = 0
            pid = index._handles[victim].pid
            slow_keys = keys[index.router.route(keys) == victim][:20]
            index.set_worker_delay(victim, 3.5)
            with pytest.raises(DeadlineExceeded):
                index.get_batch(slow_keys)
            # Slow is not hung: heartbeats kept flowing, so the worker
            # was neither put down nor restarted.
            assert index._handles[victim].pid == pid
            assert index._handles[victim].alive()
            assert index.restarts == 0
            # Partial mode degrades instead: exactly the slow shard's
            # keys are UNAVAILABLE, every other key is exact.
            mixed = keys[:: max(1, len(keys) // 90)]
            routed = index.router.route(mixed)
            got = index.get_batch(mixed, partial=True)
            for key, shard, value in zip(
                mixed.tolist(), routed.tolist(), got
            ):
                if shard == victim:
                    assert value is UNAVAILABLE
                else:
                    assert value == shadow[key]


class TestForcedOpenBreaker:
    def test_partial_reads_and_typed_write_rejection(self, tmp_path):
        index, keys, values = make_index(tmp_path, processes=False)
        shadow = dict(zip(keys.tolist(), values))
        with index:
            sup = index.supervisor
            for _ in range(sup.policy.budget):
                sup.note_failure(0, "forced open for test")
            assert sup.ledger(0).breaker.state is BreakerState.OPEN

            zero_keys = keys[index.router.route(keys) == 0][:10]
            with pytest.raises(ShardUnavailableError):
                index.get_batch(zero_keys)  # fail-fast default

            mixed = keys[:: max(1, len(keys) // 60)]
            routed = index.router.route(mixed)
            got = index.get_batch(mixed, partial=True)
            for key, shard, value in zip(
                mixed.tolist(), routed.tolist(), got
            ):
                if shard == 0:
                    assert value is UNAVAILABLE
                else:
                    assert value == shadow[key]

            # Writes touching the isolated shard are rejected before
            # any scatter: typed, retryable, and with zero side
            # effects on the healthy shards' keys.
            healthy_key = mixed[routed != 0][0]
            batch = np.array([zero_keys[0], healthy_key])
            with pytest.raises(ShardUnavailableError) as info:
                index.update_batch(batch, ["w0", "w1"])
            assert info.value.retryable is True
            assert info.value.shard == 0
            assert index.get_batch(np.array([healthy_key])) == [
                shadow[float(healthy_key)]
            ]

            # contains_batch degrades the same way.
            present = index.contains_batch(mixed, partial=True)
            for shard, flag, key in zip(
                routed.tolist(), list(present), mixed.tolist()
            ):
                if shard == 0:
                    assert flag is UNAVAILABLE
                else:
                    assert bool(flag) == (key in shadow)


class TestAggregateHealthRegression:
    def test_two_concurrent_kills_do_not_mask_each_other(self, tmp_path):
        # PR 8 regression: _restart marked the whole coordinator
        # HEALTHY after reviving one worker while another was dead.
        index, keys, _ = make_index(tmp_path, supervise=False)
        with index:
            a_keys = keys[index.router.route(keys) == 0][:10]
            b_keys = keys[index.router.route(keys) == 1][:10]
            index.kill_worker(0)
            index.kill_worker(1)
            index.get_batch(a_keys)  # revives shard 0 only
            assert index.restarts == 1
            assert index.health.state is Health.DEGRADED
            index.get_batch(b_keys)  # revives shard 1 too
            assert index.restarts == 2
            assert index.health.state is Health.HEALTHY


class TestStaleResponses:
    def test_abandoned_response_is_discarded_not_misdelivered(self, tmp_path):
        index, keys, _ = make_index(tmp_path, supervise=False)
        with index:
            handle = index._handles[0]
            index.set_worker_delay(0, 0.6)
            shard_keys = keys[index.router.route(keys) == 0][:5]
            stale_rid = handle.send("get_batch", (shard_keys, False))
            # Abandon that request; the next call must skip the stale
            # frame by id and return its own response.
            assert handle.call("ping", deadline=10.0) == "pong"
            assert handle._next_req > stale_rid
            index.set_worker_delay(0, 0.0)


class TestBoundedShutdown:
    def test_close_returns_despite_a_sigstopped_worker(self, tmp_path):
        index, _, _ = make_index(
            tmp_path,
            num_shards=2,
            policy=RestartPolicy(term_grace=0.3),
            supervise=False,
        )
        procs = [handle.process for handle in index._handles]
        index.pause_worker(0)
        started = time.monotonic()
        index.close()
        elapsed = time.monotonic() - started
        # stop() budget (5s) + term_grace + kill reaping, per the
        # escalation contract -- never the old unbounded join.
        assert elapsed < 15.0
        assert not any(proc.is_alive() for proc in procs)
        index.close()  # idempotent
