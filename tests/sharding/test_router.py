"""The learned shard router: edge cases and searchsorted equivalence.

The contract is exact: ``ShardRouter.route`` must agree with
``np.searchsorted(boundaries, keys, side="right")`` on every input --
the learned model is a fast path whose mispredictions are *corrected*,
never served.  ``AlignedRouter.child_of`` must agree bit for bit with
the scalar ``InternalNode.child_index`` arithmetic.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding.router import (
    AlignedRouter,
    ShardRouter,
    router_from_dict,
)


class TestShardRouterEdges:
    def test_single_shard_degenerate(self):
        router = ShardRouter([])
        assert router.num_shards == 1
        assert router.route([1.0, -5.0, 1e18]).tolist() == [0, 0, 0]

    def test_empty_batch(self):
        router = ShardRouter([10.0, 20.0])
        assert router.route([]).tolist() == []

    def test_below_first_and_above_last_boundary(self):
        router = ShardRouter([10.0, 20.0])
        assert router.route([-1e9, 9.999]).tolist() == [0, 0]
        assert router.route([20.0, 1e9]).tolist() == [2, 2]

    def test_boundary_key_routes_right(self):
        # boundaries[j] is the first key of shard j+1: inclusive there.
        router = ShardRouter([10.0, 20.0])
        assert router.route([10.0]).tolist() == [1]
        assert router.route([19.999]).tolist() == [1]

    def test_duplicate_boundaries_make_empty_shard(self):
        # Shard 1 covers [10, 10) = empty; no key may route into it.
        router = ShardRouter([10.0, 10.0])
        got = router.route([9.0, 10.0, 11.0])
        assert got.tolist() == [0, 2, 2]

    def test_all_boundaries_equal(self):
        router = ShardRouter([7.0, 7.0, 7.0])
        got = router.route(np.linspace(0.0, 14.0, 29))
        assert got.tolist() == router.route_naive(
            np.linspace(0.0, 14.0, 29)
        ).tolist()

    def test_decreasing_boundaries_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter([20.0, 10.0])

    def test_shard_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter([10.0], num_shards=5)

    def test_counters(self):
        router = ShardRouter([10.0])
        router.route([1.0, 2.0, 3.0])
        assert router.routed == 3
        assert router.corrected <= 3

    def test_round_trip_dict(self):
        router = ShardRouter([10.0, 20.0])
        clone = router_from_dict(router.to_dict())
        keys = np.array([-1.0, 10.0, 15.0, 25.0])
        assert clone.route(keys).tolist() == router.route(keys).tolist()

    def test_nonfinite_keys_still_exact(self):
        router = ShardRouter([10.0, 20.0])
        keys = np.array([np.inf, -np.inf])
        assert (
            router.route(keys).tolist()
            == router.route_naive(keys).tolist()
        )


boundary_lists = st.lists(
    st.floats(
        min_value=-1e12, max_value=1e12,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=0,
    max_size=24,
).map(sorted)


@given(
    boundaries=boundary_lists,
    keys=st.lists(
        st.floats(
            min_value=-1e13, max_value=1e13,
            allow_nan=False, allow_infinity=False,
        ),
        max_size=128,
    ),
)
@settings(max_examples=200, deadline=None)
def test_route_equals_searchsorted(boundaries, keys):
    router = ShardRouter(boundaries)
    keys = np.asarray(keys, dtype=np.float64)
    assert (
        router.route(keys).tolist()
        == np.searchsorted(boundaries, keys, side="right").tolist()
    )


class TestAlignedRouter:
    def test_child_of_matches_scalar_floor_model(self):
        router = AlignedRouter(0.25, 3.0, 16, [0, 4, 9])
        rng = np.random.default_rng(5)
        keys = rng.uniform(-100.0, 100.0, size=256)
        got = router.child_of(keys)
        for key, child in zip(keys.tolist(), got.tolist()):
            want = int(math.floor(3.0 + 0.25 * key))
            want = min(max(want, 0), 15)
            assert child == want

    def test_group_mapping(self):
        router = AlignedRouter(1.0, 0.0, 10, [0, 4, 7])
        # children 0-3 -> shard 0, 4-6 -> shard 1, 7-9 -> shard 2
        assert router.route([0.0, 3.9]).tolist() == [0, 0]
        assert router.route([4.0, 6.5]).tolist() == [1, 1]
        assert router.route([7.0, 99.0]).tolist() == [2, 2]

    def test_single_group(self):
        router = AlignedRouter(0.0, 0.0, 1, [0])
        assert router.route([1.0, 2.0]).tolist() == [0, 0]

    def test_invalid_group_starts(self):
        with pytest.raises(ValueError):
            AlignedRouter(1.0, 0.0, 8, [1, 4])
        with pytest.raises(ValueError):
            AlignedRouter(1.0, 0.0, 8, [0, 4, 4])
        with pytest.raises(ValueError):
            AlignedRouter(1.0, 0.0, 8, [0, 8])

    def test_round_trip_dict(self):
        router = AlignedRouter(0.5, -2.0, 12, [0, 5])
        clone = router_from_dict(router.to_dict())
        keys = np.linspace(-10.0, 40.0, 77)
        assert clone.route(keys).tolist() == router.route(keys).tolist()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            router_from_dict({"kind": "hash"})
