"""Partition planning: quantile shards, aligned splits, tuning, manifest."""

import numpy as np
import pytest

from repro.bench.harness import mixed_distribution_keys
from repro.core.dili import DiliConfig
from repro.sharding.manifest import (
    Manifest,
    ManifestError,
    ShardEntry,
    read_manifest,
    write_manifest,
)
from repro.sharding.partition import (
    build_range_shards,
    fit_shard_config,
    quantile_boundaries,
    split_aligned,
)


def sorted_keys(n, seed=11, lo=0.0, hi=1e7):
    rng = np.random.default_rng(seed)
    return np.unique(rng.uniform(lo, hi, size=int(n * 1.1)))[:n]


class TestQuantileBoundaries:
    def test_equal_count_cuts(self):
        keys = np.arange(100, dtype=np.float64)
        got = quantile_boundaries(keys, 4)
        assert got.tolist() == [25.0, 50.0, 75.0]

    def test_single_shard(self):
        assert quantile_boundaries(np.arange(9.0), 1).tolist() == []

    def test_fewer_keys_than_shards(self):
        keys = np.array([1.0, 2.0])
        got = quantile_boundaries(keys, 5)
        assert len(got) == 4
        assert np.all(np.diff(got) >= 0)  # duplicates allowed

    def test_empty_keys(self):
        assert len(quantile_boundaries(np.array([]), 3)) == 2

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            quantile_boundaries(np.array([3.0, 1.0]), 2)


class TestBuildRangeShards:
    def test_shards_partition_the_keys(self):
        keys = sorted_keys(5_000)
        part = build_range_shards(keys, None, 4, tuning="none")
        assert len(part.shards) == 4
        rebuilt = np.concatenate([s.keys for s in part.shards])
        assert np.array_equal(rebuilt, keys)
        # Router must send every key to the shard that stores it.
        sid = part.router.route(keys)
        for j, spec in enumerate(part.shards):
            assert np.array_equal(keys[sid == j], spec.keys)

    def test_values_follow_keys(self):
        keys = sorted_keys(300)
        values = [f"v{i}" for i in range(len(keys))]
        part = build_range_shards(keys, values, 3, tuning="none")
        flat = [v for s in part.shards for v in s.values]
        assert flat == values

    def test_local_tuning_differs_across_regimes(self):
        # Mixed-distribution data must produce heterogeneous configs
        # and a total simulated cost no worse than one global config --
        # the per-shard fit picks the argmin over the same grid the
        # global fit searches.
        keys = mixed_distribution_keys(30_000)
        local = build_range_shards(keys, None, 3, tuning="local")
        universal = build_range_shards(keys, None, 3, tuning="global")
        local_cfgs = [(s.config.omega, s.config.rho) for s in local.shards]
        assert len(set(local_cfgs)) > 1
        assert len({
            (s.config.omega, s.config.rho) for s in universal.shards
        }) == 1

    def test_unknown_tuning_rejected(self):
        with pytest.raises(ValueError):
            build_range_shards(sorted_keys(50), None, 2, tuning="psychic")

    def test_value_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_range_shards(sorted_keys(50), ["x"], 2, tuning="none")


class TestFitShardConfig:
    def test_tiny_shard_keeps_base(self):
        base = DiliConfig()
        config, cost = fit_shard_config(np.arange(8.0), base=base)
        assert config == base
        assert cost == 0.0

    def test_deterministic(self):
        keys = sorted_keys(4_000, seed=3)
        a = fit_shard_config(keys, seed=9)
        b = fit_shard_config(keys, seed=9)
        assert a == b


class TestSplitAligned:
    def test_counts_sum_and_shards_serve_their_keys(self):
        keys = sorted_keys(3_000)
        values = list(range(len(keys)))
        part = split_aligned(keys, values, 3)
        assert sum(s.count for s in part.shards) == len(keys)
        sid = part.router.route(keys)
        for j, shard in enumerate(part.shards):
            assert len(shard.index) == shard.count
            mine = keys[sid == j]
            assert int(np.count_nonzero(sid == j)) == shard.count
            got = shard.index.get_batch(mine)
            want = [values[i] for i in np.flatnonzero(sid == j)]
            assert got == want

    def test_single_shard_degenerate(self):
        keys = sorted_keys(500)
        part = split_aligned(keys, None, 1)
        assert len(part.shards) == 1
        assert part.router.num_shards == 1
        assert part.shards[0].count == len(keys)

    def test_tiny_tree_collapses_to_one_shard(self):
        keys = np.arange(4, dtype=np.float64)
        part = split_aligned(keys, None, 8)
        assert sum(s.count for s in part.shards) == len(keys)

    def test_masked_root_preserves_model_and_region(self):
        keys = sorted_keys(2_000)
        part = split_aligned(keys, None, 2)
        root = part.global_index.root
        for shard in part.shards:
            clone = shard.index.root
            assert clone.region == root.region
            assert clone.slope == root.slope
            assert clone.intercept == root.intercept
            assert len(clone.children) == len(root.children)


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = Manifest(
            router={"kind": "range", "boundaries": [10.0]},
            shards=[
                ShardEntry("shard-0000", 5, {"omega": 4096, "rho": 0.2}),
                ShardEntry("shard-0001", 7, {"omega": 512, "rho": 0.4}),
            ],
            generation=3,
            next_shard=2,
        )
        write_manifest(tmp_path, manifest)
        got = read_manifest(tmp_path)
        assert got.to_dict() == manifest.to_dict()

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ManifestError):
            read_manifest(tmp_path)

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / "shards.json").write_text("{not json")
        with pytest.raises(ManifestError):
            read_manifest(tmp_path)
