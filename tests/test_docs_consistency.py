"""Documentation consistency: the docs must track the code.

These meta-tests keep DESIGN.md's experiment index, the README's
example list, and the method registry from silently drifting away from
the files they describe.
"""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent


class TestDesignDoc:
    def test_every_referenced_benchmark_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert referenced, "DESIGN.md must reference benchmark files"
        for name in sorted(referenced):
            assert (ROOT / "benchmarks" / name).is_file(), (
                f"DESIGN.md references missing {name}"
            )

    def test_every_benchmark_is_referenced(self):
        design = (ROOT / "DESIGN.md").read_text()
        for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert path.name in design, (
                f"{path.name} is not listed in DESIGN.md"
            )

    def test_paper_identity_confirmed(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "DILI" in design and "VLDB 2023" in design


class TestReadme:
    def test_listed_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        referenced = set(re.findall(r"`(\w+\.py)`", readme))
        example_files = {
            p.name for p in (ROOT / "examples").glob("*.py")
        }
        listed = referenced & {f for f in referenced if "_" in f or f == "quickstart.py"}
        for name in sorted(example_files):
            assert name in readme, f"example {name} missing from README"
        for name in sorted(listed & example_files):
            assert (ROOT / "examples" / name).is_file()

    def test_listed_docs_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in re.findall(r"`docs/(\w+\.md)`", readme):
            assert (ROOT / "docs" / name).is_file(), name


class TestExperimentsDoc:
    def test_covers_every_paper_table_and_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for anchor in [
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 8",
            "Table 9",
            "Table 10",
            "Table 11",
            "Table 12",
            "Table 13",
            "Fig. 6a",
            "Fig. 6b",
            "Fig. 7",
            "Fig. 8",
            "Fig. 9a",
            "Fig. 9b",
            "Fig. 10",
        ]:
            assert anchor in text, f"EXPERIMENTS.md missing {anchor}"


class TestRegistryDocs:
    def test_method_factories_match_baselines_table(self):
        from repro.bench.harness import METHOD_FACTORIES

        # Every paper method family must appear in the registry.
        families = ["BinS", "B+Tree", "ALEX", "RMI", "RS", "MassTree",
                    "PGM", "LIPP", "DILI"]
        for family in families:
            assert any(
                name.startswith(family) for name in METHOD_FACTORIES
            ), family
