"""The plan-store CLI surface: ``repro plan ...`` and ``repro audit``.

Exit codes are the contract scripts depend on: ``repro audit`` returns
0 for a clean directory, 3 when every finding is recoverable (the
ladder can still serve), and 4 when the snapshot+WAL ground truth
itself is damaged.
"""

import numpy as np
import pytest

from repro.__main__ import main
from repro.durability.durable import DurableDILI
from repro.durability.snapshot import HEADER_SIZE
from repro.planstore.corrupt import (
    FAULT_PLAN_FLIPPED_BYTE,
    inject_plan_fault,
)
from repro.planstore.serve import PlanDirectory


@pytest.fixture()
def state(tmp_path):
    rng = np.random.default_rng(13)
    keys = np.unique(rng.uniform(0.0, 1e6, 400))
    durable = DurableDILI(tmp_path, sync=False)
    durable.bulk_load(keys)
    durable.publish_plan()
    for key in rng.uniform(2e6, 3e6, 16):
        durable.insert(float(key), "tail")
    durable.publish_tail()
    durable.sync_wal()
    durable.close()
    return tmp_path


class TestPlanCommands:
    def test_write_then_open(self, tmp_path, capsys):
        state_dir = str(tmp_path / "s")
        assert main(
            ["plan", "write", "--dir", state_dir, "--keys", "3000",
             "--tail"]
        ) == 0
        out = capsys.readouterr().out
        assert "published generation 1" in out
        assert main(["plan", "open", "--dir", state_dir, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "rung 1" in out

    def test_open_reports_fallback(self, state, capsys):
        plans = PlanDirectory.for_state_dir(state)
        inject_plan_fault(
            FAULT_PLAN_FLIPPED_BYTE,
            plans.base_path(1),
            np.random.default_rng(0),
        )
        # --verify forces the lazy CRC check, tripping the fallback.
        assert main(["plan", "open", "--dir", str(state), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "rung 3" in out
        assert "quarantin" in out

    def test_plan_audit_clean_and_damaged(self, state, capsys):
        assert main(["plan", "audit", "--dir", str(state)]) == 0
        plans = PlanDirectory.for_state_dir(state)
        inject_plan_fault(
            FAULT_PLAN_FLIPPED_BYTE,
            plans.base_path(1),
            np.random.default_rng(0),
        )
        assert main(["plan", "audit", "--dir", str(state)]) == 3
        out = capsys.readouterr().out
        assert "plan-buffer-crc" in out

    def test_plan_chaos(self, tmp_path, capsys):
        assert main(
            ["plan", "chaos", "--workdir", str(tmp_path / "chaos"),
             "--keys", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "wrong reads" in out


class TestAuditCommand:
    def test_clean_directory_exits_zero(self, state, capsys):
        assert main(["audit", str(state)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_recoverable_damage_exits_three(self, state, capsys):
        plans = PlanDirectory.for_state_dir(state)
        inject_plan_fault(
            FAULT_PLAN_FLIPPED_BYTE,
            plans.base_path(1),
            np.random.default_rng(0),
        )
        assert main(["audit", str(state)]) == 3

    def test_unrecoverable_damage_exits_four(self, state):
        snap = state / "snapshot.dili"
        raw = bytearray(snap.read_bytes())
        raw[HEADER_SIZE + 10] ^= 0xFF  # corrupt the snapshot payload
        snap.write_bytes(raw)
        assert main(["audit", str(state)]) == 4

    def test_missing_directory_exits_two(self, tmp_path):
        assert main(["audit", str(tmp_path / "nope")]) == 2
