"""Shared fixtures for the plan-store tests: one small built index."""

import numpy as np
import pytest

from repro import DILI


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(41)


@pytest.fixture(scope="module")
def keys(rng):
    return np.unique(rng.uniform(0.0, 1e6, 3000))


@pytest.fixture(scope="module")
def index(keys):
    idx = DILI()
    idx.bulk_load(keys, [f"v{i}" for i in range(len(keys))])
    return idx


@pytest.fixture(scope="module")
def plan(index):
    return index._plan()
