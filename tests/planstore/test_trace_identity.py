"""Trace identity: the mapped plan costs exactly what the live one does.

The acceptance bar is +-0 simulated cycles: ``PlanStore`` wraps a real
:class:`FlatPlan` over the memory-mapped buffers, so a traced
``get_batch`` must replay the *identical* descent -- same cycles, same
cache misses -- as the index the plan was published from.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI
from repro.planstore.format import write_plan_file
from repro.planstore.store import PlanStore
from repro.simulate.cache import CacheSimulator
from repro.simulate.tracer import CostTracer

CACHE_LINES = 1024


@st.composite
def keys_and_queries(draw):
    keys = draw(
        st.lists(
            st.integers(0, 100_000),
            min_size=8,
            max_size=250,
            unique=True,
        )
    )
    hits = draw(
        st.lists(st.sampled_from(keys), min_size=1, max_size=64)
    )
    misses = draw(
        st.lists(st.integers(-1000, 101_000), max_size=32)
    )
    queries = [float(q) for q in hits] + [q + 0.5 for q in misses]
    return sorted(float(k) for k in keys), queries


class TestTraceIdentity:
    @given(keys_and_queries())
    @settings(max_examples=25, deadline=None)
    def test_cycles_and_misses_match_exactly(self, case):
        keys, queries = case
        index = DILI()
        index.bulk_load(keys, [f"v{i}" for i in range(len(keys))])
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.plan"
            write_plan_file(path, index._plan())
            store = PlanStore.open(path)

            live = CostTracer(CacheSimulator(CACHE_LINES))
            mapped = CostTracer(CacheSimulator(CACHE_LINES))
            want = index.get_batch(queries, live)
            got = store.get_batch(queries, mapped)

            assert got == want
            assert mapped.total_cycles == live.total_cycles  # +-0
            assert mapped.cache_misses == live.cache_misses
            store.close()
