"""The fallback ladder under fire: corruption sweep and crash points.

Zero wrong reads is the contract: a damaged artifact may cost a rung
(older generation, rebuild, or -- at the bottom -- an explicit refusal),
but a served answer must always match the snapshot+WAL oracle, and
damaged files are quarantined for forensics, never deleted.
"""

import os

import numpy as np
import pytest

from repro.durability.durable import DurableDILI
from repro.durability.faultpoints import (
    PLAN_CRASH_POINTS,
    FaultInjector,
    SimulatedCrash,
)
from repro.planstore.chaos import EXPECTED_RUNG, run_plan_chaos
from repro.planstore.corrupt import (
    FAULT_PLAN_FLIPPED_BYTE,
    FAULT_PLAN_MISSING_DELTA,
    PLAN_FAULT_KINDS,
    inject_plan_fault,
)
from repro.planstore.serve import MmapDILI, PlanDirectory


class TestCorruptionSweep:
    @pytest.mark.parametrize("kind", PLAN_FAULT_KINDS)
    def test_fault_lands_on_expected_rung_with_zero_wrong_reads(
        self, tmp_path, kind
    ):
        result = run_plan_chaos(tmp_path, seed=3, n_keys=250, kinds=(kind,))
        (run,) = result.runs
        assert run.wrong_reads == 0
        assert run.rung == EXPECTED_RUNG[kind], run.report
        assert run.ok
        if kind != FAULT_PLAN_MISSING_DELTA:
            assert len(run.quarantined) >= 1

    def test_full_sweep_is_clean(self, tmp_path):
        result = run_plan_chaos(tmp_path, seed=11, n_keys=200)
        assert result.ok, [r.report for r in result.runs]
        assert result.wrong_reads == 0
        assert len(result.runs) == len(PLAN_FAULT_KINDS)


class TestQuarantine:
    def test_corrupt_base_is_renamed_never_deleted(self, tmp_path):
        rng = np.random.default_rng(5)
        keys = np.unique(rng.uniform(0.0, 1e6, 300))
        durable = DurableDILI(tmp_path, sync=False)
        durable.bulk_load(keys)
        durable.publish_plan()
        oracle = durable.get_batch(keys)

        plans = PlanDirectory.for_state_dir(tmp_path)
        base = plans.base_path(plans.generations()[0])
        original = os.path.getsize(base)
        inject_plan_fault(FAULT_PLAN_FLIPPED_BYTE, base, rng)

        served = MmapDILI(tmp_path)
        assert served.rung == 1  # lazy open cannot see a buffer flip yet
        assert served.get_batch(keys) == oracle  # read-verify + fallback
        assert served.rung == 3, served.events

        # The damaged file survives, bytes intact, under a new name.
        assert not os.path.exists(base)
        (moved,) = plans.quarantined()
        assert moved.endswith(".quarantined")
        assert os.path.getsize(moved) == original
        served.close()
        durable.close()

    def test_verify_descends_to_rebuild_without_raising(self, tmp_path):
        # With no WAL tail, open stays lazily at rung 1; verify() itself
        # must discover the flip, quarantine, and land on the rung-3
        # rebuild as a no-op — never forward "verify" to the live DILI.
        rng = np.random.default_rng(9)
        keys = np.unique(rng.uniform(0.0, 1e6, 300))
        durable = DurableDILI(tmp_path, sync=False)
        durable.bulk_load(keys)
        durable.publish_plan()
        oracle = durable.get_batch(keys)

        plans = PlanDirectory.for_state_dir(tmp_path)
        inject_plan_fault(
            FAULT_PLAN_FLIPPED_BYTE, plans.base_path(plans.generations()[0]), rng
        )

        served = MmapDILI(tmp_path)
        assert served.rung == 1
        served.verify()  # trips the CRC, re-descends, then no-ops
        assert served.rung == 3, served.events
        assert len(plans.quarantined()) == 1
        assert served.get_batch(keys) == oracle
        served.verify()  # already on the rebuild: still a no-op
        served.close()
        durable.close()

    def test_older_generation_takes_over(self, tmp_path):
        rng = np.random.default_rng(6)
        keys = np.unique(rng.uniform(0.0, 1e6, 300))
        durable = DurableDILI(tmp_path, sync=False)
        durable.bulk_load(keys[:200])
        durable.publish_plan()
        for key in keys[200:]:
            durable.insert(float(key), float(key))
        durable.publish_plan()
        durable.sync_wal()
        oracle = durable.get_batch(keys)

        plans = PlanDirectory.for_state_dir(tmp_path)
        newest = plans.base_path(plans.generations()[-1])
        inject_plan_fault(FAULT_PLAN_FLIPPED_BYTE, newest, rng)

        served = MmapDILI(tmp_path)
        assert served.get_batch(keys) == oracle
        # Rung 2: generation 1 plus WAL-tail replay covers the gap.
        assert served.rung == 2, served.events
        assert served.generation == 1
        served.close()
        durable.close()


class TestCrashPoints:
    @pytest.mark.parametrize("point", PLAN_CRASH_POINTS)
    def test_publish_crash_never_costs_a_read(self, tmp_path, point):
        rng = np.random.default_rng(9)
        keys = np.unique(rng.uniform(0.0, 1e6, 300))
        faults = FaultInjector()
        durable = DurableDILI(tmp_path, sync=False, faults=faults)
        durable.bulk_load(keys[:250])
        if point.endswith("delta_write"):
            durable.publish_plan()  # deltas need a base to extend
        for key in keys[250:]:
            durable.insert(float(key), float(key))
        durable.sync_wal()
        oracle = durable.get_batch(keys)

        faults.arm(point)
        with pytest.raises(SimulatedCrash):
            if point.endswith("delta_write"):
                durable.publish_tail()
            else:
                durable.publish_plan()
        faults.disarm()

        served = MmapDILI(tmp_path)
        assert served.get_batch(keys) == oracle, point
        assert served.rung in (1, 2, 3), served.events
        # A crash may leave a temp file behind (kill-9 cannot clean up),
        # but the generation listing must never adopt it.
        plans_dir = tmp_path / "plans"
        if plans_dir.exists():
            plans = PlanDirectory.for_state_dir(tmp_path)
            listed = {
                os.path.basename(plans.base_path(g))
                for g in plans.generations()
            }
            for p in plans_dir.iterdir():
                if p.name.endswith(".tmp"):
                    assert p.name not in listed
        served.close()
        durable.close()
