"""On-disk plan/delta framing: round-trips, and every way a file can lie."""

import pickle

import pytest

from repro.durability.wal import OP_DELETE, OP_INSERT
from repro.planstore.format import (
    COMMIT_MARKER,
    PLAN_MAGIC,
    PLAN_VERSION,
    PlanFormatError,
    PlanStoreError,
    encode_values,
    read_delta_file,
    read_plan_header,
    write_delta_file,
    write_plan_file,
)


def _enc(*args):
    return pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)


class TestPlanRoundTrip:
    def test_header_reflects_the_plan(self, tmp_path, plan):
        path = tmp_path / "p.plan"
        nbytes = write_plan_file(path, plan, wal_lsn=17, generation=3)
        assert path.stat().st_size == nbytes
        header = read_plan_header(path)
        assert header["version"] == PLAN_VERSION
        assert header["wal_lsn"] == 17
        assert header["generation"] == 3
        assert header["depth"] == plan.depth
        assert header["num_pairs"] == plan.num_pairs
        assert header["value_count"] == len(plan.values)
        names = [d["name"] for d in header["buffers"]]
        for required in ("kind", "slope", "intercept", "slot_ref",
                         "pair_keys", "value_bytes", "value_offsets"):
            assert required in names

    def test_file_starts_with_magic_ends_with_commit(self, tmp_path, plan):
        path = tmp_path / "p.plan"
        write_plan_file(path, plan)
        raw = path.read_bytes()
        assert raw.startswith(PLAN_MAGIC)
        assert raw.endswith(COMMIT_MARKER)

    def test_encode_values_round_trips(self):
        values = ["a", 17, None, {"k": [1.5]}]
        blob, offsets = encode_values(values)
        out = [
            pickle.loads(blob[offsets[i]:offsets[i + 1]].tobytes())
            for i in range(len(values))
        ]
        assert out == values


class TestPlanRejection:
    """Every lie a base file can tell must be a PlanStoreError at open."""

    @pytest.fixture()
    def path(self, tmp_path, plan):
        p = tmp_path / "p.plan"
        write_plan_file(p, plan, wal_lsn=5)
        return p

    def test_bad_magic(self, path):
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTAPLAN"
        path.write_bytes(raw)
        with pytest.raises(PlanFormatError, match="not a DILI plan"):
            read_plan_header(path)

    def test_header_bitflip(self, path):
        raw = bytearray(path.read_bytes())
        raw[40] ^= 0xFF  # inside the JSON header blob
        path.write_bytes(raw)
        with pytest.raises(PlanStoreError):
            read_plan_header(path)

    def test_missing_commit_marker(self, path):
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(COMMIT_MARKER)])
        with pytest.raises(PlanStoreError, match="commit"):
            read_plan_header(path)

    def test_truncated_buffer_region(self, path):
        raw = path.read_bytes()
        # Cut from the middle and re-append the marker: the recorded
        # file_size no longer matches reality.
        path.write_bytes(raw[: len(raw) // 2] + COMMIT_MARKER)
        with pytest.raises(PlanStoreError):
            read_plan_header(path)

    def test_future_version_is_refused(self, path, monkeypatch, tmp_path,
                                       plan):
        import repro.planstore.format as fmt

        monkeypatch.setattr(fmt, "PLAN_VERSION", PLAN_VERSION + 9)
        future = tmp_path / "future.plan"
        write_plan_file(future, plan)
        monkeypatch.undo()
        with pytest.raises(PlanFormatError, match="version"):
            read_plan_header(future)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.plan"
        p.write_bytes(b"")
        with pytest.raises(PlanStoreError):
            read_plan_header(p)


class TestDeltaFraming:
    OPS = [
        (OP_INSERT, _enc(1.5, "one")),
        (OP_INSERT, _enc(2.5, "two")),
        (OP_DELETE, _enc(1.5)),
    ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "d.delta"
        write_delta_file(
            path, self.OPS, base_generation=2, seq=1, wal_lsn=44
        )
        delta = read_delta_file(path)
        assert delta["base_generation"] == 2
        assert delta["seq"] == 1
        assert delta["wal_lsn"] == 44
        assert delta["ops"] == self.OPS

    def test_payload_bitflip_is_caught_before_unpickling(self, tmp_path):
        path = tmp_path / "d.delta"
        write_delta_file(
            path, self.OPS, base_generation=1, seq=1, wal_lsn=3
        )
        raw = bytearray(path.read_bytes())
        raw[-20] ^= 0xFF  # inside the pickled payload
        path.write_bytes(raw)
        with pytest.raises(PlanStoreError):
            read_delta_file(path)

    def test_truncation_is_caught(self, tmp_path):
        path = tmp_path / "d.delta"
        write_delta_file(
            path, self.OPS, base_generation=1, seq=1, wal_lsn=3
        )
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])
        with pytest.raises(PlanStoreError):
            read_delta_file(path)
