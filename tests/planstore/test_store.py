"""PlanStore vs the live index: identical answers, lazy verification."""

import pickle

import numpy as np
import pytest

from repro.durability.wal import (
    OP_DELETE,
    OP_DELETE_BATCH,
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_UPDATE,
)
from repro.planstore.format import (
    PlanFormatError,
    PlanStoreError,
    write_delta_file,
    write_plan_file,
)
from repro.planstore.store import PlanStore


def _enc(*args):
    return pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)


@pytest.fixture()
def plan_path(tmp_path, plan):
    path = tmp_path / "plan-00000001.plan"
    write_plan_file(path, plan, wal_lsn=0, generation=1)
    return path


class TestBaseEquality:
    def test_get_contains_count_match_the_live_index(
        self, plan_path, index, keys, rng
    ):
        store = PlanStore.open(plan_path)
        probe = np.concatenate(
            [keys[::7], rng.uniform(0.0, 1e6, 500)]  # hits and misses
        )
        assert store.get_batch(probe) == index.get_batch(probe)
        assert (
            store.contains_batch(probe) == index.contains_batch(probe)
        ).all()
        los = rng.uniform(0.0, 1e6, 64)
        his = los + rng.uniform(0.0, 2e5, 64)
        assert (
            store.count_range_batch(los, his)
            == index.count_range_batch(los, his)
        ).all()
        assert len(store) == len(index)
        store.close()

    def test_open_does_not_read_buffers(self, plan_path):
        # Lazy verification: corrupt a buffer byte *after* the header;
        # open must still succeed (it maps, it does not read) ...
        raw = bytearray(plan_path.read_bytes())
        raw[len(raw) - 100] ^= 0xFF
        plan_path.write_bytes(raw)
        store = PlanStore.open(plan_path)
        # ... and the first verified read must catch the lie.
        with pytest.raises(PlanFormatError, match="checksum"):
            store.verify()

    def test_read_verifies_and_raises_on_corruption(
        self, plan_path, keys
    ):
        raw = bytearray(plan_path.read_bytes())
        raw[len(raw) - 100] ^= 0xFF
        plan_path.write_bytes(raw)
        store = PlanStore.open(plan_path)
        with pytest.raises(PlanStoreError):
            store.get_batch(keys[:32])


class TestOverlay:
    def test_ops_shadow_the_base(self, plan_path, index, keys):
        store = PlanStore.open(plan_path)
        k_new, k_del, k_upd = 1e6 + 3.5, float(keys[10]), float(keys[20])
        store.apply_ops(
            [
                (OP_INSERT, _enc(k_new, "fresh")),
                (OP_DELETE, _enc(k_del)),
                (OP_UPDATE, _enc(k_upd, "bumped")),
            ]
        )
        probe = [k_new, k_del, k_upd, float(keys[30])]
        assert store.get_batch(probe) == [
            "fresh", None, "bumped", index.get_batch([keys[30]])[0]
        ]
        assert list(store.contains_batch(probe)) == [
            True, False, True, True
        ]
        assert len(store) == len(index)  # +1 insert, -1 delete

    def test_batch_opcodes_and_range_counts(self, plan_path, index, keys):
        store = PlanStore.open(plan_path)
        added = [2e6 + i for i in range(8)]
        removed = [float(k) for k in keys[40:44]]
        store.apply_ops(
            [
                (OP_INSERT_BATCH, _enc(added, ["x"] * len(added))),
                (OP_DELETE_BATCH, _enc(removed)),
            ]
        )
        los = np.array([0.0, 2e6, float(keys[35])])
        his = np.array([3e6, 2e6 + 100.0, float(keys[50])])
        base = index.count_range_batch(los, his)
        got = store.count_range_batch(los, his)
        assert got[0] == base[0] + len(added) - len(removed)
        assert got[1] == base[1] + len(added)
        assert got[2] == base[2] - len(removed)

    def test_overlay_only_insert_then_delete_vanishes(self, plan_path):
        store = PlanStore.open(plan_path)
        store.apply_ops(
            [(OP_INSERT, _enc(5e6, "temp")), (OP_DELETE, _enc(5e6))]
        )
        assert store.get_batch([5e6]) == [None]
        assert not store.contains_batch([5e6])[0]
        assert store.overlay_size == 0


class TestDeltaChain:
    def _delta(self, tmp_path, seq, ops, *, generation=1, lsn=None):
        path = tmp_path / f"plan-00000001.{seq:04d}.delta"
        write_delta_file(
            path, ops, base_generation=generation, seq=seq,
            wal_lsn=lsn if lsn is not None else seq,
        )
        return path

    def test_chain_replays_in_order(self, tmp_path, plan_path, index, keys):
        d1 = self._delta(
            tmp_path, 1, [(OP_INSERT, _enc(7e6, "a"))]
        )
        d2 = self._delta(
            tmp_path, 2, [(OP_UPDATE, _enc(7e6, "b"))]
        )
        store = PlanStore.open(plan_path, deltas=[d1, d2])
        assert store.get_batch([7e6]) == ["b"]
        assert store.wal_lsn == 2

    def test_gap_in_chain_is_refused(self, tmp_path, plan_path):
        d2 = self._delta(tmp_path, 2, [(OP_INSERT, _enc(7e6, "a"))])
        with pytest.raises(PlanFormatError, match="chain gap"):
            PlanStore.open(plan_path, deltas=[d2])

    def test_foreign_generation_is_refused(self, tmp_path, plan_path):
        d1 = self._delta(
            tmp_path, 1, [(OP_INSERT, _enc(7e6, "a"))], generation=9
        )
        with pytest.raises(PlanFormatError, match="generation"):
            PlanStore.open(plan_path, deltas=[d1])
