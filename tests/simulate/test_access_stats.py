"""Tests for the access-pattern statistics tracer."""

import numpy as np
import pytest

from repro import DILI
from repro.baselines import BinarySearchIndex, BPlusTree
from repro.simulate.access_stats import (
    AccessStatsTracer,
    profile_lookups,
)


class TestTracer:
    def test_counts_node_headers_and_regions(self):
        tracer = AccessStatsTracer()
        tracer.mem(1, 0)      # node header
        tracer.mem(1, 128)    # array entry, same region
        tracer.mem(2, 0)      # second node
        tracer.next_probe()
        profile = tracer.profile()
        assert profile.probes == 1
        assert profile.nodes_per_probe == 2.0
        assert profile.regions_per_probe == 2.0
        assert profile.touches_per_probe == 3.0

    def test_per_probe_separation(self):
        tracer = AccessStatsTracer()
        tracer.mem(1, 0)
        tracer.next_probe()
        tracer.mem(1, 0)
        tracer.mem(2, 0)
        tracer.mem(3, 0)
        tracer.next_probe()
        profile = tracer.profile()
        assert profile.probes == 2
        assert profile.nodes_per_probe == 2.0
        assert profile.max_nodes == 3

    def test_empty_profile(self):
        assert AccessStatsTracer().profile().probes == 0

    def test_compute_and_phase_are_ignored(self):
        tracer = AccessStatsTracer()
        tracer.compute(1000.0)
        tracer.phase("step1")
        tracer.mem(1, 0)
        tracer.next_probe()
        assert tracer.profile().touches_per_probe == 1.0


class TestProfileLookups:
    def test_dili_depth_matches_tree_stats(self):
        rng = np.random.default_rng(1)
        keys = np.unique(rng.integers(0, 10**9, 20_000)).astype(float)
        index = DILI()
        index.bulk_load(keys)
        profile = profile_lookups(index, keys[::97])
        from repro import tree_stats

        st = tree_stats(index)
        # Node touches per lookup ~ key-weighted average height.
        assert profile.nodes_per_probe == pytest.approx(
            st.avg_height, abs=0.5
        )

    def test_bins_touches_many_lines_but_one_region(self):
        keys = np.arange(0, 100_000, 7, dtype=np.float64)
        index = BinarySearchIndex()
        index.bulk_load(keys)
        profile = profile_lookups(index, keys[::501])
        assert profile.regions_per_probe <= 2.0
        assert profile.touches_per_probe > 10  # ~log2(n) probes

    def test_btree_nodes_equal_height(self):
        keys = np.arange(0, 50_000, 3, dtype=np.float64)
        tree = BPlusTree(32)
        tree.bulk_load(keys)
        profile = profile_lookups(tree, keys[::301])
        assert profile.nodes_per_probe == pytest.approx(
            tree.height(), abs=0.1
        )
