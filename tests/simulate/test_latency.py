"""Tests for the cycle-cost constants module."""

import pytest

from repro.simulate.latency import (
    CACHE_LINE_BYTES,
    CyclesPerOp,
    DEFAULT_CYCLES,
)


class TestCyclesPerOp:
    def test_defaults_match_paper_constants(self):
        # Section 7.1: theta_N = theta_C = 130, eta = 25, mu_L = 5,
        # mu_E = 17 cycles; 64-byte cache lines.
        assert DEFAULT_CYCLES.cache_miss == 130.0
        assert DEFAULT_CYCLES.linear_model == 25.0
        assert DEFAULT_CYCLES.linear_search_step == 5.0
        assert DEFAULT_CYCLES.exp_search_step == 17.0
        assert CACHE_LINE_BYTES == 64

    def test_to_nanoseconds(self):
        assert DEFAULT_CYCLES.to_nanoseconds(250.0, ghz=2.5) == 100.0
        assert DEFAULT_CYCLES.to_nanoseconds(0.0) == 0.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CYCLES.cache_miss = 1.0  # type: ignore[misc]

    def test_custom_table(self):
        io = CyclesPerOp(cache_miss=25_000.0)
        assert io.cache_miss == 25_000.0
        assert io.linear_model == DEFAULT_CYCLES.linear_model
