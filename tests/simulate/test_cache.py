"""Tests for the LRU cache-line simulator."""

import pytest

from repro.simulate.cache import CacheSimulator


class TestCacheSimulator:
    def test_first_touch_misses_second_hits(self):
        cache = CacheSimulator(capacity_lines=4)
        assert cache.touch("a") is True
        assert cache.touch("a") is False
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = CacheSimulator(capacity_lines=2)
        cache.touch("a")
        cache.touch("b")
        cache.touch("a")  # refresh a; b is now LRU
        cache.touch("c")  # evicts b
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.contains("c")

    def test_capacity_never_exceeded(self):
        cache = CacheSimulator(capacity_lines=8)
        for i in range(100):
            cache.touch(i)
        assert len(cache) == 8

    def test_clear_resets_everything(self):
        cache = CacheSimulator(capacity_lines=4)
        cache.touch("x")
        cache.touch("x")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.touch("x") is True

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CacheSimulator(capacity_lines=0)

    def test_contains_does_not_touch(self):
        cache = CacheSimulator(capacity_lines=2)
        cache.touch("a")
        cache.touch("b")
        # Peeking at "a" must not refresh it...
        assert cache.contains("a")
        cache.touch("c")  # ...so "a" (the LRU line) is evicted.
        assert not cache.contains("a")
