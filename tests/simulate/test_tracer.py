"""Tests for the cost tracer and cycle model."""

import pytest

from repro.simulate.cache import CacheSimulator
from repro.simulate.latency import CACHE_LINE_BYTES, CyclesPerOp, DEFAULT_CYCLES
from repro.simulate.tracer import NULL_TRACER, CostTracer, region_id


class TestRegionId:
    def test_ids_are_unique(self):
        ids = {region_id() for _ in range(1000)}
        assert len(ids) == 1000


class TestNullTracer:
    def test_all_events_are_noops(self):
        NULL_TRACER.mem(1, 0)
        NULL_TRACER.compute(100.0)
        NULL_TRACER.phase("x")  # must not raise


class TestCostTracer:
    def test_miss_then_hit_charges_differ(self):
        tracer = CostTracer()
        tracer.mem(1, 0)
        first = tracer.total_cycles
        tracer.mem(1, 0)
        second = tracer.total_cycles - first
        assert first == DEFAULT_CYCLES.cache_miss
        assert second == DEFAULT_CYCLES.cache_hit

    def test_same_line_offsets_share_a_line(self):
        tracer = CostTracer()
        tracer.mem(7, 0)
        tracer.mem(7, CACHE_LINE_BYTES - 1)  # same line
        assert tracer.cache_misses == 1
        tracer.mem(7, CACHE_LINE_BYTES)  # next line
        assert tracer.cache_misses == 2

    def test_regions_do_not_collide(self):
        tracer = CostTracer()
        tracer.mem(1, 0)
        tracer.mem(2, 0)
        assert tracer.cache_misses == 2

    def test_compute_accumulates(self):
        tracer = CostTracer()
        tracer.compute(10.0)
        tracer.compute(5.0)
        assert tracer.total_cycles == 15.0

    def test_phase_accounting(self):
        tracer = CostTracer()
        tracer.phase("step1")
        tracer.compute(10.0)
        tracer.phase("step2")
        tracer.compute(20.0)
        tracer.compute(5.0)
        assert tracer.phase_cycles == {"step1": 10.0, "step2": 25.0}

    def test_reset_keeps_cache_contents(self):
        tracer = CostTracer()
        tracer.mem(3, 0)
        tracer.reset_counters()
        assert tracer.total_cycles == 0.0
        tracer.mem(3, 0)  # still resident -> hit
        assert tracer.total_cycles == DEFAULT_CYCLES.cache_hit

    def test_custom_cycle_table(self):
        cycles = CyclesPerOp(cache_miss=1000.0, cache_hit=1.0)
        tracer = CostTracer(cycles=cycles)
        tracer.mem(1, 0)
        assert tracer.total_cycles == 1000.0

    def test_nanoseconds_conversion(self):
        tracer = CostTracer()
        tracer.compute(250.0)
        assert tracer.nanoseconds(ghz=2.5) == pytest.approx(100.0)

    def test_shared_cache_between_tracers(self):
        cache = CacheSimulator()
        a = CostTracer(cache=cache)
        b = CostTracer(cache=cache)
        a.mem(9, 0)
        b.mem(9, 0)  # warmed by tracer a
        assert b.total_cycles == DEFAULT_CYCLES.cache_hit
