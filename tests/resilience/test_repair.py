"""Repair engine: quarantine, degraded serving, online repair, re-verify."""

import numpy as np
import pytest

from repro.check.errors import InvariantError
from repro.resilience import (
    FaultRegistry,
    Health,
    PairTable,
    ResilientDILI,
    TREE_FAULT_KINDS,
)


def _model(loaded):
    """Ground-truth dict mirroring the fixture's bulk load."""
    return dict(loaded.auth.items())


class TestDetectAndRepairPerKind:
    @pytest.mark.parametrize("kind", TREE_FAULT_KINDS)
    def test_full_cycle(self, loaded, rng, kind):
        model = _model(loaded)
        fault = FaultRegistry().inject(kind, loaded.index, rng)
        assert fault is not None

        assert loaded.detect() >= 1
        assert loaded.health is Health.DEGRADED
        assert loaded.stats()["open_tickets"] >= 1

        # Degraded reads: the representative damaged key answers from
        # authority; a batch mixing quarantined and clean keys is
        # entirely correct.
        if fault.key is not None:
            assert loaded.get(fault.key) == model[fault.key]
        probe = loaded.auth.keys[::211]
        assert loaded.get_batch(probe) == [model[k] for k in probe.tolist()]

        loaded.repair_all()
        assert loaded.health is Health.HEALTHY
        loaded.verify()
        stats = loaded.stats()
        assert stats["open_tickets"] == 0
        assert stats["full_rebuilds"] == 0
        assert sum(stats["repairs"].values()) >= 1

    def test_scan_on_clean_index_finds_nothing(self, loaded):
        assert loaded.detect() == 0
        assert loaded.health is Health.HEALTHY
        assert loaded.stats()["scans"] == 1


class TestQuarantinedWrites:
    def test_update_buffers_to_authority_and_survives_repair(
        self, loaded, rng
    ):
        fault = FaultRegistry().inject("slot_clobber", loaded.index, rng)
        assert loaded.detect() >= 1
        assert loaded.engine.is_quarantined(fault.key)

        assert loaded.update(fault.key, "patched")
        (ticket,) = [
            t for t in loaded.engine.tickets if t.buffered
        ]
        assert ("update", fault.key) in ticket.buffered
        assert loaded.get(fault.key) == "patched"  # served from authority

        loaded.repair_all()
        assert loaded.health is Health.HEALTHY
        assert loaded.get(fault.key) == "patched"  # absorbed by the rebuild
        loaded.verify()

    def test_insert_and_delete_inside_quarantine(self, loaded, rng):
        fault = FaultRegistry().inject("leaf_model", loaded.index, rng)
        assert loaded.detect() >= 1
        leaf = fault.node
        fresh = leaf.lb + (fault.key - leaf.lb) / 2.0
        if not loaded.engine.is_quarantined(fresh):
            fresh = fault.key + (leaf.ub - fault.key) / 2.0
        assert loaded.engine.is_quarantined(fresh)

        before = len(loaded)
        assert loaded.insert(fresh, "buffered")
        assert not loaded.insert(fresh, "dup")
        assert loaded.get(fresh) == "buffered"
        assert loaded.delete(fault.key)
        assert loaded.get(fault.key) is None
        assert len(loaded) == before  # +1 insert, -1 delete

        loaded.repair_all()
        assert loaded.health is Health.HEALTHY
        assert loaded.get(fresh) == "buffered"
        assert loaded.get(fault.key) is None
        loaded.verify()

    def test_writes_outside_quarantine_go_through_the_index(
        self, loaded, rng
    ):
        # Poison one leaf's model: everything under the other top-level
        # leaves stays outside the quarantine.
        FaultRegistry().inject("leaf_model", loaded.index, rng)
        assert loaded.detect() >= 1
        keys = loaded.auth.keys
        outside = [
            float(k) for k in keys[::97] if not loaded.engine.is_quarantined(k)
        ]
        assert outside
        assert loaded.update(outside[0], "direct")
        assert loaded.index.get(outside[0]) == "direct"  # tree, not buffer
        loaded.repair_all()
        loaded.verify()


class TestEngineMechanics:
    def test_sanitizer_suspended_while_degraded_and_restored(
        self, loaded, rng
    ):
        sentinel = object()
        loaded.index.sanitizer = sentinel
        FaultRegistry().inject("slot_clobber", loaded.index, rng)
        assert loaded.detect() >= 1
        assert loaded.index.sanitizer is None  # known-damaged: checks off
        loaded.repair_all()
        assert loaded.health is Health.HEALTHY
        assert loaded.index.sanitizer is sentinel

    def test_repair_step_is_bounded_and_reentrant(self, loaded, rng):
        registry = FaultRegistry()
        registry.inject("slot_clobber", loaded.index, rng)
        assert loaded.detect() >= 1
        assert loaded.repair_step() is True   # repaired the only ticket
        assert loaded.repair_step() is False  # nothing left
        assert loaded.health is Health.HEALTHY
        loaded.verify()

    def test_detect_is_idempotent_on_open_tickets(self, loaded, rng):
        FaultRegistry().inject("leaf_model", loaded.index, rng)
        assert loaded.detect() >= 1
        open_tickets = len(loaded.engine.tickets)
        assert loaded.detect() == 0  # same damage, no duplicate tickets
        assert len(loaded.engine.tickets) == open_tickets
        loaded.repair_all()
        loaded.verify()

    def test_repair_all_respects_max_steps(self, loaded, rng):
        registry = FaultRegistry()
        for kind in ("slot_clobber", "leaf_model"):
            registry.inject(kind, loaded.index, rng)
        assert loaded.detect() >= 1
        with pytest.raises(InvariantError, match="did not converge"):
            loaded.repair_all(max_steps=0)
        loaded.repair_all()
        loaded.verify()


class TestVerify:
    def test_verify_catches_index_authority_divergence(self, loaded):
        loaded.verify()
        loaded.auth.apply_insert(-1.0, "ghost")  # authority-only pair
        with pytest.raises(InvariantError):
            loaded.verify()


class TestPairTable:
    def test_bulk_set_validates(self):
        table = PairTable()
        with pytest.raises(ValueError):
            table.bulk_set(np.array([2.0, 1.0]), ["a", "b"])  # unsorted
        with pytest.raises(ValueError):
            table.bulk_set(np.array([1.0, 2.0]), ["a"])  # length mismatch

    def test_point_operations(self):
        table = PairTable()
        table.bulk_set(np.array([1.0, 3.0]), ["a", "c"])
        assert table.get(1.0) == "a" and table.get(2.0) is None
        assert 3.0 in table and 2.0 not in table
        assert table.apply_insert(2.0, "b")
        assert not table.apply_insert(2.0, "dup")
        assert table.apply_update(2.0, "B")
        assert not table.apply_update(9.0, "absent")
        assert table.apply_delete(1.0)
        assert not table.apply_delete(1.0)
        assert table.items() == [(2.0, "B"), (3.0, "c")]
        assert len(table) == 2
