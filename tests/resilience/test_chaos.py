"""Chaos harness: the full resilience contract at test scale."""

from repro.resilience import TREE_FAULT_KINDS, run_chaos, run_lock_chaos


class TestRunChaos:
    def test_contract_holds_at_small_scale(self):
        report = run_chaos(
            num_keys=3_000,
            rounds=24,
            batch=64,
            injections=5,
            seed=3,
            with_locks=False,
        )
        assert report.ok, vars(report)
        assert report.reads > 0
        assert len(report.injected) >= len(TREE_FAULT_KINDS)
        assert report.kinds_injected <= set(TREE_FAULT_KINDS)
        assert report.repair_steps >= len(report.injected)
        assert report.final_health == "healthy"

    def test_deterministic_per_seed(self):
        kwargs = dict(
            num_keys=2_000,
            rounds=12,
            batch=32,
            injections=3,
            seed=9,
            with_locks=False,
        )
        a, b = run_chaos(**kwargs), run_chaos(**kwargs)
        assert a.injected == b.injected
        assert (a.reads, a.writes, a.repair_steps) == (
            b.reads,
            b.writes,
            b.repair_steps,
        )


class TestRunLockChaos:
    def test_lock_stats_surface_all_three_counters(self):
        stats = run_lock_chaos(
            seed=1, num_keys=1_000, threads=3, ops_per_thread=60
        )
        assert stats["escalations"] >= 1  # the empty-tree break path
        assert stats["acquisitions"] > 0
        assert stats["stalls"] > 0  # the stalled stripe was exercised
        assert stats["retries"] >= 0
