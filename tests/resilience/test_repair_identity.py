"""Property: a repaired tree is bit-identical to a fresh bulk load.

The repair engine rebuilds quarantined leaves with the exact bulk-load
construction path, so for *any* injected corruption it fixes, the
repaired index must be structurally indistinguishable -- models, slot
layout, bookkeeping, and therefore simulated lookup cost -- from a
``bulk_load`` of the surviving pairs into a fresh index.  (Updates may
land mid-quarantine: they change values, not structure, and reach both
trees through the authoritative table.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DILI
from repro.data import load_dataset
from repro.resilience import (
    FaultRegistry,
    Health,
    ResilientDILI,
    TREE_FAULT_KINDS,
    diff_trees,
    simulated_cost,
    trees_identical,
)

KEYS = load_dataset("logn", 2_000, seed=0)


def _fresh_copy(resilient):
    """A brand-new DILI bulk-loaded from the authoritative pairs."""
    fresh = DILI()
    fresh.bulk_load(resilient.auth.keys.copy(), list(resilient.auth.values))
    return fresh


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(TREE_FAULT_KINDS),
    seed=st.integers(min_value=0, max_value=2**16),
    update_stride=st.sampled_from([0, 173, 311]),
)
def test_repair_restores_bulk_load_identity(kind, seed, update_stride):
    rng = np.random.default_rng(seed)
    index = ResilientDILI()
    index.bulk_load(KEYS, list(range(len(KEYS))))
    index.get_batch(KEYS[:64])  # warm the flat plan

    fault = FaultRegistry().inject(kind, index.index, rng)
    assert fault is not None, "injector declined on a standard tree"
    assert index.detect() >= 1

    if update_stride:
        for k in KEYS[::update_stride].tolist():
            assert index.update(k, f"u{k}")

    index.repair_all()
    assert index.health is Health.HEALTHY
    assert index.stats()["full_rebuilds"] == 0
    index.verify()

    fresh = _fresh_copy(index)
    assert trees_identical(index.index, fresh), diff_trees(
        index.index, fresh
    )
    probe = KEYS[::97]
    assert simulated_cost(index.index, probe) == simulated_cost(fresh, probe)


def test_identity_also_holds_for_dense_repair():
    """The DILI-LO leg: a repaired dense leaf equals its fresh rebuild."""
    from repro import DiliConfig
    from repro.resilience.faults import FAULT_DENSE_FLIP

    rng = np.random.default_rng(5)
    index = ResilientDILI(DiliConfig(local_optimization=False))
    index.bulk_load(KEYS, list(range(len(KEYS))))
    fault = FaultRegistry().inject(FAULT_DENSE_FLIP, index.index, rng)
    assert fault is not None
    assert index.detect() >= 1
    index.repair_all()
    assert index.health is Health.HEALTHY

    fresh = DILI(DiliConfig(local_optimization=False))
    fresh.bulk_load(index.auth.keys.copy(), list(index.auth.values))
    assert trees_identical(index.index, fresh), diff_trees(
        index.index, fresh
    )
