"""Fault registry: every injector is detectable or a clean no-op."""

import numpy as np
import pytest

from repro import DiliConfig
from repro.core.nodes import DenseLeafNode
from repro.data import load_dataset
from repro.durability.faultpoints import FaultInjector
from repro.resilience import (
    FaultRegistry,
    FaultSchedule,
    ResilientDILI,
    StallingLock,
    TREE_FAULT_KINDS,
)
from repro.resilience.faults import (
    FAULT_DENSE_FLIP,
    _top_nodes,
    stall_stripe,
    unstall_stripe,
)


class TestInjectors:
    @pytest.mark.parametrize("kind", TREE_FAULT_KINDS)
    def test_injection_is_detected_by_a_scan(self, loaded, rng, kind):
        registry = FaultRegistry()
        fault = registry.inject(kind, loaded.index, rng)
        assert fault is not None and fault.kind == kind
        assert registry.reports == [fault]
        assert loaded.detect() >= 1

    def test_dense_flip_on_pair_tree_is_a_clean_noop(self, loaded, rng):
        registry = FaultRegistry()
        assert registry.inject(FAULT_DENSE_FLIP, loaded.index, rng) is None
        assert registry.reports == []
        assert loaded.detect() == 0  # guaranteed-unmodified contract

    def test_dense_flip_on_dili_lo_tree(self, rng):
        keys = load_dataset("logn", 4_000, seed=0)
        index = ResilientDILI(DiliConfig(local_optimization=False))
        index.bulk_load(keys)
        assert any(
            type(n) is DenseLeafNode for n in _top_nodes(index.index.root)
        )
        fault = FaultRegistry().inject(FAULT_DENSE_FLIP, index.index, rng)
        assert fault is not None and fault.kind == FAULT_DENSE_FLIP
        assert index.detect() >= 1

    def test_unknown_kind_raises(self, loaded, rng):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRegistry().inject("bitsquatting", loaded.index, rng)

    def test_inject_any_picks_an_applicable_kind(self, loaded, rng):
        fault = FaultRegistry().inject_any(loaded.index, rng)
        assert fault is not None
        assert fault.kind in TREE_FAULT_KINDS


class TestDurabilityHandles:
    def test_memoized_by_name(self):
        registry = FaultRegistry()
        a = registry.durability()
        assert isinstance(a, FaultInjector)
        assert registry.durability() is a
        assert registry.durability("other") is not a
        assert registry.durability("other") is registry.durability("other")


class TestFaultSchedule:
    def test_deterministic_per_seed(self):
        kwargs = dict(rounds=50, injections=9, seed=11)
        assert (
            FaultSchedule.random(**kwargs).events
            == FaultSchedule.random(**kwargs).events
        )
        assert (
            FaultSchedule.random(rounds=50, injections=9, seed=12).events
            != FaultSchedule.random(**kwargs).events
        )

    def test_covers_every_kind_and_orders_rounds(self):
        schedule = FaultSchedule.random(rounds=40, injections=8, seed=3)
        assert schedule.kinds_used() == set(TREE_FAULT_KINDS)
        rounds = [when for when, _ in schedule.events]
        assert rounds == sorted(rounds)
        assert len(set(rounds)) == len(rounds)  # distinct rounds

    def test_rejects_more_injections_than_rounds(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(rounds=3, injections=4)


class TestStallingLock:
    def test_wraps_counts_and_restores(self):
        from repro import ConcurrentDILI

        cc = ConcurrentDILI(stripes=4)
        cc.bulk_load(np.arange(0.0, 100.0))
        original = cc._locks[0]
        wrapper = stall_stripe(cc, 0, stall_s=0.0)
        assert isinstance(wrapper, StallingLock)
        assert wrapper.inner is original
        with wrapper:
            pass
        assert wrapper.stalls == 1
        # The wrapper sits in the stripe table, so exclusive() (which
        # acquires every stripe) goes through it.
        with cc.exclusive():
            pass
        assert wrapper.stalls == 2
        unstall_stripe(cc, 0, wrapper)
        assert cc._locks[0] is original
        unstall_stripe(cc, 0, wrapper)  # idempotent
        assert cc._locks[0] is original
