"""Health state machine: legal cycle, illegal shortcuts, audit trail."""

import pytest

from repro.check.errors import InvariantError
from repro.resilience import Health, HealthMonitor


class TestTransitions:
    def test_starts_healthy(self):
        monitor = HealthMonitor()
        assert monitor.state is Health.HEALTHY
        assert monitor.healthy
        assert monitor.history == []

    def test_full_legal_cycle(self):
        monitor = HealthMonitor()
        monitor.to(Health.DEGRADED)
        monitor.to(Health.REPAIRING)
        monitor.to(Health.DEGRADED)   # re-verification failed
        monitor.to(Health.REPAIRING)
        monitor.to(Health.HEALTHY)
        assert monitor.healthy
        assert monitor.history == [
            (Health.HEALTHY, Health.DEGRADED),
            (Health.DEGRADED, Health.REPAIRING),
            (Health.REPAIRING, Health.DEGRADED),
            (Health.DEGRADED, Health.REPAIRING),
            (Health.REPAIRING, Health.HEALTHY),
        ]

    def test_same_state_is_a_noop(self):
        monitor = HealthMonitor()
        monitor.to(Health.HEALTHY)
        monitor.to(Health.DEGRADED)
        monitor.to(Health.DEGRADED)  # idempotent re-report
        assert monitor.state is Health.DEGRADED
        assert len(monitor.history) == 1

    @pytest.mark.parametrize(
        "path, bad",
        [
            ([], Health.REPAIRING),                  # repair without a scan
            ([Health.DEGRADED], Health.HEALTHY),     # heal without repair
            (
                [Health.DEGRADED, Health.REPAIRING, Health.HEALTHY],
                Health.REPAIRING,                    # repair while clean
            ),
        ],
    )
    def test_illegal_transitions_raise(self, path, bad):
        monitor = HealthMonitor()
        for state in path:
            monitor.to(state)
        before = monitor.state
        with pytest.raises(InvariantError):
            monitor.to(bad)
        assert monitor.state is before  # failed transition commits nothing
