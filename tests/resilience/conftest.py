"""Shared fixtures for the resilience suite."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.resilience import ResilientDILI


@pytest.fixture
def keys():
    """A small, memoized key set (read-only -- copy before mutating)."""
    return load_dataset("logn", 4_000, seed=0)


@pytest.fixture
def loaded(keys):
    """A ResilientDILI over ``keys`` with a warm flat plan."""
    index = ResilientDILI()
    index.bulk_load(keys, list(range(len(keys))))
    index.get_batch(keys[:64])  # compile the plan
    return index


@pytest.fixture
def rng():
    return np.random.default_rng(42)
