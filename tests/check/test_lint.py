"""The CHK lint rules: each must fire on a seeded violation, stay quiet
on the sanctioned pattern, honor pragmas -- and the repo must be clean."""

from pathlib import Path

from repro.check.lint import RULES, lint_paths, lint_source

REPO = Path(__file__).resolve().parents[2]

# Path contexts: CORE enables every src rule incl. CHK004; PLAIN is src/
# but outside core/; TESTS is exempt from CHK002/CHK003.
CORE = "src/repro/core/example.py"
PLAIN = "src/repro/workloads/example.py"
TESTS = "tests/core/test_example.py"


def rules(source, path=PLAIN):
    return [f.rule for f in lint_source(source, path)]


class TestChk001FlatPlanMutation:
    def test_unsanctioned_method_store(self):
        src = (
            "class FlatPlan:\n"
            "    def rebalance(self):\n"
            "        self.slot_ref = []\n"
        )
        assert rules(src, CORE) == ["CHK001"]

    def test_patch_method_is_sanctioned(self):
        src = (
            "class FlatPlan:\n"
            "    def patch_insert(self):\n"
            "        self.slot_ref = []\n"
            "    def recompile_subtree(self):\n"
            "        self.pair_keys = []\n"
        )
        assert rules(src, CORE) == []

    def test_alias_subscript_store(self):
        src = (
            "def corrupt(index):\n"
            "    plan = compile_plan(index)\n"
            "    plan.pair_keys[0] = 1.0\n"
        )
        assert rules(src) == ["CHK001"]

    def test_flat_attribute_mutating_call(self):
        src = "def corrupt(index):\n    index._flat.values.append(None)\n"
        assert rules(src) == ["CHK001"]

    def test_plain_local_list_is_not_a_plan(self):
        src = (
            "def build():\n"
            "    values = []\n"
            "    values.append(1)\n"
            "    values[0] = 2\n"
        )
        assert rules(src) == []


class TestChk002BareAssert:
    SRC = "def f(x):\n    assert x > 0\n"

    def test_flagged_in_src(self):
        assert rules(self.SRC) == ["CHK002"]

    def test_exempt_in_tests_and_benchmarks(self):
        assert rules(self.SRC, TESTS) == []
        assert rules(self.SRC, "benchmarks/bench_example.py") == []

    def test_pragma_waives(self):
        src = (
            "def f(x):\n"
            "    assert x > 0  # repro-check: allow CHK002 -- narrowing\n"
        )
        assert rules(src) == []

    def test_pragma_for_other_rule_does_not_waive(self):
        src = (
            "def f(x):\n"
            "    assert x > 0  # repro-check: allow CHK004 -- wrong rule\n"
        )
        assert rules(src) == ["CHK002"]

    def test_pragma_anywhere_on_multiline_statement(self):
        src = (
            "def f(x):\n"
            "    assert (\n"
            "        x > 0  # repro-check: allow CHK002 -- narrowing\n"
            "    )\n"
        )
        assert rules(src) == []


class TestChk003CostLiterals:
    def test_compute_with_cycle_literal(self):
        assert rules("tracer.compute(17.0)") == ["CHK003"]

    def test_literal_inside_expression(self):
        assert rules("tracer.compute(130.0 / 8.0)") == ["CHK003"]

    def test_non_calibration_float_ok(self):
        assert rules("tracer.compute(3.0)") == []

    def test_integer_literals_are_not_cost_charges(self):
        assert rules("tracer.compute(2 * step)") == []

    def test_cycles_per_op_retyping(self):
        assert rules("c = CyclesPerOp(cache_miss=130.0)") == ["CHK003"]

    def test_mu_e_keyword(self):
        assert rules("model_cost(n, mu_e=17.0)") == ["CHK003"]

    def test_exempt_in_tests_and_latency(self):
        assert rules("tracer.compute(17.0)", TESTS) == []
        assert rules(
            "tracer.compute(17.0)", "src/repro/simulate/latency.py"
        ) == []


class TestChk004FloatEquality:
    def test_flagged_in_core(self):
        assert rules("ok = x == 2.5", CORE) == ["CHK004"]
        assert rules("ok = 0.1 != y", CORE) == ["CHK004"]

    def test_zero_guard_allowed(self):
        assert rules("ok = span == 0.0", CORE) == []

    def test_only_core_is_checked(self):
        assert rules("ok = x == 2.5", PLAIN) == []

    def test_ordering_comparisons_allowed(self):
        assert rules("ok = x >= 2.5", CORE) == []


class TestChk005TracerDiscipline:
    def test_none_default_flagged(self):
        assert rules("def get(key, tracer=None):\n    pass\n") == ["CHK005"]

    def test_null_tracer_default_ok(self):
        assert rules("def get(key, tracer=NULL_TRACER):\n    pass\n") == []
        assert rules(
            "def get(key, *, tracer=tracer_mod.NULL_TRACER):\n    pass\n"
        ) == []

    def test_instantiation_outside_tracer_module(self):
        assert rules("t = NullTracer()") == ["CHK005"]
        assert rules("t = Tracer()") == ["CHK005"]

    def test_tracer_module_is_exempt(self):
        assert rules(
            "NULL_TRACER = NullTracer()", "src/repro/simulate/tracer.py"
        ) == []


class TestChk006FaultInjectorCtor:
    def test_flagged_in_plain_source(self):
        assert rules("inj = FaultInjector()") == ["CHK006"]

    def test_tests_are_exempt(self):
        assert rules("inj = FaultInjector()", TESTS) == []

    def test_faultpoints_module_is_exempt(self):
        assert rules(
            "NULL_FAULTS = FaultInjector()",
            "src/repro/durability/faultpoints.py",
        ) == []

    def test_fault_registry_module_is_exempt(self):
        assert rules(
            "injector = FaultInjector()",
            "src/repro/resilience/faults.py",
        ) == []

    def test_pragma_waives(self):
        assert rules(
            "inj = FaultInjector()"
            "  # repro-check: allow CHK006 -- bespoke crash rig\n"
        ) == []


class TestChk007UntrustedBytes:
    def test_pickle_load_and_loads_flagged(self):
        src = (
            "def bad(fh, blob):\n"
            "    a = pickle.load(fh)\n"
            "    b = pickle.loads(blob)\n"
        )
        assert rules(src) == ["CHK007", "CHK007"]

    def test_memmap_and_raw_mmap_flagged(self):
        src = (
            "def bad(path, fh):\n"
            "    a = np.memmap(path, dtype='f8')\n"
            "    b = numpy.memmap(path, dtype='f8')\n"
            "    c = mmap.mmap(fh.fileno(), 0)\n"
        )
        assert rules(src) == ["CHK007", "CHK007", "CHK007"]

    def test_aliased_from_import_flagged(self):
        src = (
            "from pickle import loads as unfreeze\n"
            "def bad(blob):\n"
            "    return unfreeze(blob)\n"
        )
        assert rules(src) == ["CHK007"]

    def test_json_loads_is_not_flagged(self):
        src = (
            "from json import loads\n"
            "def fine(text):\n"
            "    return json.loads(text) or loads(text)\n"
        )
        assert rules(src) == []

    def test_durability_and_planstore_are_exempt(self):
        src = "def load(fh):\n    return pickle.load(fh)\n"
        assert rules(src, "src/repro/durability/snapshot.py") == []
        assert rules(src, "src/repro/planstore/store.py") == []

    def test_tests_are_exempt(self):
        assert rules("x = pickle.loads(blob)", TESTS) == []

    def test_pragma_waives(self):
        assert rules(
            "x = pickle.loads(blob)"
            "  # repro-check: allow CHK007 -- payload CRC-checked above\n"
        ) == []


class TestChk008InPlacePlanMutators:
    def test_patch_call_outside_flat_flagged(self):
        src = (
            "def hotfix(plan, key, value):\n"
            "    plan.patch_value(key, value)\n"
        )
        assert rules(src, CORE) == ["CHK008"]
        assert rules(src, PLAIN) == ["CHK008"]

    def test_every_mutator_name_flagged(self):
        src = (
            "def churn(plan):\n"
            "    plan.patch_insert_many([])\n"
            "    plan.patch_delete_many([])\n"
            "    plan.recompile_subtrees([])\n"
        )
        assert rules(src, CORE) == ["CHK008", "CHK008", "CHK008"]

    def test_cow_constructors_are_sanctioned(self):
        src = (
            "def maintain(plan, pairs, keys):\n"
            "    a = plan.applied_values(pairs)\n"
            "    b = plan.applied_insert_many(pairs)\n"
            "    c = plan.applied_delete_many(keys)\n"
            "    d = plan.applied_recompile_subtrees([])\n"
        )
        assert rules(src, CORE) == []

    def test_flat_module_is_exempt(self):
        # The COW constructors themselves delegate to the in-place
        # tiers on their private clone; only flat.py may do that.
        src = "def applied(clone, key, v):\n    clone.patch_value(key, v)\n"
        assert rules(src, "src/repro/core/flat.py") == []

    def test_tests_and_benchmarks_are_exempt(self):
        src = "def probe(plan):\n    plan.patch_value(1.0, None)\n"
        assert rules(src, TESTS) == []
        assert rules(src, "benchmarks/bench_example.py") == []

    def test_pragma_waives(self):
        assert rules(
            "plan.patch_value(k, v)"
            "  # repro-check: allow CHK008 -- plan is a private clone\n",
            CORE,
        ) == []


class TestChk009DirectDiliConstruction:
    SRC = "def build(keys):\n    index = DILI()\n    return index\n"

    def test_flagged_in_unsanctioned_src(self):
        assert rules(self.SRC, "src/repro/sharding/coordinator.py") == [
            "CHK009"
        ]
        assert rules(self.SRC, PLAIN) == ["CHK009"]

    def test_factories_are_sanctioned(self):
        assert rules(self.SRC, "src/repro/sharding/worker.py") == []
        assert rules(self.SRC, "src/repro/sharding/partition.py") == []
        assert rules(self.SRC, "src/repro/durability/recovery.py") == []
        assert rules(self.SRC, "src/repro/bench/harness.py") == []

    def test_core_is_exempt(self):
        # core/ IS the index implementation; the rule fences the rest
        # of the tree off from raw construction, not the type itself.
        assert "CHK009" not in rules(self.SRC, CORE)

    def test_tests_and_benchmarks_are_exempt(self):
        assert rules(self.SRC, TESTS) == []
        assert rules(self.SRC, "benchmarks/bench_example.py") == []

    def test_other_calls_not_flagged(self):
        src = (
            "def open_index(path):\n"
            "    a = DurableDILI(path)\n"
            "    b = MmapDILI(path)\n"
            "    c = ConcurrentDILI()\n"
        )
        assert rules(src, PLAIN) == []

    def test_pragma_waives(self):
        src = (
            "def build():\n"
            "    index = DILI()"
            "  # repro-check: allow CHK009 -- throwaway probe\n"
        )
        assert rules(src, PLAIN) == []


class TestEngine:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", PLAIN)
        assert [f.rule for f in findings] == ["PARSE"]

    def test_finding_format(self):
        (finding,) = lint_source("assert x\n", PLAIN)
        text = finding.format()
        assert text.startswith(f"{PLAIN}:1:")
        assert "CHK002" in text

    def test_every_rule_has_a_description(self):
        assert sorted(RULES) == [
            "CHK001", "CHK002", "CHK003", "CHK004", "CHK005", "CHK006",
            "CHK007", "CHK008", "CHK009",
        ]
        assert all(RULES.values())


class TestRepositoryIsClean:
    def test_src_and_benchmarks_lint_clean(self):
        findings = lint_paths([REPO / "src", REPO / "benchmarks"])
        assert findings == [], "\n".join(f.format() for f in findings)


class TestPragmaMultiLineStatements:
    """A pragma waives when it sits on *any* line of the offending
    statement -- decorated signatures, parenthesized multi-line calls,
    and multi-line ``with`` headers included."""

    def test_decorated_def_pragma_on_decorator_line(self):
        src = (
            "@probe  # repro-check: allow CHK005 -- bench shim\n"
            "def traced(\n"
            "    tracer=None,\n"
            "):\n"
            "    pass\n"
        )
        assert rules(src) == []

    def test_decorated_def_pragma_inside_body_does_not_waive(self):
        src = (
            "@probe\n"
            "def traced(tracer=None):\n"
            "    pass  # repro-check: allow CHK005 -- too late\n"
        )
        assert rules(src) == ["CHK005"]

    def test_multiline_call_pragma_on_closing_paren(self):
        src = (
            "injector = FaultInjector(\n"
            "    'probe',\n"
            ")  # repro-check: allow CHK006 -- seeded\n"
        )
        assert rules(src) == []

    def test_multiline_call_pragma_on_first_line(self):
        src = (
            "injector = FaultInjector(  # repro-check: allow CHK006 -- seeded\n"
            "    'probe',\n"
            ")\n"
        )
        assert rules(src) == []

    def test_multiline_with_statement_pragma(self):
        src = (
            "import numpy as np\n"
            "with np.memmap(\n"
            "    'plan.bin',\n"
            "    mode='r',\n"
            ") as buf:  # repro-check: allow CHK007 -- fixture\n"
            "    pass\n"
        )
        assert rules(src) == []

    def test_unrelated_rule_pragma_on_multiline_call_does_not_waive(self):
        src = (
            "injector = FaultInjector(\n"
            "    'probe',\n"
            ")  # repro-check: allow CHK007 -- wrong rule\n"
        )
        assert rules(src) == ["CHK006"]


class TestSingleParsePerInvocation:
    """One ``repro check`` invocation parses each file exactly once;
    the pattern rules and the dataflow rules share the trees."""

    def test_parse_count_equals_file_count(self, tmp_path, monkeypatch):
        import ast as ast_module

        import repro.check.parsing  # noqa: F401 -- the patched seam
        from repro.check.dataflow import analyze_parsed
        from repro.check.lint import lint_parsed
        from repro.check.parsing import parse_paths

        (tmp_path / "a.py").write_text("def f():\n    return 1\n")
        (tmp_path / "b.py").write_text(
            "class C:\n    def m(self):\n        return 2\n"
        )
        calls = []
        real_parse = ast_module.parse

        def spying_parse(*args, **kwargs):
            calls.append(args[0][:20])
            return real_parse(*args, **kwargs)

        monkeypatch.setattr(ast_module, "parse", spying_parse)
        parsed = parse_paths([tmp_path])
        assert len(calls) == 2
        lint_parsed(parsed)
        analyze_parsed(parsed)
        lint_parsed(parsed, include_waived=True)
        analyze_parsed(parsed, include_waived=True)
        assert len(calls) == 2, "a pass re-parsed instead of sharing trees"
