"""WalAuditor: a healthy durability directory audits clean; every
damage category (torn tail, CRC, LSN gap, foreign file) is classified
with the right recoverability."""

import os

import numpy as np
import pytest

from repro.check import AuditReport, WalAuditor, audit_directory
from repro.durability import DurableDILI
from repro.durability.recovery import SNAPSHOT_NAME, WAL_NAME
from repro.durability.snapshot import HEADER_SIZE
from repro.durability.wal import OP_INSERT, WAL_MAGIC, encode_record


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.uniform(0, 1e9, n))


def _make_dir(tmp_path, tail=20):
    """Snapshot + a WAL tail of ``tail`` fresh inserts."""
    index = DurableDILI(tmp_path, sync=False)
    index.bulk_load(_keys(300))
    index.snapshot()
    for i in range(tail):
        index.insert(2e9 + i, f"tail{i}")
    index.close()
    return tmp_path


def kinds(report):
    return sorted(f.kind for f in report.findings)


class TestCleanDirectories:
    def test_snapshot_plus_tail(self, tmp_path):
        report = audit_directory(_make_dir(tmp_path))
        assert report.clean and not report.damaged
        assert report.wal_records == 20
        assert report.snapshot_seqno is not None
        assert report.wal_valid_bytes > len(WAL_MAGIC)

    def test_empty_directory(self, tmp_path):
        report = WalAuditor(tmp_path).audit()
        assert report.clean
        assert report.snapshot_seqno is None
        assert report.wal_records == 0


class TestWalDamage:
    def test_torn_tail_is_recoverable(self, tmp_path):
        _make_dir(tmp_path)
        wal = tmp_path / WAL_NAME
        wal.write_bytes(wal.read_bytes()[:-5])
        report = audit_directory(tmp_path)
        assert kinds(report) == ["wal-torn-tail"]
        assert not report.damaged
        assert report.wal_records == 19

    def test_mid_log_crc_flip_is_damage(self, tmp_path):
        _make_dir(tmp_path)
        wal = tmp_path / WAL_NAME
        raw = bytearray(wal.read_bytes())
        # Flip one payload byte of the first record (header is
        # magic + 13 frame bytes).
        raw[len(WAL_MAGIC) + 14] ^= 0xFF
        wal.write_bytes(bytes(raw))
        report = audit_directory(tmp_path)
        assert "wal-damage" in kinds(report)
        assert report.damaged
        assert report.wal_records == 0

    def test_foreign_file(self, tmp_path):
        (tmp_path / WAL_NAME).write_bytes(b"NOTAWAL!" + b"\0" * 32)
        report = audit_directory(tmp_path)
        assert kinds(report) == ["wal-foreign"]
        assert report.damaged

    def test_lsn_gap_after_snapshot(self, tmp_path):
        _make_dir(tmp_path, tail=5)
        snap_seqno = audit_directory(tmp_path).snapshot_seqno
        # Rewrite the WAL so its first surviving record skips ahead of
        # the snapshot's last seqno, losing the records in between.
        gap_start = snap_seqno + 3
        frames = b"".join(
            encode_record(gap_start + i, OP_INSERT, b"payload")
            for i in range(2)
        )
        (tmp_path / WAL_NAME).write_bytes(WAL_MAGIC + frames)
        report = audit_directory(tmp_path)
        assert kinds(report) == ["lsn-gap"]
        assert report.damaged
        assert f"{snap_seqno + 1}..{gap_start - 1}" in \
            report.findings[0].detail

    def test_wal_without_snapshot_must_start_at_one(self, tmp_path):
        frames = encode_record(4, OP_INSERT, b"payload")
        (tmp_path / WAL_NAME).write_bytes(WAL_MAGIC + frames)
        report = audit_directory(tmp_path)
        assert kinds(report) == ["lsn-gap"]


class TestSnapshotDamage:
    def test_payload_crc_flip(self, tmp_path):
        _make_dir(tmp_path)
        snap = tmp_path / SNAPSHOT_NAME
        raw = bytearray(snap.read_bytes())
        raw[HEADER_SIZE + 1] ^= 0xFF
        snap.write_bytes(bytes(raw))
        report = audit_directory(tmp_path)
        assert "snapshot-crc" in kinds(report)
        assert report.damaged

    def test_truncated_payload(self, tmp_path):
        _make_dir(tmp_path)
        snap = tmp_path / SNAPSHOT_NAME
        snap.write_bytes(snap.read_bytes()[:-10])
        report = audit_directory(tmp_path)
        assert "snapshot-length" in kinds(report)
        assert report.damaged

    def test_foreign_snapshot_header(self, tmp_path):
        _make_dir(tmp_path)
        (tmp_path / SNAPSHOT_NAME).write_bytes(b"JUNKJUNKJUNKJUNK" * 4)
        report = audit_directory(tmp_path)
        assert "snapshot-header" in kinds(report)
        assert report.damaged


class TestReportShape:
    def test_format_tags(self, tmp_path):
        _make_dir(tmp_path)
        wal = tmp_path / WAL_NAME
        wal.write_bytes(wal.read_bytes()[:-5])
        report = audit_directory(tmp_path)
        assert isinstance(report, AuditReport)
        (finding,) = report.findings
        assert finding.format().startswith("[recoverable]")
