"""LockSanitizer (satellite: lock-order detector): a clean threaded
workload records nothing; seeded protocol breaches of each kind are
reported; detach restores the original locks and index."""

import threading

import numpy as np
import pytest

from repro.check import LockSanitizer, SanitizerViolation
from repro.core.concurrent import ConcurrentDILI
from repro.core.dili import DILI


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.uniform(0, 1e9, n))


def kinds(san):
    return sorted({v.kind for v in san.violations})


class TestCleanWorkload:
    def test_threaded_mixed_workload_is_clean(self):
        keys = _keys(4000)
        index = ConcurrentDILI(stripes=16)
        san = LockSanitizer(index)
        index.bulk_load(keys)
        errors = []

        def reader(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(200):
                    index.get(float(rng.choice(keys)))
                index.range_query(float(keys[10]), float(keys[50]))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer(seed):
            rng = np.random.default_rng(seed)
            try:
                for i in range(200):
                    key = float(rng.uniform(0, 1e9))
                    if index.insert(key, i):
                        index.update(key, -i)
                        index.delete(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(s,)) for s in range(3)
        ] + [
            threading.Thread(target=writer, args=(100 + s,)) for s in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        san.assert_clean()
        san.detach()

    def test_batch_and_scan_paths_are_clean(self):
        keys = _keys(1000)
        index = ConcurrentDILI(stripes=8)
        san = LockSanitizer(index)
        index.bulk_load(keys)
        index.get_batch(keys[:100])
        index.insert_batch(keys[:50] + 0.5)
        index.delete_batch(keys[:50] + 0.5)
        index.items()
        san.assert_clean()
        san.detach()


class TestSeededViolations:
    def test_order_inversion(self):
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        a, b = index._locks[0], index._locks[1]
        with a:
            with b:  # establishes the order a -> b
                pass
        with b:
            with a:  # closes the cycle: b -> a
                pass
        assert kinds(san) == ["order-inversion"]
        with pytest.raises(SanitizerViolation, match="order-inversion"):
            san.assert_clean()
        san.detach()

    def test_unlocked_point_access(self):
        keys = _keys(500)
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        index.bulk_load(keys)
        # Bypassing ConcurrentDILI.insert: no stripe is held.
        index.index.insert(float(keys[-1]) + 1.0, "rogue")
        assert kinds(san) == ["unlocked-access"]
        san.detach()

    def test_point_access_on_empty_tree_requires_exclusive(self):
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        index.index.get(1.0)
        assert kinds(san) == ["unlocked-access"]
        san.detach()

    def test_non_exclusive_scan(self):
        keys = _keys(500)
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        index.bulk_load(keys)
        with index._global:  # global alone is not exclusive()
            index.index.range_query(float(keys[0]), float(keys[100]))
        assert kinds(san) == ["non-exclusive-scan"]
        san.detach()

    def test_single_stripe_is_not_exclusive_for_batches(self):
        keys = _keys(500)
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        index.bulk_load(keys)
        with index._locks[0]:
            index.index.get_batch(keys[:10])
        assert kinds(san) == ["non-exclusive-scan"]
        san.detach()


class TestEpochPinnedReads:
    def test_lockfree_batch_read_is_clean_and_pinned(self):
        keys = _keys(800)
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        index.bulk_load(keys, list(range(len(keys))))
        before = index.lock_stats["epoch_pins"]
        assert index.get_batch(keys[:32]) == list(range(32))
        assert index.lock_stats["epoch_pins"] > before  # pinned path
        san.assert_clean()
        san.detach()

    def test_unpinned_read_is_reported(self):
        keys = _keys(500)
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        index.bulk_load(keys)
        index.get_batch(keys[:4])  # compile + publish
        # A rogue reader grabs the published plan without pinning an
        # epoch: the guard (the instrumentation point every lock-free
        # read must pass through) flags it.
        index._plan_read_guard(index._published.load())
        assert kinds(san) == ["unpinned-plan-read"]
        with pytest.raises(SanitizerViolation, match="unpinned-plan-read"):
            san.assert_clean()
        san.detach()

    def test_mutable_published_plan_is_reported(self):
        keys = _keys(500)
        index = ConcurrentDILI(stripes=4)
        san = LockSanitizer(index)
        index.bulk_load(keys)
        index.get_batch(keys[:4])  # compile + publish
        # Seeded publisher bug: swap in a plan without freeze().  The
        # regular read path then serves a mutable snapshot and the
        # guard reports it even though the reader pinned correctly.
        index._published._current = index._published.load()._cow_clone()
        index.get_batch(keys[:4])
        assert kinds(san) == ["unpinned-plan-read"]
        san.detach()


class TestLifecycle:
    def test_detach_restores_originals(self):
        index = ConcurrentDILI(stripes=4)
        orig_locks = list(index._locks)
        orig_global = index._global
        orig_index = index._index
        san = LockSanitizer(index)
        assert index._locks[0] is not orig_locks[0]
        index.bulk_load(_keys(100))
        san.detach()
        assert index._locks == orig_locks
        assert index._global is orig_global
        assert index._index is orig_index
        assert isinstance(index._index, DILI)
        # The protocol still works on the restored locks.
        assert index.insert(1.5, "post-detach")
        assert index.get(1.5) == "post-detach"

    def test_assert_clean_on_fresh_sanitizer(self):
        san = LockSanitizer(ConcurrentDILI(stripes=2))
        san.assert_clean()
        san.detach()
