"""The rule catalogue must not drift: the module docstrings, the
``RULES``/``DATAFLOW_RULES`` registries, and ``docs/static_analysis.md``
all list the same rules in the same order."""

import re
from pathlib import Path

import repro.check.dataflow as dataflow_module
import repro.check.lint as lint_module
from repro.check.dataflow import DATAFLOW_RULES
from repro.check.lint import RULES

REPO = Path(__file__).resolve().parents[2]

_BULLET = re.compile(r"^\* \*\*(CHK\d{3})\*\*", re.MULTILINE)
_TABLE_ROW = re.compile(r"^\| `(CHK\d{3})` \|", re.MULTILINE)


class TestRegistries:
    def test_registries_do_not_overlap(self):
        assert not set(RULES) & set(DATAFLOW_RULES)

    def test_numbering_is_contiguous_across_both(self):
        combined = list(RULES) + list(DATAFLOW_RULES)
        assert combined == [f"CHK{i:03d}" for i in range(1, len(combined) + 1)]

    def test_every_rule_has_a_description(self):
        for catalogue in (RULES, DATAFLOW_RULES):
            assert all(catalogue.values())


class TestDocstrings:
    def test_lint_docstring_lists_pattern_rules_in_registry_order(self):
        assert _BULLET.findall(lint_module.__doc__) == list(RULES)

    def test_dataflow_docstring_lists_its_rules_in_registry_order(self):
        assert _BULLET.findall(dataflow_module.__doc__) == list(DATAFLOW_RULES)


class TestDocs:
    def test_static_analysis_doc_tables_match_registry_order(self):
        doc = (REPO / "docs" / "static_analysis.md").read_text()
        assert _TABLE_ROW.findall(doc) == list(RULES) + list(DATAFLOW_RULES)

    def test_static_analysis_doc_mentions_every_rule_description_home(self):
        doc = (REPO / "docs" / "static_analysis.md").read_text()
        for rule in (*RULES, *DATAFLOW_RULES):
            assert rule in doc, f"{rule} missing from docs/static_analysis.md"
