"""The interprocedural rules CHK010-CHK014: each must fire on a seeded
violation, stay quiet on the sanctioned pattern, honor pragmas -- and
the repo's own src/ tree must be dataflow-clean."""

from pathlib import Path

from repro.check.dataflow import (
    DATAFLOW_RULES,
    analyze_paths,
    analyze_sources,
)

REPO = Path(__file__).resolve().parents[2]

# Path contexts: the taint scopes are package-addressed.
CORE = "src/repro/core/example.py"
PLANSTORE = "src/repro/planstore/example.py"
SHARDING = "src/repro/sharding/example.py"


def rules(sources):
    return [f.rule for f in analyze_sources(sources)]


class TestChk010LockDiscipline:
    LOCKED_AND_NOT = (
        "import threading\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._cache = None\n"
        "    def set_locked(self, value):\n"
        "        with self._lock:\n"
        "            self._cache = value\n"
        "    def set_racy(self, value):\n"
        "        self._cache = value\n"
    )

    def test_unlocked_write_to_guarded_attr_fires(self):
        findings = analyze_sources({CORE: self.LOCKED_AND_NOT})
        assert [f.rule for f in findings] == ["CHK010"]
        assert "set_racy" in findings[0].message
        assert "_cache" in findings[0].message
        assert "_lock" in findings[0].message

    def test_init_writes_are_exempt(self):
        src = (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cache = None\n"
            "    def set_locked(self, value):\n"
            "        with self._lock:\n"
            "            self._cache = value\n"
        )
        assert rules({CORE: src}) == []

    def test_helper_called_only_under_lock_is_entry_held(self):
        src = (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cache = None\n"
            "    def set_locked(self, value):\n"
            "        with self._lock:\n"
            "            self._cache = value\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._clear()\n"
            "    def _clear(self):\n"
            "        self._cache = None\n"
        )
        assert rules({CORE: src}) == []

    def test_helper_with_one_unlocked_call_site_fires(self):
        src = (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cache = None\n"
            "    def set_locked(self, value):\n"
            "        with self._lock:\n"
            "            self._cache = value\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._clear()\n"
            "    def reset_racy(self):\n"
            "        self._clear()\n"
            "    def _clear(self):\n"
            "        self._cache = None\n"
        )
        assert rules({CORE: src}) == ["CHK010"]

    def test_contextmanager_confers_its_lock(self):
        src = (
            "import threading\n"
            "from contextlib import contextmanager\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cache = None\n"
            "    @contextmanager\n"
            "    def exclusive(self):\n"
            "        with self._lock:\n"
            "            yield\n"
            "    def set_locked(self, value):\n"
            "        with self._lock:\n"
            "            self._cache = value\n"
            "    def set_via_cm(self, value):\n"
            "        with self.exclusive():\n"
            "            self._cache = value\n"
        )
        assert rules({CORE: src}) == []

    def test_unguarded_attrs_never_fire(self):
        src = (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def bump(self):\n"
            "        self._stats = 1\n"
            "    def bump_again(self):\n"
            "        self._stats = 2\n"
        )
        assert rules({CORE: src}) == []


class TestChk011UntrustedBytes:
    # The taint path crosses two function calls: the source lives in
    # load_raw's body and travels via its return summary, then through
    # the decode pass-through, before hitting the sink in serve.
    CHAIN = (
        "import pickle\n"
        "import numpy as np\n"
        "def load_raw(path):\n"
        "    return np.memmap(path, dtype='u1', mode='r')\n"
        "def decode(buf):\n"
        "    return buf.tobytes()\n"
        "def serve(path):\n"
        "    raw = load_raw(path)\n"
        "    data = decode(raw)\n"
        "    return pickle.loads(data)\n"
    )

    def test_source_to_sink_through_two_calls(self):
        findings = analyze_sources({PLANSTORE: self.CHAIN})
        assert [f.rule for f in findings] == ["CHK011"]
        assert "np.memmap" in findings[0].message
        assert "pickle.loads" in findings[0].message

    def test_verifier_between_source_and_sink_cleans(self):
        src = self.CHAIN.replace(
            "    raw = load_raw(path)\n",
            "    raw = load_raw(path)\n    verify(raw)\n",
        )
        assert rules({PLANSTORE: src}) == []

    def test_argless_method_verifier_blesses_receiver_state(self):
        src = (
            "import numpy as np\n"
            "class Handle:\n"
            "    def __init__(self, path):\n"
            "        self._plan = np.memmap(path, dtype='u1', mode='r')\n"
            "    def _ensure_verified(self):\n"
            "        pass\n"
            "    def get(self, keys):\n"
            "        self._ensure_verified()\n"
            "        plan = self._plan\n"
            "        return plan.lookup_batch(keys)\n"
        )
        assert rules({PLANSTORE: src}) == []

    def test_unblessed_serving_read_fires(self):
        src = (
            "import numpy as np\n"
            "class Handle:\n"
            "    def __init__(self, path):\n"
            "        self._plan = np.memmap(path, dtype='u1', mode='r')\n"
            "    def get(self, keys):\n"
            "        plan = self._plan\n"
            "        return plan.lookup_batch(keys)\n"
        )
        assert rules({PLANSTORE: src}) == ["CHK011"]

    def test_out_of_scope_package_is_ignored(self):
        assert rules({"src/repro/simulate/example.py": self.CHAIN}) == []

    # Seeded at the supervision path: raw pipe receives anywhere else
    # in the sharding package now additionally trip CHK014, and these
    # tests pin the CHK011 taint behavior alone.
    def test_pipe_recv_is_a_source(self):
        src = (
            "def pump(conn, worker):\n"
            "    req_id, method, args = conn.recv()\n"
            "    return worker.dispatch(method, args)\n"
        )
        findings = analyze_sources(
            {"src/repro/sharding/supervision.py": src}
        )
        assert [f.rule for f in findings] == ["CHK011"]
        assert "pipe recv" in findings[0].message

    def test_validated_recv_is_clean(self):
        src = (
            "def pump(conn, worker):\n"
            "    req_id, method, args = _validate_request(conn.recv())\n"
            "    return worker.dispatch(method, args)\n"
        )
        assert rules({"src/repro/sharding/supervision.py": src}) == []


class TestChk012FrozenPlanEscape:
    def test_peeked_plan_mutated_in_place_fires(self):
        src = (
            "def corrupt(index):\n"
            "    plan = index.peek_plan()\n"
            "    plan.patch_insert(1.0, 'v')\n"
        )
        findings = analyze_sources({CORE: src})
        assert [f.rule for f in findings] == ["CHK012"]
        assert "patch_insert" in findings[0].message

    def test_escape_through_a_helper_parameter_fires(self):
        src = (
            "def mutate(p):\n"
            "    p.patch_delete(1.0)\n"
            "def corrupt(index):\n"
            "    plan = index.peek_plan()\n"
            "    mutate(plan)\n"
        )
        assert rules({CORE: src}) == ["CHK012"]

    def test_published_argument_fires(self):
        src = (
            "def corrupt(publisher, plan):\n"
            "    publisher.publish(plan)\n"
            "    plan.recompile_subtree(0)\n"
        )
        assert rules({CORE: src}) == ["CHK012"]

    def test_pinned_with_block_fires(self):
        src = (
            "def corrupt(publisher):\n"
            "    with publisher.pinned() as plan:\n"
            "        plan.patch_value(0, 'v')\n"
        )
        assert rules({CORE: src}) == ["CHK012"]

    def test_applied_copy_on_write_is_sanctioned(self):
        src = (
            "def fine(index, ops):\n"
            "    plan = index.peek_plan()\n"
            "    fresh = plan.applied_insert_many(ops)\n"
            "    fresh.patch_value(0, 'v')\n"
        )
        assert rules({CORE: src}) == []

    def test_flat_py_is_exempt_on_the_sink_side(self):
        src = (
            "def applied_insert_many(self, ops):\n"
            "    clone = self._cow_clone()\n"
            "    plan = self.freeze()\n"
            "    plan.patch_insert_many(ops)\n"
        )
        assert rules({"src/repro/core/flat.py": src}) == []


class TestChk013PipeProtocol:
    WORKER = (
        "class MiniWorker:\n"
        "    def dispatch(self, method, args):\n"
        "        return getattr(self, method)(*args)\n"
        "    def lookup(self, keys):\n"
        "        return keys\n"
        "    def stats(self):\n"
        "        return {}\n"
    )
    WORKER_PATH = "src/repro/sharding/mini_worker.py"
    COORD_PATH = "src/repro/sharding/mini_coordinator.py"

    def check(self, coord_src, worker_src=None):
        return analyze_sources({
            self.WORKER_PATH: worker_src or self.WORKER,
            self.COORD_PATH: coord_src,
        })

    def test_conformant_protocol_is_clean(self):
        coord = (
            "def do_lookup(handle, keys):\n"
            "    return handle.call('lookup', (keys,))\n"
            "def do_stats(handle):\n"
            "    return handle.call('stats', ())\n"
        )
        assert [f.rule for f in self.check(coord)] == []

    def test_unknown_tag_fires_and_names_known_verbs(self):
        coord = (
            "def do_lookup(handle, keys):\n"
            "    return handle.call('lookpu', (keys,))\n"
            "def do_stats(handle):\n"
            "    return handle.call('stats', ())\n"
            "def do_lookup2(handle, keys):\n"
            "    return handle.call('lookup', (keys,))\n"
        )
        findings = self.check(coord)
        assert [f.rule for f in findings] == ["CHK013"]
        assert "lookpu" in findings[0].message
        assert "lookup" in findings[0].message  # suggests known verbs

    def test_payload_arity_mismatch_fires(self):
        coord = (
            "def do_lookup(handle, keys):\n"
            "    return handle.call('lookup', (keys, 1, 2))\n"
            "def do_stats(handle):\n"
            "    return handle.call('stats', ())\n"
        )
        findings = self.check(coord)
        assert [f.rule for f in findings] == ["CHK013"]
        assert "payload" in findings[0].message

    def test_handler_nobody_sends_fires_at_the_handler(self):
        coord = (
            "def do_lookup(handle, keys):\n"
            "    return handle.call('lookup', (keys,))\n"
        )
        findings = self.check(coord)
        assert [f.rule for f in findings] == ["CHK013"]
        assert "stats" in findings[0].message
        assert findings[0].path == self.WORKER_PATH

    def test_tag_through_a_forwarding_hop_counts_as_sent(self):
        coord = (
            "def _ask(handle, method, args):\n"
            "    return handle.call(method, args)\n"
            "def do_lookup(handle, keys):\n"
            "    return _ask(handle, 'lookup', (keys,))\n"
            "def do_stats(handle):\n"
            "    return _ask(handle, 'stats', ())\n"
        )
        assert [f.rule for f in self.check(coord)] == []

    def test_non_three_tuple_pipe_frame_fires(self):
        coord = (
            "def do_lookup(handle, keys):\n"
            "    return handle.call('lookup', (keys,))\n"
            "def do_stats(handle):\n"
            "    return handle.call('stats', ())\n"
            "def reply(conn, rid, payload):\n"
            "    conn.send((rid, payload))\n"
        )
        findings = self.check(coord)
        assert [f.rule for f in findings] == ["CHK013"]
        assert "3" in findings[0].message or "req_id" in findings[0].message


class TestChk014UntimedPipeReceives:
    SUPERVISION_PATH = "src/repro/sharding/supervision.py"

    def test_raw_recv_outside_the_wrappers_fires(self):
        src = (
            "def gather(conn):\n"
            "    return conn.recv()\n"
        )
        findings = analyze_sources({SHARDING: src})
        assert [f.rule for f in findings] == ["CHK014"]
        assert "recv" in findings[0].message
        assert "deadline" in findings[0].message

    def test_raw_poll_fires_even_with_a_timeout_argument(self):
        # A local timeout is still outside the shared request budget;
        # only the supervision wrappers slice from the deadline.
        src = (
            "def wait(handle):\n"
            "    return handle.conn.poll(0.05)\n"
        )
        assert rules({SHARDING: src}) == ["CHK014"]

    def test_the_supervision_module_is_sanctioned(self):
        src = (
            "def recv_frame(conn):\n"
            "    if conn.poll(0.05):\n"
            "        return conn.recv()\n"
            "    return None\n"
        )
        assert rules({self.SUPERVISION_PATH: src}) == []

    def test_non_pipe_receivers_are_not_flagged(self):
        src = (
            "def drain(queue):\n"
            "    return queue.recv()\n"
        )
        assert rules({SHARDING: src}) == []

    def test_pragma_waives_a_sanctioned_blocking_receive(self):
        src = (
            "def serve(conn):\n"
            "    while True:\n"
            "        frame = conn.recv()"
            "  # repro-check: allow CHK014 -- server loop blocks by design\n"
            "        if frame is None:\n"
            "            break\n"
        )
        assert rules({SHARDING: src}) == []
        waived = analyze_sources({SHARDING: src}, include_waived=True)
        assert [f.rule for f in waived] == ["CHK014"]
        assert waived[0].waived


class TestEngine:
    def test_every_dataflow_rule_has_a_description(self):
        assert sorted(DATAFLOW_RULES) == [
            "CHK010", "CHK011", "CHK012", "CHK013", "CHK014",
        ]
        assert all(DATAFLOW_RULES.values())

    def test_pragma_waives_a_dataflow_finding(self):
        src = (
            "def corrupt(index):\n"
            "    plan = index.peek_plan()\n"
            "    plan.patch_insert(1.0, 'v')"
            "  # repro-check: allow CHK012 -- seeded for a test\n"
        )
        assert rules({CORE: src}) == []
        waived = analyze_sources({CORE: src}, include_waived=True)
        assert [f.rule for f in waived] == ["CHK012"]
        assert waived[0].waived

    def test_test_trees_are_exempt(self):
        src = (
            "def corrupt(index):\n"
            "    plan = index.peek_plan()\n"
            "    plan.patch_insert(1.0, 'v')\n"
        )
        assert rules({"tests/core/test_example.py": src}) == []

    def test_findings_share_the_lint_json_schema(self):
        src = (
            "def corrupt(index):\n"
            "    plan = index.peek_plan()\n"
            "    plan.patch_insert(1.0, 'v')\n"
        )
        (finding,) = analyze_sources({CORE: src})
        assert finding.to_json() == {
            "rule": "CHK012",
            "path": CORE,
            "line": 3,
            "col": finding.col,
            "message": finding.message,
            "waived": False,
        }

    def test_syntax_errors_are_skipped_not_fatal(self):
        assert rules({CORE: "def broken(:\n"}) == []


class TestRepositoryIsClean:
    def test_src_is_dataflow_clean(self):
        findings = analyze_paths([REPO / "src"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_the_only_waivers_are_the_documented_contracts(self):
        # Exactly two standing waivers: the planstore lazy-values
        # pickle contract (CHK011) and the shard worker's blocking
        # request loop (CHK014, liveness vouched by its heartbeat
        # thread).  Anything else appearing here is scope creep.
        waived = [
            f for f in analyze_paths([REPO / "src"], include_waived=True)
            if f.waived
        ]
        assert [(f.rule, Path(f.path).name) for f in waived] == [
            ("CHK011", "store.py"),
            ("CHK014", "worker.py"),
        ]
