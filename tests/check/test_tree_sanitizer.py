"""TreeSanitizer / verify_tree: clean workloads pass, seeded structural
damage of every category is caught."""

import pickle

import numpy as np
import pytest

from repro.check import SanitizerViolation, TreeSanitizer, verify_tree
from repro.core.dili import DILI
from repro.core.nodes import InternalNode, LeafNode


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.uniform(0, 1e9, n))


def _sanitized(keys, **kwargs):
    index = DILI()
    index.sanitizer = TreeSanitizer(**kwargs)
    index.bulk_load(keys)
    return index


def _first_pair_leaf(node):
    """Depth-first search for a LeafNode holding at least one pair."""
    if type(node) is InternalNode:
        for child in node.children:
            found = _first_pair_leaf(child)
            if found is not None:
                return found
        return None
    if type(node) is LeafNode:
        if any(type(s) is tuple for s in node.slots):
            return node
        for slot in node.slots:
            if slot is not None and type(slot) is not tuple:
                found = _first_pair_leaf(slot)
                if found is not None:
                    return found
    return None


class TestCleanWorkloads:
    def test_mixed_workload_under_full_checking(self):
        keys = _keys(2000)
        index = _sanitized(keys, full_every=1)
        index.get_batch(keys[:512])  # compile the plan
        fresh = keys[:100] + 0.5
        index.insert_batch(fresh, [f"v{k}" for k in fresh])
        index.update_batch(fresh[:20], ["u"] * 20)
        index.delete_batch(fresh[:50])
        assert index.insert(keys[-1] + 1.0, "tail")
        assert index.update(float(keys[0]), "head")
        assert index.delete(float(keys[1]))
        verify_tree(index)
        assert index.sanitizer.full_checks > 3
        assert index.sanitizer.checks >= index.sanitizer.full_checks

    def test_empty_tree_verifies(self):
        verify_tree(DILI())

    def test_amortized_policy_skips_small_batches(self):
        keys = _keys(2000)
        index = _sanitized(keys)  # default amortize=1.0, min_interval=256
        after_bulk = index.sanitizer.full_checks
        for i in range(10):
            index.insert(float(keys[-1] + i + 1), "x")
        # 10 touched keys never reach max(256, count): spot checks only.
        assert index.sanitizer.full_checks == after_bulk
        assert index.sanitizer.checks >= 10

    def test_amortized_policy_triggers_on_churn(self):
        keys = _keys(100)
        index = _sanitized(keys, amortize=0.1, min_interval=8)
        index.get_batch(keys)
        after_bulk = index.sanitizer.full_checks
        fresh = keys + 0.5
        for start in range(0, 100, 20):
            index.insert_batch(fresh[start:start + 20])
        assert index.sanitizer.full_checks > after_bulk

    def test_rejects_bad_amortize(self):
        with pytest.raises(ValueError):
            TreeSanitizer(amortize=0.0)


class TestSeededDamage:
    def test_count_drift(self):
        index = _sanitized(_keys(500))
        index._count += 1
        with pytest.raises(SanitizerViolation, match="count mismatch"):
            verify_tree(index)

    def test_count_drift_caught_on_next_write(self):
        keys = _keys(500)
        index = _sanitized(keys, full_every=1)
        index._count -= 1
        with pytest.raises(SanitizerViolation):
            index.insert(float(keys[-1]) + 1.0, "x")

    def test_plan_value_divergence(self):
        keys = _keys(500)
        index = _sanitized(keys)
        index.get_batch(keys)  # compile the plan
        index._flat.values[0] = object()  # repro-check test seed
        with pytest.raises(SanitizerViolation, match="diverged"):
            verify_tree(index)

    def test_plan_key_table_divergence(self):
        keys = _keys(500)
        index = _sanitized(keys)
        index.get_batch(keys)
        plan = index._flat
        plan.sorted_keys = plan.sorted_keys[:-1]  # repro-check test seed
        with pytest.raises(SanitizerViolation):
            verify_tree(index)

    def test_misplaced_pair(self):
        index = _sanitized(_keys(500))
        leaf = _first_pair_leaf(index.root)
        assert leaf is not None
        src = next(
            i for i, s in enumerate(leaf.slots) if type(s) is tuple
        )
        dst = next(
            (i for i, s in enumerate(leaf.slots)
             if s is None and i != src),
            None,
        )
        assert dst is not None, "expected an empty slot in a bulk-loaded leaf"
        leaf.slots[dst] = leaf.slots[src]
        leaf.slots[src] = None
        with pytest.raises(SanitizerViolation, match="predicts"):
            verify_tree(index, check_plan=False, check_router=False)

    def test_broken_internal_model(self):
        keys = np.arange(0.0, 20000.0)  # large enough for internal nodes
        index = _sanitized(keys)
        assert type(index.root) is InternalNode
        index.root.slope *= 1.0000001
        with pytest.raises(SanitizerViolation, match="equal-width"):
            verify_tree(index, check_plan=False, check_router=False)


class TestLifecycle:
    def test_sanitizer_dropped_by_pickle(self):
        index = _sanitized(_keys(200))
        clone = pickle.loads(pickle.dumps(index))
        assert clone.sanitizer is None
        verify_tree(clone)
