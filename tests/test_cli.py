"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "zipf"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "--method", "Trie"])


class TestCommands:
    def test_compare(self, capsys):
        assert main(["compare", "--dataset", "logn", "--keys", "5000"]) == 0
        out = capsys.readouterr().out
        assert "DILI" in out
        assert "lookup (ns)" in out

    def test_workload(self, capsys):
        code = main(
            [
                "workload",
                "--dataset",
                "logn",
                "--keys",
                "8000",
                "--method",
                "DILI",
                "--mix",
                "Read-Heavy",
                "--ops",
                "3000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Mops simulated" in out

    def test_workload_bad_mix(self, capsys):
        code = main(
            ["workload", "--keys", "5000", "--mix", "Chaos-Monkey"]
        )
        assert code == 2
        assert "unknown mix" in capsys.readouterr().err

    def test_datasets(self, capsys):
        assert main(["datasets", "--keys", "3000"]) == 0
        out = capsys.readouterr().out
        for name in ("fb", "wikits", "osm", "books", "logn"):
            assert name in out

    def test_structure(self, capsys):
        assert (
            main(["structure", "--dataset", "fb", "--keys", "5000"]) == 0
        )
        out = capsys.readouterr().out
        assert "avg height" in out
        assert "conflicts" in out


class TestDurabilityCommands:
    def test_snapshot_then_recover_roundtrip(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        code = main(
            [
                "snapshot",
                "--dir", state,
                "--dataset", "logn",
                "--keys", "5000",
                "--wal-tail", "200",
                "--no-sync",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bulk-loaded 5,000" in out
        assert "200 inserts in the WAL tail" in out

        assert main(["recover", "--dir", state]) == 0
        out = capsys.readouterr().out
        assert "recovered 5,200 keys" in out
        assert "replayed 200 WAL records" in out
        assert "validate() passed" in out

    def test_snapshot_reopens_existing_state(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        args = ["snapshot", "--dir", state, "--keys", "2000", "--no-sync"]
        assert main(args + ["--wal-tail", "50"]) == 0
        capsys.readouterr()
        # Second run folds the WAL tail into a fresh snapshot.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2,050 keys" in out
        assert main(["recover", "--dir", state]) == 0
        out = capsys.readouterr().out
        assert "replayed 0 WAL records" in out

    def test_recover_rejects_corrupt_snapshot(self, capsys, tmp_path):
        state = tmp_path / "state"
        assert main(
            ["snapshot", "--dir", str(state), "--keys", "1000", "--no-sync"]
        ) == 0
        capsys.readouterr()
        snap = state / "snapshot.dili"
        raw = bytearray(snap.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        snap.write_bytes(bytes(raw))
        assert main(["recover", "--dir", str(state)]) == 1
        assert "recovery failed" in capsys.readouterr().err

    def test_recover_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover"])

    def test_recover_with_skipped_records_exits_3(self, capsys, tmp_path):
        """Lossy recovery (replay skipped a poisoned WAL record) must
        not masquerade as success: distinct exit code, loud warning."""
        import pickle

        from repro.durability.recovery import WAL_NAME
        from repro.durability.wal import (
            OP_BULK_INSERT,
            OP_INSERT,
            WriteAheadLog,
        )

        def _args(*a):
            return pickle.dumps(a, protocol=pickle.HIGHEST_PROTOCOL)

        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            wal.append(OP_INSERT, _args(1.0, "a"))
            # Duplicate-key bulk insert: logged but rejected on replay.
            wal.append(OP_BULK_INSERT, _args([5.0, 5.0], None))
            wal.append(OP_INSERT, _args(2.0, "b"))

        assert main(["recover", "--dir", str(tmp_path)]) == 3
        captured = capsys.readouterr()
        assert "recovered 2 keys" in captured.out
        assert "1 WAL record(s) failed to replay" in captured.err
        assert "incomplete" in captured.err


class TestReportCommand:
    def test_report_to_stdout(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["report", "table6", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "# DILI reproduction report" in out
        assert "Table 6" in out

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "table99", "--scale", "small"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "r.md"
        assert (
            main(
                [
                    "report",
                    "table6",
                    "--scale",
                    "small",
                    "-o",
                    str(out_file),
                ]
            )
            == 0
        )
        assert "Table 6" in out_file.read_text()


class TestBenchParser:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.scale == "medium"
        assert args.filter == ""

    def test_bench_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--scale", "galactic"])


class TestShardCommands:
    def test_init_records_dataset_and_serve_uses_it(
        self, tmp_path, capsys
    ):
        d = str(tmp_path / "shards")
        assert main(
            ["shard", "init", "--dir", d, "--keys", "3000",
             "--shards", "2", "--no-sync"]
        ) == 0
        assert (tmp_path / "shards" / "dataset.json").is_file()
        capsys.readouterr()
        # serve with *mismatched* flags must audit against the
        # recorded keyset, not the flag keyset.
        assert main(
            ["shard", "serve", "--dir", d, "--keys", "9999",
             "--rounds", "2", "--batch", "256", "--no-processes",
             "--no-sync"]
        ) == 0
        out = capsys.readouterr().out
        assert "using recorded dataset logn/3000/seed 7" in out
        assert "0 wrong" in out

    def test_init_refuses_non_empty_dir(self, tmp_path, capsys):
        d = tmp_path / "occupied"
        d.mkdir()
        (d / "junk").write_text("x")
        assert main(
            ["shard", "init", "--dir", str(d), "--keys", "1000"]
        ) == 2
        assert "refusing" in capsys.readouterr().err

    def test_status_healthy(self, tmp_path, capsys):
        d = str(tmp_path / "shards")
        assert main(
            ["shard", "init", "--dir", d, "--keys", "2000",
             "--no-sync"]
        ) == 0
        capsys.readouterr()
        assert main(["shard", "status", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "health healthy" in out
        # ISSUE 10: per-shard supervision state is part of status.
        assert "supervision:" in out
        assert "0 open breaker(s)" in out
        assert "closed/up" in out

    def test_chaos_parser_defaults(self):
        args = build_parser().parse_args(["shard", "chaos"])
        assert args.schedule == "supervision"
        assert args.seed == 0
        assert args.json is False
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["shard", "chaos", "--schedule", "lava"]
            )


class TestCheckCommands:
    CHK012_SEED = (
        "def corrupt(index):\n"
        "    plan = index.peek_plan()\n"
        "    plan.patch_insert(1.0, 'v')\n"
    )

    def seed(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "core"
        tree.mkdir(parents=True)
        (tree / "example.py").write_text(self.CHK012_SEED)
        return tmp_path / "src"

    def test_check_dataflow_clean_tree(self, tmp_path, capsys):
        tree = tmp_path / "src" / "repro" / "core"
        tree.mkdir(parents=True)
        (tree / "fine.py").write_text("def f():\n    return 1\n")
        assert main(["check", "dataflow", str(tmp_path / "src")]) == 0
        assert "dataflow clean" in capsys.readouterr().out

    def test_check_dataflow_seeded_violation(self, tmp_path, capsys):
        src = self.seed(tmp_path)
        assert main(["check", "dataflow", str(src)]) == 1
        assert "CHK012" in capsys.readouterr().out

    def test_check_lint_gate_includes_dataflow(self, tmp_path, capsys):
        src = self.seed(tmp_path)
        assert main(["check", "lint", str(src)]) == 1
        assert "CHK012" in capsys.readouterr().out

    def test_check_json_format_schema(self, tmp_path, capsys):
        import json

        src = self.seed(tmp_path)
        assert main(["check", "dataflow", "--format=json", str(src)]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in findings] == ["CHK012"]
        assert set(findings[0]) == {
            "rule", "path", "line", "col", "message", "waived",
        }
        assert findings[0]["waived"] is False

    def test_check_json_format_includes_waived(self, tmp_path, capsys):
        import json

        src = self.seed(tmp_path)
        example = src / "repro" / "core" / "example.py"
        example.write_text(self.CHK012_SEED.replace(
            "plan.patch_insert(1.0, 'v')",
            "plan.patch_insert(1.0, 'v')"
            "  # repro-check: allow CHK012 -- seeded",
        ))
        assert main(["check", "dataflow", "--format=json", str(src)]) == 0
        findings = json.loads(capsys.readouterr().out)
        assert [f["waived"] for f in findings] == [True]
