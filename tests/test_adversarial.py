"""Adversarial key patterns: distributions designed to hurt learned
indexes.  Every index must stay *correct* on all of them (performance
may degrade; correctness may not)."""

import numpy as np
import pytest

from repro import DILI, DiliConfig
from repro.baselines import (
    AlexIndex,
    BinarySearchIndex,
    BPlusTree,
    FITingTree,
    LippIndex,
    MassTree,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
)

MAX_KEY = float(2**52)


def _patterns() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(1234)
    n = 4_000
    patterns = {
        # Perfectly linear: the easy extreme.
        "arithmetic": np.arange(n, dtype=np.float64) * 97.0,
        # Exponential spacing: every prefix looks flat to a line.
        "exponential": np.unique(
            np.floor(1.0001 ** np.arange(n) * 1e3)
        ),
        # Giant cliff: half dense at the bottom, half dense at the top.
        "cliff": np.concatenate(
            [
                np.arange(n // 2, dtype=np.float64),
                MAX_KEY / 2 + np.arange(n // 2, dtype=np.float64),
            ]
        ),
        # Thousands of micro-clusters with huge empty space between.
        "dust": np.unique(
            (
                rng.integers(0, 2**40, n // 4)[:, None]
                + np.arange(4)[None, :]
            ).ravel()
        ).astype(np.float64),
        # Keys at the top of the representable range.
        "ceiling": MAX_KEY - np.arange(n, dtype=np.float64) * 3.0,
        # Unit gaps: maximal density everywhere.
        "unit": np.arange(n, dtype=np.float64),
        # Quadratic: smoothly accelerating gaps.
        "quadratic": np.cumsum(np.arange(1, n + 1, dtype=np.float64)),
        # Random walk with mixed step magnitudes.
        "mixed-steps": np.cumsum(
            np.where(
                rng.random(n) < 0.9,
                1.0,
                rng.integers(10**3, 10**6, n).astype(np.float64),
            )
        ),
    }
    return {
        name: np.unique(np.sort(keys))
        for name, keys in patterns.items()
    }


def _indexes():
    return [
        DILI(),
        DILI(DiliConfig(local_optimization=False)),
        BinarySearchIndex(),
        BPlusTree(16),
        MassTree(),
        RMIIndex(128),
        RadixSplineIndex(16, 12),
        PGMIndex(16),
        AlexIndex(64 * 1024),
        LippIndex(),
        FITingTree(16),
    ]


@pytest.mark.parametrize("pattern", sorted(_patterns()))
def test_every_index_correct_on_adversarial_pattern(pattern):
    keys = _patterns()[pattern]
    assert keys[-1] <= MAX_KEY
    for index in _indexes():
        index.bulk_load(keys)
        for i in range(0, len(keys), 97):
            got = index.get(float(keys[i]))
            assert got == i, (type(index).__name__, pattern, i)
        # Misses between the first two keys and beyond both ends.
        probe = (float(keys[0]) + float(keys[1])) / 2.0
        if probe not in (float(keys[0]), float(keys[1])):
            assert index.get(probe) is None, (
                type(index).__name__,
                pattern,
            )
        assert index.get(float(keys[-1]) + 1.0) is None


@pytest.mark.parametrize("pattern", ["cliff", "dust", "mixed-steps"])
def test_dili_updates_survive_adversarial_patterns(pattern):
    keys = _patterns()[pattern]
    index = DILI()
    index.bulk_load(keys[::2])
    for k in keys[1::2]:
        assert index.insert(float(k), "w")
    for k in keys[1::2][::53]:
        assert index.get(float(k)) == "w"
    for k in keys[::4]:
        assert index.delete(float(k))
    index.validate()


def test_dili_handles_two_keys_one_ulp_apart():
    base = 1.0e15
    pair = np.array([base, np.nextafter(base, np.inf)])
    index = DILI()
    index.bulk_load(pair)
    assert index.get(float(pair[0])) == 0
    assert index.get(float(pair[1])) == 1


def test_sub_resolution_keys_fail_loudly_not_silently():
    """Keys closer than a float64 model can separate must raise."""
    keys = np.array([0.0, 2.225073858507203e-309])
    index = DILI()
    with pytest.raises(ValueError):
        index.bulk_load(keys)
