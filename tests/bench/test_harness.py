"""Tests for the benchmark harness and table rendering."""

import numpy as np
import pytest

from repro.bench.harness import (
    DATASETS,
    METHOD_FACTORIES,
    REPRESENTATIVE,
    SCALES,
    current_scale,
    make_index,
    measure_lookup,
    method_names,
    query_sample,
)
from repro.bench.reporting import format_table
from repro.data import load_dataset


class TestScales:
    def test_all_scales_well_formed(self):
        for scale in SCALES.values():
            assert scale.num_keys > scale.num_queries
            assert scale.cache_lines >= 512

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert current_scale().name == "small"
        monkeypatch.setenv("REPRO_SCALE", "LARGE")
        assert current_scale().name == "large"
        monkeypatch.delenv("REPRO_SCALE")
        assert current_scale().name == "medium"
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            current_scale()


class TestRegistry:
    def test_every_factory_builds_and_answers(self):
        keys = load_dataset("logn", 3_000, seed=42)
        for name in method_names():
            index = make_index(name)
            index.bulk_load(keys)
            assert index.get(float(keys[100])) == 100, name
            assert index.get(float(keys[0]) - 1.0) is None, name

    def test_representative_subset_is_registered(self):
        for name in REPRESENTATIVE:
            assert name in METHOD_FACTORIES

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_index("SkipList")

    def test_dataset_list_matches_paper(self):
        assert DATASETS == ["fb", "wikits", "osm", "books", "logn"]


class TestMeasurement:
    def test_measure_lookup_returns_sane_numbers(self):
        scale = SCALES["small"]
        keys = load_dataset("logn", 10_000, seed=1)
        queries = query_sample(keys, 800)
        index = make_index("DILI")
        index.bulk_load(keys)
        ns, misses, phases = measure_lookup(index, queries, scale)
        assert 0 < ns < 10_000
        assert 0 < misses < 50
        assert phases.get("step1", 0) >= 0
        assert phases.get("step2", 0) > 0
        # Phases are a decomposition of (most of) the total.
        assert phases["step1"] + phases["step2"] <= ns + 1e-6

    def test_query_sample_is_deterministic(self):
        keys = np.arange(100, dtype=np.float64)
        a = query_sample(keys, 50, seed=3)
        b = query_sample(keys, 50, seed=3)
        assert np.array_equal(a, b)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(
            "T", ["Method", "a", "b"], [["x", 1.2345, 10_000.0]]
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Method" in lines[2]
        assert "1.23" in lines[-1]
        assert "10,000" in lines[-1]

    def test_format_table_nan_dash(self):
        out = format_table("T", ["m", "v"], [["row", float("nan")]])
        assert out.splitlines()[-1].strip().endswith("-")

    def test_format_table_strings_pass_through(self):
        out = format_table("T", ["m", "v"], [["row", "yes"]])
        assert "yes" in out
