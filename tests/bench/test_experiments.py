"""Tests for the programmatic experiment API."""

import pytest

from repro.bench.experiments import (
    CORE_EXPERIMENTS,
    ExperimentResult,
    dili_structure,
    lookup_times,
    run_report,
    workload_throughput,
)
from repro.bench.harness import BenchScale, BuildCache

TINY = BenchScale("tiny", 8_000, 600)


@pytest.fixture(scope="module")
def cache():
    return BuildCache(TINY)


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            name="x",
            title="T",
            columns=["Method", "a", "b"],
            rows=[["m1", 1.0, 2.0], ["m2", 3.0, 4.0]],
            notes=["note"],
        )

    def test_cell_access(self):
        r = self._result()
        assert r.cell("m1", "a") == 1.0
        assert r.cell("m2", "b") == 4.0
        with pytest.raises(KeyError):
            r.cell("m3", "a")
        with pytest.raises(KeyError):
            r.cell("m1", "z")

    def test_to_markdown(self):
        md = self._result().to_markdown()
        assert "### T" in md
        assert "| Method | a | b |" in md
        assert "| m1 | 1.00 | 2.00 |" in md
        assert "* note" in md

    def test_to_text(self):
        text = self._result().to_text()
        assert "T" in text and "m2" in text


class TestCoreExperiments:
    def test_lookup_times_covers_full_matrix(self, cache):
        result = lookup_times(cache)
        assert result.name == "table4"
        assert len(result.columns) == 6  # Method + 5 datasets
        assert any(row[0] == "DILI" for row in result.rows)
        assert all(
            isinstance(v, float) and v > 0
            for row in result.rows
            for v in row[1:]
        )

    def test_dili_structure_rows(self, cache):
        result = dili_structure(cache)
        datasets = [row[0] for row in result.rows]
        assert datasets == ["fb", "wikits", "osm", "books", "logn"]

    def test_workload_throughput_small(self, cache):
        result = workload_throughput(
            cache, methods=["B+Tree(32)", "DILI"], total_ops=2_000
        )
        assert len(result.rows) == 2
        assert all(v > 0 for v in result.rows[0][1:])

    def test_registry_complete(self):
        assert set(CORE_EXPERIMENTS) == {
            "table4",
            "table5",
            "table6",
            "fig6a",
            "fig7",
        }


class TestRunReport:
    def test_selected_experiment(self, cache):
        report = run_report(cache, ["table6"])
        assert "# DILI reproduction report" in report
        assert "Table 6" in report
        assert "Table 4" not in report

    def test_unknown_experiment_rejected(self, cache):
        with pytest.raises(ValueError):
            run_report(cache, ["table99"])
