"""End-to-end integration tests across packages.

Each test exercises the full pipeline the benchmarks rely on:
dataset generation -> index construction -> workload execution ->
measurement -> statistics, for every representative method.
"""

import numpy as np
import pytest

from repro import DILI, DiliConfig, tree_stats
from repro.bench.harness import (
    SCALES,
    make_index,
    measure_lookup,
    method_names,
    query_sample,
)
from repro.data import load_dataset, split_initial
from repro.workloads.generator import NAMED_SPECS, make_workload
from repro.workloads.runner import run_workload

SCALE = SCALES["small"]


@pytest.fixture(scope="module")
def dataset():
    keys = load_dataset("books", 15_000, seed=99)
    return keys


class TestFullPipeline:
    @pytest.mark.parametrize(
        "method", method_names(representative_only=True)
    )
    def test_build_measure_and_introspect(self, dataset, method):
        index = make_index(method)
        index.bulk_load(dataset)
        queries = query_sample(dataset, 600, seed=5)
        ns, misses, _ = measure_lookup(index, queries, SCALE)
        assert 0 < ns < 50_000
        assert misses >= 0
        assert index.memory_bytes() > 0
        assert len(index) == len(dataset)

    @pytest.mark.parametrize(
        "method", ["DILI", "B+Tree(32)", "ALEX(1MB)", "LIPP", "DynPGM"]
    )
    def test_read_heavy_workload_runs(self, dataset, method):
        initial, pool = split_initial(dataset, 0.5, seed=1)
        index = make_index(method)
        index.bulk_load(initial)
        spec = NAMED_SPECS["Read-Heavy"].scaled(3_000)
        ops = make_workload(spec, dataset, pool, seed=2)
        result = run_workload(index, ops, cache_lines=SCALE.cache_lines)
        assert result.sim_mops > 0
        assert result.inserted > 0
        assert len(index) == len(initial) + result.inserted + (
            # warmup inserts are applied but not counted
            sum(
                1
                for op, key in ops[: min(500, len(ops) // 10)]
                if op.value == "insert"
            )
        )

    def test_dili_survives_all_named_workloads_in_sequence(self, dataset):
        """One index instance through every mix, validating throughout."""
        initial, pool = split_initial(dataset, 0.5, seed=3)
        index = DILI()
        index.bulk_load(initial)
        half = len(pool) // 2
        for mix, pool_slice in (
            ("Read-Heavy", pool[:half]),
            ("Write-Heavy", pool[half:]),
        ):
            spec = NAMED_SPECS[mix].scaled(2_000)
            ops = make_workload(spec, dataset, pool_slice, seed=4)
            run_workload(index, ops, cache_lines=SCALE.cache_lines)
            index.validate()
        spec = NAMED_SPECS["Deletion-Heavy"].scaled(2_000)
        live = np.array(sorted(k for k, _ in index.items()))
        from repro.workloads.generator import deletion_workload

        ops = deletion_workload(spec, live, seed=5)
        result = run_workload(index, ops, cache_lines=SCALE.cache_lines)
        assert result.deleted > 0
        index.validate()

    def test_stats_track_reality_after_churn(self, dataset):
        index = DILI(DiliConfig(lambda_adjust=1.5))
        initial, pool = split_initial(dataset, 0.5, seed=6)
        index.bulk_load(initial)
        for key in pool:
            index.insert(float(key), "w")
        st = tree_stats(index)
        assert st.num_pairs == len(index) == len(dataset)
        assert st.min_height <= st.avg_height <= st.max_height
        assert st.memory_bytes == index.memory_bytes()
