"""Tests for workload stream generation."""

import numpy as np
import pytest

from repro.workloads.generator import (
    DELETE_HEAVY,
    NAMED_SPECS,
    Operation,
    READ_HEAVY,
    READ_ONLY,
    WRITE_HEAVY,
    WRITE_ONLY,
    WorkloadSpec,
    deletion_workload,
    make_workload,
    skewed_insert_keys,
)


class TestWorkloadSpec:
    def test_scaled_preserves_ratio(self):
        spec = READ_HEAVY.scaled(3_000)
        assert spec.lookups == 2_000
        assert spec.inserts == 1_000
        assert spec.deletes == 0

    def test_named_specs_match_paper_ratios(self):
        assert READ_ONLY.inserts == 0
        assert WRITE_ONLY.lookups == 0
        assert READ_HEAVY.lookups == 2 * READ_HEAVY.inserts
        assert WRITE_HEAVY.inserts == 2 * WRITE_HEAVY.lookups
        assert DELETE_HEAVY.deletes == 2 * DELETE_HEAVY.lookups
        assert len(NAMED_SPECS) == 6


class TestMakeWorkload:
    def setup_method(self):
        self.keys = np.arange(0, 10_000, 2, dtype=np.float64)
        self.pool = np.arange(1, 10_000, 2, dtype=np.float64)

    def test_counts_and_kinds(self):
        spec = READ_HEAVY.scaled(900)
        ops = make_workload(spec, self.keys, self.pool, seed=1)
        assert len(ops) == 900
        kinds = [op for op, _ in ops]
        assert kinds.count(Operation.LOOKUP) == 600
        assert kinds.count(Operation.INSERT) == 300

    def test_insert_keys_come_from_pool_without_repeats(self):
        spec = WRITE_ONLY.scaled(500)
        ops = make_workload(spec, self.keys, self.pool, seed=2)
        inserted = [k for op, k in ops if op is Operation.INSERT]
        assert len(set(inserted)) == len(inserted)
        assert set(inserted) <= set(self.pool.tolist())

    def test_lookup_keys_come_from_universe(self):
        spec = READ_ONLY.scaled(400)
        ops = make_workload(spec, self.keys, self.pool, seed=3)
        assert all(k in set(self.keys.tolist()) for _, k in ops)

    def test_deterministic_given_seed(self):
        spec = READ_HEAVY.scaled(300)
        a = make_workload(spec, self.keys, self.pool, seed=9)
        b = make_workload(spec, self.keys, self.pool, seed=9)
        assert a == b

    def test_operations_are_shuffled(self):
        spec = READ_HEAVY.scaled(600)
        ops = make_workload(spec, self.keys, self.pool, seed=4)
        first_half = [op for op, _ in ops[:300]]
        # A random mix: inserts must not all cluster in one half.
        assert 50 < first_half.count(Operation.INSERT) < 250

    def test_pool_exhaustion_rejected(self):
        spec = WorkloadSpec("too-big", lookups=0, inserts=10**6)
        with pytest.raises(ValueError):
            make_workload(spec, self.keys, self.pool, seed=0)

    def test_deletion_workload(self):
        spec = DELETE_HEAVY.scaled(300)
        ops = deletion_workload(spec, self.keys, seed=5)
        kinds = [op for op, _ in ops]
        assert kinds.count(Operation.DELETE) == 200
        assert kinds.count(Operation.LOOKUP) == 100
        deleted = [k for op, k in ops if op is Operation.DELETE]
        assert len(set(deleted)) == len(deleted)  # no double deletes


class TestSkewedInsertKeys:
    def test_keys_land_in_compressed_prefix(self):
        target = np.arange(0, 100_000, 10, dtype=np.float64)
        source = np.arange(3, 50_000, 7, dtype=np.float64)
        skewed = skewed_insert_keys(source, target, 500, compress=0.1,
                                    seed=1)
        assert len(skewed) == 500
        span = target[-1] - target[0]
        assert skewed.max() <= target[0] + span * 0.1 + 1

    def test_skewed_keys_disjoint_from_target(self):
        target = np.arange(0, 10_000, 2, dtype=np.float64)
        source = np.arange(1, 30_000, 3, dtype=np.float64)
        skewed = skewed_insert_keys(source, target, 200, seed=2)
        assert not set(skewed.tolist()) & set(target.tolist())

    def test_rejects_bad_compress(self):
        target = np.arange(100, dtype=np.float64)
        with pytest.raises(ValueError):
            skewed_insert_keys(target, target, 5, compress=0.0)

    def test_rejects_insufficient_keys(self):
        target = np.arange(0, 100, 1, dtype=np.float64)
        source = np.arange(0, 10, 1, dtype=np.float64)
        with pytest.raises(ValueError):
            skewed_insert_keys(source, target, 1_000, seed=0)
