"""Tests for the Zipfian query-skew extension."""

import numpy as np
import pytest

from repro.workloads.generator import (
    NAMED_SPECS,
    Operation,
    make_workload,
    zipf_indices,
)


class TestZipfIndices:
    def test_shape_and_range(self):
        rng = np.random.default_rng(1)
        idx = zipf_indices(1_000, 5_000, rng)
        assert len(idx) == 5_000
        assert idx.min() >= 0 and idx.max() < 1_000

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(2)
        idx = zipf_indices(10_000, 50_000, rng, theta=0.99)
        _, counts = np.unique(idx, return_counts=True)
        counts = np.sort(counts)[::-1]
        # The hottest 1% of touched keys absorb a large share.
        top = counts[: max(len(counts) // 100, 1)].sum()
        assert top / counts.sum() > 0.15

    def test_uniform_theta_zero(self):
        rng = np.random.default_rng(3)
        idx = zipf_indices(1_000, 50_000, rng, theta=0.0)
        _, counts = np.unique(idx, return_counts=True)
        # Near-uniform: max popularity close to the mean.
        assert counts.max() < counts.mean() * 3

    def test_hot_keys_are_scattered(self):
        rng = np.random.default_rng(4)
        idx = zipf_indices(10_000, 20_000, rng)
        values, counts = np.unique(idx, return_counts=True)
        hottest = values[np.argsort(counts)[-10:]]
        # The permutation spreads hot ranks over the index range.
        assert hottest.max() - hottest.min() > 1_000

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            zipf_indices(0, 10, np.random.default_rng(0))


class TestZipfWorkloads:
    def test_zipf_lookups_repeat_keys(self):
        keys = np.arange(0, 50_000, 5, dtype=np.float64)
        spec = NAMED_SPECS["Read-Only"].scaled(5_000)
        uni = make_workload(spec, keys, np.array([]), seed=5,
                            query_distribution="uniform")
        zipf = make_workload(spec, keys, np.array([]), seed=5,
                             query_distribution="zipf")
        distinct_uni = len({k for _, k in uni})
        distinct_zipf = len({k for _, k in zipf})
        assert distinct_zipf < distinct_uni

    def test_zipf_keys_still_valid(self):
        keys = np.arange(0, 1_000, 2, dtype=np.float64)
        spec = NAMED_SPECS["Read-Only"].scaled(500)
        ops = make_workload(spec, keys, np.array([]), seed=6,
                            query_distribution="zipf")
        universe = set(keys.tolist())
        assert all(
            op is Operation.LOOKUP and k in universe for op, k in ops
        )

    def test_unknown_distribution_rejected(self):
        keys = np.arange(10, dtype=np.float64)
        with pytest.raises(ValueError):
            make_workload(
                NAMED_SPECS["Read-Only"].scaled(10),
                keys,
                np.array([]),
                query_distribution="pareto",
            )
