"""Tests for the workload runner."""

import numpy as np
import pytest

from repro import DILI
from repro.baselines import BPlusTree, DynamicPGM
from repro.workloads.generator import (
    NAMED_SPECS,
    Operation,
    make_workload,
)
from repro.workloads.runner import run_workload


@pytest.fixture()
def setting():
    keys = np.arange(0, 20_000, 2, dtype=np.float64)
    pool = np.arange(1, 20_000, 2, dtype=np.float64)
    return keys, pool


class TestRunWorkload:
    def test_read_only_counts_hits(self, setting):
        keys, pool = setting
        index = DILI()
        index.bulk_load(keys)
        ops = make_workload(
            NAMED_SPECS["Read-Only"].scaled(2_000), keys, pool, seed=1
        )
        result = run_workload(index, ops, name="ro")
        assert result.operations == len(ops) - min(500, len(ops) // 10)
        # All lookup keys exist (drawn from the loaded universe).
        assert result.hits == result.operations
        assert result.sim_mops > 0
        assert result.sim_ns_per_op > 0

    def test_mixed_workload_applies_inserts(self, setting):
        keys, pool = setting
        index = DILI()
        index.bulk_load(keys)
        spec = NAMED_SPECS["Write-Heavy"].scaled(3_000)
        ops = make_workload(spec, keys, pool, seed=2)
        before = len(index)
        result = run_workload(index, ops, warmup=0)
        assert len(index) == before + result.inserted
        assert result.inserted > 0
        index.validate()

    def test_deletions_shrink_index(self, setting):
        keys, _ = setting
        index = BPlusTree(16)
        index.bulk_load(keys)
        ops = [(Operation.DELETE, float(k)) for k in keys[:1_000]]
        result = run_workload(index, ops, warmup=0)
        assert result.deleted == 1_000
        assert len(index) == len(keys) - 1_000

    def test_structural_work_is_charged(self, setting):
        """An index that merges whole runs per insert (DynamicPGM) must
        score a slower simulated clock than one that does not (DILI)."""
        keys, pool = setting
        spec = NAMED_SPECS["Write-Only"].scaled(2_000)
        results = {}
        for make in (DILI, lambda: DynamicPGM(32, base=64)):
            index = make()
            index.bulk_load(keys)
            ops = make_workload(spec, keys, pool, seed=3)
            results[type(index).__name__] = run_workload(index, ops)
        assert (
            results["DILI"].sim_mops > results["DynamicPGM"].sim_mops
        )

    def test_warmup_excluded_from_counts(self, setting):
        keys, pool = setting
        index = DILI()
        index.bulk_load(keys)
        ops = make_workload(
            NAMED_SPECS["Read-Only"].scaled(1_000), keys, pool, seed=4
        )
        result = run_workload(index, ops, warmup=100)
        assert result.operations == 900

    def test_wall_clock_positive(self, setting):
        keys, pool = setting
        index = DILI()
        index.bulk_load(keys)
        ops = make_workload(
            NAMED_SPECS["Read-Only"].scaled(1_500), keys, pool, seed=5
        )
        result = run_workload(index, ops)
        assert result.wall_mops > 0
