"""Tests for the dataset hardness analysis module."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.analysis import (
    estimate_conflict_rate,
    hardness_report,
    segment_rmse_profile,
)


class TestRankRmseProfile:
    def test_linear_data_is_trivially_easy(self):
        keys = np.arange(0, 50_000, 5, dtype=np.float64)
        profile = segment_rmse_profile(keys)
        assert float(profile.max()) < 1e-6

    def test_noisy_data_is_harder(self):
        rng = np.random.default_rng(1)
        easy = np.arange(20_000, dtype=np.float64)
        hard = np.cumsum(rng.exponential(10.0, size=20_000))
        assert (
            segment_rmse_profile(hard).mean()
            > segment_rmse_profile(easy).mean()
        )

    def test_segment_count(self):
        keys = np.arange(10_000, dtype=np.float64)
        assert len(segment_rmse_profile(keys, segment_size=1_000)) == 10


class TestConflictRate:
    def test_arithmetic_progression_never_conflicts(self):
        keys = np.arange(0, 30_000, 3, dtype=np.float64)
        assert estimate_conflict_rate(keys) == 0.0

    def test_poisson_gaps_conflict_substantially(self):
        rng = np.random.default_rng(2)
        keys = np.unique(np.floor(np.cumsum(
            rng.exponential(50.0, size=30_000)
        )))
        rate = estimate_conflict_rate(keys)
        # Analytic Poisson collision rate at eta=2 is ~0.21.
        assert 0.10 < rate < 0.35

    def test_larger_enlarge_fewer_conflicts(self):
        rng = np.random.default_rng(3)
        keys = np.unique(np.floor(np.cumsum(
            rng.exponential(50.0, size=20_000)
        )))
        assert estimate_conflict_rate(keys, enlarge=4.0) < (
            estimate_conflict_rate(keys, enlarge=1.5)
        )

    def test_tiny_inputs(self):
        assert estimate_conflict_rate(np.array([])) == 0.0
        assert estimate_conflict_rate(np.array([5.0])) == 0.0


class TestHardnessReport:
    def test_predicts_table6_difficulty_ordering(self):
        """The whole point: the report must rank datasets the way DILI's
        measured conflicts do (easy logn/wikits, hard fb/books)."""
        rates = {
            name: hardness_report(load_dataset(name, 30_000, seed=4))
            for name in ("fb", "wikits", "books", "logn")
        }
        assert rates["wikits"].conflict_rate < rates["fb"].conflict_rate
        assert rates["logn"].conflict_rate < rates["books"].conflict_rate

    def test_fb_has_heaviest_tail(self):
        fb = hardness_report(load_dataset("fb", 20_000, seed=5))
        wikits = hardness_report(load_dataset("wikits", 20_000, seed=5))
        assert fb.tail_ratio > wikits.tail_ratio

    def test_report_fields_consistent(self):
        keys = load_dataset("osm", 10_000, seed=6)
        report = hardness_report(keys)
        assert report.num_keys == 10_000
        assert report.global_rmse >= 0
        assert 0 <= report.conflict_rate <= 1
        assert report.gap_cv >= 0

    def test_degenerate_inputs(self):
        assert hardness_report(np.array([])).num_keys == 0
        assert hardness_report(np.array([7.0])).conflict_rate == 0.0

    def test_gap_cv_zero_for_uniform_spacing(self):
        keys = np.arange(0, 1_000, 10, dtype=np.float64)
        assert hardness_report(keys).gap_cv == pytest.approx(0.0)
