"""Tests for the synthetic SOSD-shaped dataset generators."""

import numpy as np
import pytest

from repro.data import (
    DATASET_NAMES,
    load_dataset,
    make_payloads,
    prepare_keys,
    split_initial,
)
from repro.data.datasets import MAX_KEY, _decimate, _morton_interleave


class TestGeneratorContracts:
    @pytest.mark.parametrize("name", sorted(DATASET_NAMES))
    @pytest.mark.parametrize("n", [1_000, 20_000])
    def test_exact_count_sorted_unique(self, name, n):
        keys = load_dataset(name, n, seed=1)
        assert len(keys) == n
        assert keys.dtype == np.float64
        assert bool(np.all(np.diff(keys) > 0))

    @pytest.mark.parametrize("name", sorted(DATASET_NAMES))
    def test_keys_are_exact_integers_in_range(self, name):
        keys = load_dataset(name, 5_000, seed=2)
        assert keys[0] >= 0
        assert keys[-1] <= MAX_KEY
        assert bool(np.all(keys == np.floor(keys)))

    @pytest.mark.parametrize("name", sorted(DATASET_NAMES))
    def test_deterministic_given_seed(self, name):
        a = load_dataset(name, 2_000, seed=5)
        b = load_dataset(name, 2_000, seed=5)
        assert np.array_equal(a, b)
        c = load_dataset(name, 2_000, seed=6)
        assert not np.array_equal(a, c)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("zipfian", 100)


class TestDistributionShapes:
    def test_fb_has_heavy_tail(self):
        keys = load_dataset("fb", 20_000, seed=3)
        # Top 1% of keys stretch far beyond the body.
        body_span = keys[int(0.99 * len(keys))] - keys[0]
        full_span = keys[-1] - keys[0]
        assert full_span > 1.5 * body_span

    def test_wikits_gaps_mostly_minimal(self):
        keys = load_dataset("wikits", 20_000, seed=3)
        gaps = np.diff(keys)
        # The saturated time grid: the modal gap dominates.
        modal = np.median(gaps)
        assert np.mean(gaps == modal) > 0.4

    def test_logn_right_skewed(self):
        keys = load_dataset("logn", 20_000, seed=3)
        # Long right tail: the top keys sit far above the median, and
        # the mean is pulled visibly to the right of it.
        assert keys[-1] > 8 * np.median(keys)
        assert keys.mean() > np.median(keys) * 1.15

    def test_books_has_power_law_gaps(self):
        keys = load_dataset("books", 20_000, seed=3)
        gaps = np.diff(keys)
        assert gaps.max() > 100 * np.median(gaps)

    def test_osm_is_clustered(self):
        keys = load_dataset("osm", 20_000, seed=3)
        gaps = np.diff(keys)
        # Clusters: most gaps tiny, a few enormous inter-cluster jumps.
        assert gaps.max() > 1000 * np.median(gaps)

    def test_conflict_difficulty_ordering(self):
        """The Table 6 raison d'etre: logn/wikits easy, fb/books hard."""
        from repro import DILI

        nested = {}
        for name in ("fb", "wikits", "books", "logn"):
            keys = load_dataset(name, 20_000, seed=4)
            index = DILI()
            index.bulk_load(keys)
            nested[name] = index.opt_stats.nested_leaves / len(keys)
        assert nested["logn"] < nested["fb"]
        assert nested["wikits"] < nested["books"]


class TestDecimate:
    def test_preserves_count(self):
        keys = np.arange(100, dtype=np.float64)
        out = _decimate(keys, 40)
        assert len(out) == 40
        assert out[0] == keys[0] and out[-1] == keys[-1]

    def test_identity_when_exact(self):
        keys = np.arange(10, dtype=np.float64)
        assert np.array_equal(_decimate(keys, 10), keys)

    def test_rejects_shortfall(self):
        with pytest.raises(ValueError):
            _decimate(np.arange(5, dtype=np.float64), 10)


class TestMortonInterleave:
    def test_small_examples(self):
        xs = np.array([0, 1, 0, 1], dtype=np.uint64)
        ys = np.array([0, 0, 1, 1], dtype=np.uint64)
        codes = _morton_interleave(xs, ys)
        assert list(codes) == [0, 1, 2, 3]

    def test_locality(self):
        # Nearby points in 2-D stay nearby in code space (coarsely).
        xs = np.array([100, 101], dtype=np.uint64)
        ys = np.array([200, 200], dtype=np.uint64)
        codes = _morton_interleave(xs, ys)
        assert abs(int(codes[1]) - int(codes[0])) < 16


class TestRecords:
    def test_prepare_keys_sorts_and_dedups(self):
        out = prepare_keys([5.0, 1.0, 5.0, 3.0])
        assert list(out) == [1.0, 3.0, 5.0]

    def test_prepare_keys_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            prepare_keys([-1.0])
        with pytest.raises(ValueError):
            prepare_keys([2.0**60])

    def test_make_payloads_deterministic(self):
        a = make_payloads(100, seed=1)
        b = make_payloads(100, seed=1)
        assert np.array_equal(a, b)
        assert len(a) == 100

    def test_split_initial_partitions(self):
        keys = np.arange(1000, dtype=np.float64)
        a, b = split_initial(keys, 0.5, seed=0)
        assert len(a) == 500 and len(b) == 500
        assert bool(np.all(np.diff(a) > 0))
        assert bool(np.all(np.diff(b) > 0))
        merged = np.sort(np.concatenate([a, b]))
        assert np.array_equal(merged, keys)

    def test_split_initial_fraction_bounds(self):
        keys = np.arange(10, dtype=np.float64)
        with pytest.raises(ValueError):
            split_initial(keys, 0.0)
        with pytest.raises(ValueError):
            split_initial(keys, 1.0)


class TestMmapLoading:
    """The multi-process path: datasets served from an on-disk cache."""

    def test_mmap_equals_in_memory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
        plain = load_dataset("logn", 3_111, seed=9)
        mapped = load_dataset("logn", 3_111, seed=9, mmap_mode="r")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(np.asarray(mapped), plain)

    def test_mmap_is_read_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
        mapped = load_dataset("fb", 1_234, seed=9, mmap_mode="r")
        with pytest.raises((ValueError, TypeError)):
            mapped[0] = 0.0

    def test_writable_modes_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("logn", 100, mmap_mode="r+")
        with pytest.raises(ValueError):
            load_dataset("logn", 100, mmap_mode="w+")

    def test_cache_file_created_once_and_reused(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
        a = load_dataset("wikits", 2_345, seed=4, mmap_mode="r")
        files = list(tmp_path.glob("wikits-2345-4.npy"))
        assert len(files) == 1
        mtime = files[0].stat().st_mtime_ns
        b = load_dataset("wikits", 2_345, seed=4, mmap_mode="r")
        assert files[0].stat().st_mtime_ns == mtime
        assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_mmap_shares_page_cache_across_views(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
        mapped = load_dataset("books", 1_777, seed=2, mmap_mode="r")
        again = np.load(mapped.filename, mmap_mode="r")
        assert np.array_equal(np.asarray(mapped), np.asarray(again))
