"""Process-wide fault injection -- alias for :mod:`repro.resilience.faults`.

The durability subsystem grew the first injector
(:class:`repro.durability.faultpoints.FaultInjector`, WAL/snapshot
crash points only); the resilience layer generalized fault injection
to every serving structure.  This module is the stable import path:

    from repro import faults
    registry = faults.FaultRegistry()
    registry.inject(faults.FAULT_LEAF_MODEL, index, rng)
    wal_faults = registry.durability()   # memoized FaultInjector

Lint rule CHK006 forbids constructing ``FaultInjector`` directly
anywhere else -- go through :meth:`FaultRegistry.durability` so every
armed crash point in a process is attributable to one registry.
"""

from __future__ import annotations

from repro.resilience.faults import *  # noqa: F401,F403
from repro.resilience.faults import __all__  # noqa: F401
