"""Crash-safe memory-mapped serving format for the compiled flat plan.

ROADMAP item 2 ("disk mode done right"): the flat plan is already
structure-of-arrays numpy, so serving it from disk is a matter of
writing those buffers into a file that can be *verified* without being
*deserialized* and then ``np.memmap``-ing them back.  Opening a plan is
O(1) -- no unpickle, no rebuild -- and N server processes share one
physical copy of the buffers through the page cache.

* :mod:`repro.planstore.format` -- the on-disk base/delta file layout:
  CRC-framed header (format version, per-buffer checksums, source WAL
  LSN, commit marker), written with the same temp + fsync +
  ``os.replace`` discipline as snapshots.
* :mod:`repro.planstore.store` -- :class:`PlanStore`: memory-maps a
  verified base file, overlays its delta chain, and serves
  ``get_batch`` / ``contains_batch`` / ``count_range_batch`` zero-copy
  and trace-identical to the in-memory :class:`~repro.core.flat.FlatPlan`.
* :mod:`repro.planstore.serve` -- :class:`PlanDirectory` (generation
  naming, publishing, quarantine) and :class:`MmapDILI`, the serving
  handle whose ``open`` is a *fallback ladder*: newest verified plan ->
  previous verified generation -> snapshot+WAL rebuild -> DEGRADED.
* :mod:`repro.planstore.corrupt` -- byte-surgery fault injectors
  (torn header, truncated buffer, flipped byte, stale LSN, missing
  delta) used by :class:`repro.faults.FaultRegistry` and the chaos
  harness.
* :mod:`repro.planstore.chaos` -- the seeded corruption sweep asserting
  every ladder rung serves zero wrong reads (``repro plan chaos``).

This package and :mod:`repro.durability` are the only modules allowed
to touch ``np.memmap`` / raw ``mmap`` / ``pickle.load`` (lint rule
CHK007): every byte read here is checksummed before it is trusted.
"""

from repro.planstore.chaos import (
    PlanChaosResult,
    PlanChaosRun,
    run_plan_chaos,
)
from repro.planstore.corrupt import (
    PLAN_FAULT_KINDS,
    PlanFaultReport,
    inject_plan_fault,
)
from repro.planstore.format import (
    DELTA_MAGIC,
    PLAN_MAGIC,
    PLAN_VERSION,
    PlanFormatError,
    PlanStaleError,
    PlanStoreError,
    read_delta_file,
    read_plan_header,
    write_delta_file,
    write_plan_file,
)
from repro.planstore.serve import (
    MmapDILI,
    PlanDirectory,
    ServingUnavailable,
)
from repro.planstore.store import PlanStore

__all__ = [
    "DELTA_MAGIC",
    "PLAN_FAULT_KINDS",
    "PLAN_MAGIC",
    "PLAN_VERSION",
    "MmapDILI",
    "PlanChaosResult",
    "PlanChaosRun",
    "PlanDirectory",
    "PlanFaultReport",
    "PlanFormatError",
    "PlanStaleError",
    "PlanStore",
    "PlanStoreError",
    "ServingUnavailable",
    "inject_plan_fault",
    "read_delta_file",
    "read_plan_header",
    "run_plan_chaos",
    "write_delta_file",
    "write_plan_file",
]
