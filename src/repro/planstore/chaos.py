"""Seeded plan-store corruption sweep: every fault, zero wrong reads.

For each plan fault kind this harness builds a fresh durable state
directory with a realistic publish history (bulk load, logged inserts,
two base generations, a delta chain, a live WAL tail), injects exactly
one fault through :meth:`repro.faults.FaultRegistry.inject_plan`, then
opens an :class:`~repro.planstore.serve.MmapDILI` and checks three
things:

1. the ladder lands on the **expected rung** for that damage --
   torn header / truncated buffer / flipped byte fall back to the
   previous generation (rung 2), a stale LSN invalidates every
   generation and forces the recovery rebuild (rung 3), a missing delta
   is healed by WAL-tail replay without leaving rung 1;
2. **zero wrong reads**: every ``get_batch`` / ``contains_batch`` /
   ``count_range_batch`` answer matches an oracle rebuilt from
   snapshot + WAL (which the injections never touch), with refusal
   (:class:`ServingUnavailable`) counting as unavailable, never wrong;
3. checksum-style damage is **quarantined, never deleted** -- the
   corrupt artifact survives on disk under its ``.quarantined`` name.

Runs are fully determined by the seed (``repro plan chaos`` is the CI
entry point).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.durability.durable import DurableDILI
from repro.durability.recovery import recover
from repro.planstore.corrupt import (
    FAULT_PLAN_FLIPPED_BYTE,
    FAULT_PLAN_MISSING_DELTA,
    FAULT_PLAN_STALE_LSN,
    FAULT_PLAN_TORN_HEADER,
    FAULT_PLAN_TRUNCATED_BUFFER,
    PLAN_FAULT_KINDS,
    PlanFaultReport,
)
from repro.planstore.serve import MmapDILI, PlanDirectory, ServingUnavailable

#: Rung each kind must land on under the standard publish history.
EXPECTED_RUNG: dict[str, int] = {
    FAULT_PLAN_TORN_HEADER: 2,
    FAULT_PLAN_TRUNCATED_BUFFER: 2,
    FAULT_PLAN_FLIPPED_BYTE: 2,
    FAULT_PLAN_STALE_LSN: 3,
    FAULT_PLAN_MISSING_DELTA: 1,
}

#: Kinds whose damaged file must end up quarantined (a missing delta
#: is a chain gap, not a corrupt file the reader can rename).
QUARANTINE_KINDS: frozenset[str] = frozenset(
    {
        FAULT_PLAN_TORN_HEADER,
        FAULT_PLAN_TRUNCATED_BUFFER,
        FAULT_PLAN_FLIPPED_BYTE,
        FAULT_PLAN_STALE_LSN,
    }
)


@dataclass(frozen=True)
class PlanChaosRun:
    """Outcome of one (kind, fresh directory) chaos round."""

    kind: str
    rung: int
    expected_rung: int
    wrong_reads: int
    probes: int
    served: bool
    quarantined: tuple[str, ...]
    report: PlanFaultReport | None

    @property
    def ok(self) -> bool:
        if self.wrong_reads != 0 or self.rung != self.expected_rung:
            return False
        if self.kind in QUARANTINE_KINDS and not self.quarantined:
            return False
        return True


@dataclass
class PlanChaosResult:
    """Aggregate of a full sweep; ``ok`` is the CI gate."""

    seed: int
    runs: list[PlanChaosRun] = field(default_factory=list)

    @property
    def wrong_reads(self) -> int:
        return sum(run.wrong_reads for run in self.runs)

    @property
    def ok(self) -> bool:
        return bool(self.runs) and all(run.ok for run in self.runs)


def _build_state(
    state_dir: str,
    rng: np.random.Generator,
    n_keys: int,
    *,
    tail_deltas: int,
    late_generation: bool,
    final_snapshot: bool,
) -> np.ndarray:
    """Publish history: bulk load + logged inserts + plan generations.

    ``tail_deltas`` deltas are cut from the post-generation-2 inserts;
    with ``late_generation`` every insert lands *before* generation 2
    (so a final snapshot leaves it exactly current); ``final_snapshot``
    checkpoints at the end, truncating the WAL.
    """
    keys = np.sort(
        rng.choice(n_keys * 10, size=n_keys, replace=False)
    ).astype(np.float64)
    segs = np.array_split(np.arange(n_keys), 5)
    values = [f"v{int(k)}" for k in keys]

    def vals(seg):
        return [values[i] for i in seg]

    durable = DurableDILI(state_dir)
    durable.bulk_load(keys[segs[0]], vals(segs[0]))
    durable.insert_batch(keys[segs[1]], vals(segs[1]))
    durable.publish_plan()
    durable.insert_batch(keys[segs[2]], vals(segs[2]))
    if late_generation:
        durable.insert_batch(keys[segs[3]], vals(segs[3]))
        durable.insert_batch(keys[segs[4]], vals(segs[4]))
        durable.publish_plan()
    else:
        durable.publish_plan()
        durable.insert_batch(keys[segs[3]], vals(segs[3]))
        if tail_deltas >= 1:
            durable.publish_tail()
        durable.insert_batch(keys[segs[4]], vals(segs[4]))
        if tail_deltas >= 2:
            durable.publish_tail()
    if final_snapshot:
        durable.snapshot()
    durable.close()
    return keys


def _count_wrong_reads(
    served: MmapDILI,
    oracle,
    keys: np.ndarray,
    rng: np.random.Generator,
) -> tuple[int, int, bool]:
    """``(wrong, probes, served_any)`` comparing every read family."""
    probes = np.concatenate([keys, keys + 0.37, keys - 0.41])
    rng.shuffle(probes)
    lo, hi = float(keys.min()) - 2.0, float(keys.max()) + 2.0
    los = rng.uniform(lo, hi, size=32)
    his = los + rng.uniform(0.0, (hi - lo) / 2.0, size=32)
    total = len(probes) * 2 + len(los)
    wrong = 0
    try:
        got_values = served.get_batch(probes)
        got_contains = served.contains_batch(probes)
        got_counts = served.count_range_batch(los, his)
    except ServingUnavailable:
        # Refusing to serve is degraded, never wrong.
        return 0, total, False
    want_values = oracle.get_batch(probes)
    wrong += sum(
        1 for g, w in zip(got_values, want_values) if g != w
    )
    wrong += int(
        np.sum(got_contains != oracle.contains_batch(probes))
    )
    wrong += int(
        np.sum(
            np.asarray(got_counts)
            != np.asarray(oracle.count_range_batch(los, his))
        )
    )
    return wrong, total, True


def run_plan_chaos(
    workdir,
    *,
    seed: int = 0,
    n_keys: int = 400,
    kinds: tuple[str, ...] = PLAN_FAULT_KINDS,
    registry=None,
) -> PlanChaosResult:
    """Run the full corruption sweep under ``workdir``.

    Args:
        workdir: Scratch directory; one fresh state dir per kind.
        seed: Determines keys, segment splits, and injection offsets.
        n_keys: Keys per state directory (5 segments are cut from it).
        kinds: Fault kinds to sweep (default: all of them).
        registry: A :class:`repro.faults.FaultRegistry` to record the
            injections in (a private one is created if omitted).
    """
    if registry is None:
        from repro.resilience.faults import FaultRegistry

        registry = FaultRegistry()
    workdir = os.fspath(workdir)
    result = PlanChaosResult(seed=seed)
    for round_no, kind in enumerate(kinds):
        rng = np.random.default_rng((seed, round_no))
        state_dir = os.path.join(workdir, kind)
        stale = kind == FAULT_PLAN_STALE_LSN
        keys = _build_state(
            state_dir,
            rng,
            n_keys,
            tail_deltas=2 if kind == FAULT_PLAN_MISSING_DELTA else 1,
            late_generation=stale,
            final_snapshot=stale,
        )
        plans = PlanDirectory.for_state_dir(state_dir)
        newest = plans.generations()[-1]
        if kind == FAULT_PLAN_MISSING_DELTA:
            target = plans.delta_path(newest, 1)
        else:
            target = plans.base_path(newest)
        report = registry.inject_plan(kind, target, rng)
        oracle = recover(state_dir).index
        served = MmapDILI(state_dir)
        try:
            wrong, probes, was_served = _count_wrong_reads(
                served, oracle, keys, rng
            )
            result.runs.append(
                PlanChaosRun(
                    kind=kind,
                    rung=served.rung,
                    expected_rung=EXPECTED_RUNG.get(kind, served.rung),
                    wrong_reads=wrong,
                    probes=probes,
                    served=was_served,
                    quarantined=tuple(served.quarantined),
                    report=report,
                )
            )
        finally:
            served.close()
    return result
