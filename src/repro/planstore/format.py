"""On-disk layout of plan base files and delta files.

Base file (little-endian; see ``docs/durability.md``)::

    8s   magic "DILIPLN1"
    u32  header_len
    u32  header_crc32            -- over the header JSON bytes
    ...  header JSON, header_len bytes
    ...  buffer regions, 8-byte aligned, in header order
    8s   commit marker "DILICMT1" -- the last 8 bytes of the file

The header carries the format version, the source WAL LSN (staleness
metadata: every WAL record with ``seqno <= wal_lsn`` is folded into the
buffers), the generation number, and one descriptor per buffer --
``name`` / ``dtype`` / ``offset`` / ``count`` / ``nbytes`` / ``crc32``.
Verifying a file therefore needs two reads: the framed header (O(1),
done at every open) and the buffer CRCs (O(n), done lazily on first
read or eagerly by the auditor).  The payload is **never** pickled:
buffers are raw numpy memory, written with ``tofile`` semantics and
mapped back with ``np.memmap``.

Values are the one non-numeric column: each value is pickled
*individually* into ``value_bytes`` with ``value_offsets`` (int64,
``count+1`` entries) delimiting it, so a read decodes exactly the
values it returns -- opening never materializes the value column.

Delta file::

    8s   magic "DILIDLT1"
    u32  header_len
    u32  header_crc32
    ...  header JSON: version, base_generation, seq, wal_lsn,
         payload_len, payload_crc32
    ...  payload: pickled list of (opcode, payload_bytes) op frames --
         the same opcode/payload encoding as WAL records, so delta
         replay and WAL-tail replay share one code path
    8s   commit marker

Both writers use the snapshot module's discipline: temp file in the
same directory, fsync, ``os.replace``, directory fsync.  A crash at any
instant leaves either no new file or a complete one; a torn temp file
fails the magic/CRC/commit-marker checks and is never adopted.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib

import numpy as np

from repro.durability.faultpoints import NULL_FAULTS, FaultInjector
from repro.durability.snapshot import _fsync_dir

PLAN_MAGIC = b"DILIPLN1"
DELTA_MAGIC = b"DILIDLT1"
COMMIT_MARKER = b"DILICMT1"
PLAN_VERSION = 1

_FRAME = struct.Struct("<II")  # header_len, header_crc32
_PREFIX_SIZE = 8 + _FRAME.size

# A corrupted length field must not make readers allocate gigabytes.
MAX_HEADER_LEN = 1 << 20
MAX_DELTA_PAYLOAD = 1 << 30

#: Buffer serialization order.  ``sorted_keys`` is appended only when it
#: does not alias ``pair_keys`` (mixed pair/dense trees).
BUFFER_NAMES: tuple[str, ...] = (
    "kind", "slope", "intercept", "size", "base", "region",
    "slot_kind", "slot_ref", "pair_keys", "dense_keys",
)


class PlanStoreError(ValueError):
    """Base class for every plan-store open/verify failure."""


class PlanFormatError(PlanStoreError):
    """A plan or delta file is torn, corrupt, or not a plan file."""


class PlanStaleError(PlanStoreError):
    """A plan file's WAL LSN predates the snapshot: the records needed
    to bring it current were truncated away and are gone forever."""


def _align8(n: int) -> int:
    return (n + 7) & ~7


def encode_values(values) -> tuple[np.ndarray, np.ndarray]:
    """Pickle each value individually into a delimited byte column."""
    offsets = np.zeros(len(values) + 1, dtype=np.int64)
    parts = []
    total = 0
    for i, value in enumerate(values):
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(blob)
        total += len(blob)
        offsets[i + 1] = total
    joined = b"".join(parts)
    return np.frombuffer(joined, dtype=np.uint8).copy(), offsets


def write_plan_file(
    path,
    plan,
    *,
    wal_lsn: int = 0,
    generation: int = 0,
    faults: FaultInjector | None = None,
) -> int:
    """Atomically serialize ``plan`` to ``path``; returns bytes written.

    Args:
        path: Final plan-file location; replaced atomically.
        plan: A :class:`~repro.core.flat.FlatPlan`.
        wal_lsn: Highest WAL seqno already folded into the buffers.
        generation: Monotonic generation number (for the header only;
            naming is :class:`repro.planstore.serve.PlanDirectory`'s
            job).
        faults: Crash-point injector (tests only).
    """
    path = os.fspath(path)
    faults = faults if faults is not None else NULL_FAULTS

    value_bytes, value_offsets = encode_values(plan.values)
    buffers: list[tuple[str, np.ndarray]] = [
        (name, np.ascontiguousarray(getattr(plan, name)))
        for name in BUFFER_NAMES
    ]
    sorted_is_pair = plan.sorted_keys is plan.pair_keys or (
        len(plan.dense_keys) == 0
    )
    if not sorted_is_pair:
        buffers.append(
            ("sorted_keys", np.ascontiguousarray(plan.sorted_keys))
        )
    buffers.append(("value_offsets", value_offsets))
    buffers.append(("value_bytes", value_bytes))

    # Lay the buffers out twice: descriptor offsets depend on the header
    # length, which depends on the descriptors.  Offsets are relative to
    # the end of the header frame, so one pass suffices.
    descs = []
    rel = 0
    for name, arr in buffers:
        rel = _align8(rel)
        descs.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "offset": rel,
                "count": int(arr.size),
                "nbytes": int(arr.nbytes),
                "crc32": zlib.crc32(arr.tobytes()),
            }
        )
        rel += int(arr.nbytes)
    buffers_len = _align8(rel)

    header = {
        "version": PLAN_VERSION,
        "wal_lsn": int(wal_lsn),
        "generation": int(generation),
        "depth": int(plan.depth),
        "num_pairs": int(plan.num_pairs),
        "value_count": len(plan.values),
        "sorted_is_pair": bool(sorted_is_pair),
        "buffers": descs,
    }
    # file_size participates in its own header: fix it by iterating the
    # encoding until the length stabilizes (two rounds, since only the
    # digit count of file_size can change).
    for _ in range(3):
        blob = json.dumps(header, sort_keys=True).encode("ascii")
        file_size = (
            _PREFIX_SIZE + len(blob) + buffers_len + len(COMMIT_MARKER)
        )
        if header.get("file_size") == file_size:
            break
        header["file_size"] = file_size
    blob = json.dumps(header, sort_keys=True).encode("ascii")

    out = bytearray()
    out += PLAN_MAGIC
    out += _FRAME.pack(len(blob), zlib.crc32(blob))
    out += blob
    data_start = len(out)
    out += b"\0" * buffers_len
    for desc, (_, arr) in zip(descs, buffers):
        lo = data_start + desc["offset"]
        out[lo:lo + desc["nbytes"]] = arr.tobytes()
    out += COMMIT_MARKER
    return _atomic_write(path, bytes(out), faults, "plan")


def _atomic_write(
    path: str, data: bytes, faults: FaultInjector, kind: str
) -> int:
    """temp + fsync + ``os.replace`` + directory fsync, crash-pointed."""
    tmp_path = path + ".tmp"
    faults.fire(f"before_{kind}_write")
    with open(tmp_path, "wb") as fh:
        fraction = faults.torn(f"mid_{kind}_write")
        if fraction is not None:
            faults.tear_and_crash(f"mid_{kind}_write", fh, data, fraction)
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    if kind == "plan":
        faults.fire("before_plan_rename")
    os.replace(tmp_path, path)
    _fsync_dir(os.path.dirname(path))
    faults.fire(f"after_{kind}_{'rename' if kind == 'plan' else 'write'}")
    return len(data)


def read_plan_header(path) -> dict:
    """Parse and fully sanity-check a base-file header -- O(1).

    Verifies the magic, the header frame CRC, the format version, the
    recorded file size against the real one, the trailing commit
    marker, and that every buffer descriptor is self-consistent and
    inside the file.  Buffer *contents* are not read (that is
    :meth:`PlanStore.verify`'s job).

    Returns the header dict with one extra key, ``data_start``: the
    absolute file offset buffer offsets are relative to.
    """
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        raise PlanFormatError(f"{path}: unreadable: {exc}") from None
    with open(path, "rb") as fh:
        prefix = fh.read(_PREFIX_SIZE)
        if len(prefix) < _PREFIX_SIZE:
            raise PlanFormatError(f"{path}: truncated plan header")
        if prefix[:8] != PLAN_MAGIC:
            raise PlanFormatError(f"{path} is not a DILI plan file")
        header_len, header_crc = _FRAME.unpack(prefix[8:])
        if header_len > MAX_HEADER_LEN:
            raise PlanFormatError(
                f"{path}: implausible header length {header_len}"
            )
        blob = fh.read(header_len)
        if len(blob) < header_len:
            raise PlanFormatError(f"{path}: truncated plan header")
        if zlib.crc32(blob) != header_crc:
            raise PlanFormatError(f"{path}: plan header checksum mismatch")
        try:
            header = json.loads(blob.decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            # CRC-valid bytes that fail to parse: a writer bug, but
            # still a refused open, never a crash.
            raise PlanFormatError(
                f"{path}: undecodable plan header: {exc}"
            ) from None
        if header.get("version") != PLAN_VERSION:
            raise PlanFormatError(
                f"{path}: unsupported plan version {header.get('version')!r}"
            )
        if header.get("file_size") != size:
            raise PlanFormatError(
                f"{path}: header promises {header.get('file_size')} bytes, "
                f"file holds {size}"
            )
        fh.seek(size - len(COMMIT_MARKER))
        if fh.read(len(COMMIT_MARKER)) != COMMIT_MARKER:
            raise PlanFormatError(f"{path}: commit marker missing")
    data_start = _PREFIX_SIZE + header_len
    data_end = size - len(COMMIT_MARKER)
    descs = header.get("buffers")
    if not isinstance(descs, list) or not descs:
        raise PlanFormatError(f"{path}: header lists no buffers")
    seen = set()
    for desc in descs:
        try:
            name = desc["name"]
            dtype = np.dtype(desc["dtype"])
            offset = int(desc["offset"])
            count = int(desc["count"])
            nbytes = int(desc["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanFormatError(
                f"{path}: malformed buffer descriptor: {exc}"
            ) from None
        if name in seen:
            raise PlanFormatError(f"{path}: duplicate buffer {name!r}")
        seen.add(name)
        if count * dtype.itemsize != nbytes:
            raise PlanFormatError(
                f"{path}: buffer {name!r} claims {count} x "
                f"{dtype.itemsize}B != {nbytes}B"
            )
        if offset < 0 or data_start + offset + nbytes > data_end:
            raise PlanFormatError(
                f"{path}: buffer {name!r} extent outside the file"
            )
    missing = set(BUFFER_NAMES + ("value_offsets", "value_bytes")) - seen
    if missing:
        raise PlanFormatError(
            f"{path}: header missing buffers {sorted(missing)}"
        )
    header["data_start"] = data_start
    return header


# ----------------------------------------------------------------------
# Delta files
# ----------------------------------------------------------------------


def write_delta_file(
    path,
    ops: list,
    *,
    base_generation: int,
    seq: int,
    wal_lsn: int,
    faults: FaultInjector | None = None,
) -> int:
    """Atomically write one delta file; returns bytes written.

    Args:
        path: Final delta-file location.
        ops: ``(opcode, payload_bytes)`` frames, WAL-record encoded.
        base_generation: Generation of the base file this delta extends.
        seq: Position in the delta chain (0 is the first delta).
        wal_lsn: Highest WAL seqno folded in once this delta applies.
        faults: Crash-point injector (tests only).
    """
    path = os.fspath(path)
    faults = faults if faults is not None else NULL_FAULTS
    payload = pickle.dumps(
        [(int(op), bytes(p)) for op, p in ops],
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = {
        "version": PLAN_VERSION,
        "base_generation": int(base_generation),
        "seq": int(seq),
        "wal_lsn": int(wal_lsn),
        "payload_len": len(payload),
        "payload_crc": zlib.crc32(payload),
    }
    blob = json.dumps(header, sort_keys=True).encode("ascii")
    data = (
        DELTA_MAGIC
        + _FRAME.pack(len(blob), zlib.crc32(blob))
        + blob
        + payload
        + COMMIT_MARKER
    )
    return _atomic_write(path, data, faults, "delta")


def read_delta_file(path) -> dict:
    """Read and verify one delta file.

    Returns the header dict plus ``ops``, the decoded op frames.  The
    payload CRC is checked over the raw bytes *before* unpickling, so a
    flipped byte is a :class:`PlanFormatError`, never a pickle crash.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise PlanFormatError(f"{path}: unreadable: {exc}") from None
    if len(data) < _PREFIX_SIZE or data[:8] != DELTA_MAGIC:
        raise PlanFormatError(f"{path} is not a DILI plan delta")
    header_len, header_crc = _FRAME.unpack(data[8:_PREFIX_SIZE])
    if header_len > MAX_HEADER_LEN:
        raise PlanFormatError(f"{path}: implausible header length")
    blob = data[_PREFIX_SIZE:_PREFIX_SIZE + header_len]
    if len(blob) < header_len or zlib.crc32(blob) != header_crc:
        raise PlanFormatError(f"{path}: delta header checksum mismatch")
    try:
        header = json.loads(blob.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PlanFormatError(
            f"{path}: undecodable delta header: {exc}"
        ) from None
    if header.get("version") != PLAN_VERSION:
        raise PlanFormatError(
            f"{path}: unsupported delta version {header.get('version')!r}"
        )
    payload_len = int(header.get("payload_len", -1))
    if payload_len < 0 or payload_len > MAX_DELTA_PAYLOAD:
        raise PlanFormatError(f"{path}: implausible delta payload length")
    lo = _PREFIX_SIZE + header_len
    payload = data[lo:lo + payload_len]
    tail = data[lo + payload_len:]
    if len(payload) < payload_len or tail != COMMIT_MARKER:
        raise PlanFormatError(f"{path}: truncated delta payload")
    if zlib.crc32(payload) != header.get("payload_crc"):
        raise PlanFormatError(f"{path}: delta payload checksum mismatch")
    try:
        ops = pickle.loads(payload)
    except Exception as exc:  # checksummed bytes that still fail: a bug
        raise PlanFormatError(
            f"{path}: delta payload unpicklable: {exc}"
        ) from None
    if not isinstance(ops, list):
        raise PlanFormatError(f"{path}: delta payload is not an op list")
    header["ops"] = ops
    return header
