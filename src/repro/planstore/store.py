"""Zero-copy plan serving: a :class:`FlatPlan` over ``np.memmap`` buffers.

:meth:`PlanStore.open` reads only the CRC-framed header (O(1)), maps
every buffer read-only, and wraps them in a real
:class:`~repro.core.flat.FlatPlan` -- the descent, tracer replay, and
range-count code paths are literally the in-memory ones, so mmap-served
reads are trace-identical by construction, not by reimplementation.

Buffer *contents* are verified lazily: the first read checks every
buffer's CRC32 against the header (memoized), so a flipped byte
anywhere in the file is caught before any answer derived from it is
returned, while open stays O(1).  :meth:`PlanStore.verify` runs the
same check eagerly for auditors.

Values are decoded per returned index from the delimited
``value_bytes`` column -- a batch ``get`` unpickles exactly the values
it hands back, never the whole column.

Deltas and WAL-tail records replay into a key-level *overlay* (the
buffers themselves are immutable):

* ``overlay[k] = (value, in_base)`` -- ``k`` was inserted (``in_base``
  False) or updated (True) after the base was published;
* ``overlay[k] = (_TOMBSTONE, True)`` -- ``k`` was deleted.  By
  invariant a tombstone only exists for base-resident keys: deleting an
  overlay-only insert just removes its entry.

``count_range_batch`` is then the base count (two ``searchsorted``)
plus overlay-inserted keys in range minus tombstoned keys in range.
Tracer replay charges the *base* descent only, so trace-identity to
the in-memory plan is exact for overlay-free stores (the property the
parity tests pin down) and approximate once deltas apply.
"""

from __future__ import annotations

import pickle
import threading
import zlib

import numpy as np

from repro.core.flat import FlatPlan
from repro.durability.wal import (
    OP_BULK_INSERT,
    OP_DELETE,
    OP_DELETE_BATCH,
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_UPDATE,
    OP_UPDATE_BATCH,
)
from repro.planstore.format import (
    PlanFormatError,
    read_delta_file,
    read_plan_header,
)
from repro.simulate.latency import DEFAULT_CYCLES, CyclesPerOp
from repro.simulate.tracer import NULL_TRACER, NullTracer, Tracer

_TOMBSTONE = object()


class _LazyValues:
    """Sequence facade over the delimited pickle column.

    :class:`FlatPlan` only needs ``len`` (and indexing for the scalar
    paths the store never uses); decoding happens per index, on demand.
    """

    __slots__ = ("_bytes", "_offsets")

    def __init__(self, value_bytes: np.ndarray, offsets: np.ndarray):
        self._bytes = value_bytes
        self._offsets = offsets

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, i: int):
        lo, hi = int(self._offsets[i]), int(self._offsets[i + 1])
        return pickle.loads(  # repro-check: allow CHK011 -- PlanStore._ensure_verified checksums the mapped file before any read indexes this column (lazy-verify contract)
            self._bytes[lo:hi].tobytes()
        )


class PlanStore:
    """A read-only serving handle over one plan file (+ delta chain).

    Construct via :meth:`open`.  Thread-safe for reads after open; the
    only internal mutation is the verification memo and the overlay
    count cache, both guarded by a lock.
    """

    def __init__(
        self,
        path: str,
        header: dict,
        plan: FlatPlan,
        values: _LazyValues,
        *,
        cycles: CyclesPerOp = DEFAULT_CYCLES,
    ) -> None:
        self.path = path
        self.header = header
        self.generation = int(header["generation"])
        #: Highest WAL seqno folded in (advanced by deltas / tail replay).
        self.wal_lsn = int(header["wal_lsn"])
        self._plan = plan
        self._values = values
        self._cycles = cycles
        self._arrays: dict[str, np.ndarray] = {}
        self._verified = False
        self._lock = threading.Lock()
        self._overlay: dict[float, tuple] = {}
        self._count_cache: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path,
        *,
        deltas=(),
        cycles: CyclesPerOp = DEFAULT_CYCLES,
    ) -> "PlanStore":
        """Map a plan file and overlay its delta chain.

        O(1) in the key count: the header is parsed and checked, the
        buffers are memory-mapped but not read.  Delta files (already
        ordered) are fully verified and replayed -- they are small by
        design.

        Raises:
            PlanFormatError: Torn/corrupt/misversioned base or delta,
                or a delta chain that skips a sequence number or names
                a different base generation.
        """
        import os

        path = os.fspath(path)
        header = read_plan_header(path)
        data_start = header["data_start"]
        arrays: dict[str, np.ndarray] = {}
        for desc in header["buffers"]:
            dtype = np.dtype(desc["dtype"])
            if desc["count"] == 0:
                arrays[desc["name"]] = np.empty(0, dtype=dtype)
            else:
                arrays[desc["name"]] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=data_start + desc["offset"],
                    shape=(desc["count"],),
                )
        values = _LazyValues(arrays["value_bytes"], arrays["value_offsets"])
        pair_keys = arrays["pair_keys"]
        sorted_keys = (
            pair_keys if header["sorted_is_pair"] else arrays["sorted_keys"]
        )
        plan = FlatPlan(
            kind=arrays["kind"],
            slope=arrays["slope"],
            intercept=arrays["intercept"],
            size=arrays["size"],
            base=arrays["base"],
            region=arrays["region"],
            slot_kind=arrays["slot_kind"],
            slot_ref=arrays["slot_ref"],
            pair_keys=pair_keys,
            dense_keys=arrays["dense_keys"],
            values=values,
            sorted_keys=sorted_keys,
            depth=int(header["depth"]),
        )
        store = cls(path, header, plan, values, cycles=cycles)
        store._arrays = arrays
        store._apply_deltas(deltas)
        return store

    def _apply_deltas(self, deltas) -> None:
        expected_seq = 1
        for delta_path in deltas:
            delta = read_delta_file(delta_path)
            if delta["base_generation"] != self.generation:
                raise PlanFormatError(
                    f"{delta_path}: delta targets generation "
                    f"{delta['base_generation']}, base is {self.generation}"
                )
            if delta["seq"] != expected_seq:
                raise PlanFormatError(
                    f"{delta_path}: delta chain gap: expected seq "
                    f"{expected_seq}, found {delta['seq']}"
                )
            if delta["wal_lsn"] < self.wal_lsn:
                raise PlanFormatError(
                    f"{delta_path}: delta LSN {delta['wal_lsn']} behind "
                    f"base LSN {self.wal_lsn}"
                )
            self.apply_ops(delta["ops"], wal_lsn=delta["wal_lsn"])
            expected_seq += 1

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self) -> None:
        """Check every buffer's CRC32 against the header; memoized.

        Raises:
            PlanFormatError: Some buffer's bytes do not match the
                checksum recorded when the file was published.
        """
        with self._lock:
            if self._verified:
                return
            for desc in self.header["buffers"]:
                arr = self._arrays[desc["name"]]
                if zlib.crc32(arr.tobytes()) != desc["crc32"]:
                    raise PlanFormatError(
                        f"{self.path}: buffer {desc['name']!r} "
                        f"checksum mismatch"
                    )
            self._verified = True

    # ------------------------------------------------------------------
    # Overlay (delta / WAL-tail replay)
    # ------------------------------------------------------------------

    def apply_ops(self, ops, *, wal_lsn: int | None = None) -> None:
        """Replay ``(opcode, payload)`` frames into the overlay.

        The same frames the WAL stores; payloads must come from a
        CRC-verified source (delta file or WAL scan).
        """
        for opcode, payload in ops:
            args = pickle.loads(payload)
            if opcode == OP_INSERT:
                self._insert_many([float(args[0])], [args[1]])
            elif opcode == OP_DELETE:
                self._delete_many([float(args[0])])
            elif opcode == OP_UPDATE:
                self._update_many([float(args[0])], [args[1]])
            elif opcode in (OP_BULK_INSERT, OP_INSERT_BATCH):
                self._insert_many(
                    [float(k) for k in args[0]], list(args[1])
                )
            elif opcode == OP_DELETE_BATCH:
                self._delete_many([float(k) for k in args[0]])
            elif opcode == OP_UPDATE_BATCH:
                self._update_many(
                    [float(k) for k in args[0]], list(args[1])
                )
            else:
                raise PlanFormatError(
                    f"{self.path}: unknown overlay opcode {opcode}"
                )
        # Only the tail takes the lock: the replay loop above goes
        # through _insert_many -> _base_contains -> _ensure_verified,
        # which acquires self._lock itself (non-reentrant).
        with self._lock:
            if wal_lsn is not None and wal_lsn > self.wal_lsn:
                self.wal_lsn = wal_lsn
            self._count_cache = None

    def _base_contains(self, keys: list[float]) -> np.ndarray:
        self._ensure_verified()
        return self._plan.contains_batch(
            np.asarray(keys, dtype=np.float64)
        )

    def _present(self, key: float, in_base: bool) -> bool:
        entry = self._overlay.get(key)
        if entry is not None:
            return entry[0] is not _TOMBSTONE
        return in_base

    def _insert_many(self, keys: list[float], values: list) -> None:
        in_base = self._base_contains(keys)
        for key, value, inb in zip(keys, values, in_base):
            if not self._present(key, bool(inb)):
                self._overlay[key] = (value, bool(inb))

    def _delete_many(self, keys: list[float]) -> None:
        in_base = self._base_contains(keys)
        for key, inb in zip(keys, in_base):
            if not self._present(key, bool(inb)):
                continue
            entry = self._overlay.get(key)
            if entry is not None and not entry[1]:
                del self._overlay[key]  # overlay-only insert: undo it
            else:
                self._overlay[key] = (_TOMBSTONE, True)

    def _update_many(self, keys: list[float], values: list) -> None:
        in_base = self._base_contains(keys)
        for key, value, inb in zip(keys, values, in_base):
            if self._present(key, bool(inb)):
                entry = self._overlay.get(key)
                self._overlay[key] = (
                    value, entry[1] if entry is not None else bool(inb)
                )

    def _count_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (overlay-inserted, tombstoned) key arrays for counting."""
        with self._lock:
            cached = self._count_cache
            if cached is None:
                added = np.sort(np.asarray(
                    [k for k, (v, inb) in self._overlay.items()
                     if v is not _TOMBSTONE and not inb],
                    dtype=np.float64,
                ))
                removed = np.sort(np.asarray(
                    [k for k, (v, _) in self._overlay.items()
                     if v is _TOMBSTONE],
                    dtype=np.float64,
                ))
                cached = self._count_cache = (added, removed)
            return cached

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _ensure_verified(self) -> None:
        if not self._verified:
            self.verify()

    def get_batch(
        self, keys, tracer: Tracer = NULL_TRACER
    ) -> list:
        """Values for a key batch, ``None`` where absent.

        Mirrors :meth:`repro.core.dili.DILI.get_batch`: with a real
        tracer the recorded base-plan descent is replayed per key in
        batch order, charging the same simulated cycles as the scalar
        loop over the in-memory index.
        """
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        self._ensure_verified()
        plan = self._plan
        record = not isinstance(tracer, NullTracer)
        out, trace = plan.lookup_batch(keys, record=record)
        if record:
            plan.replay_trace(keys, trace, tracer, self._cycles)
        values = self._values
        results = [
            values[int(i)] if i >= 0 else None for i in out
        ]
        overlay = self._overlay
        if overlay:
            for pos in np.nonzero(
                np.isin(keys, np.fromiter(
                    overlay, dtype=np.float64, count=len(overlay)
                ))
            )[0]:
                value, _ = overlay[float(keys[pos])]
                results[pos] = None if value is _TOMBSTONE else value
        return results

    def contains_batch(self, keys) -> np.ndarray:
        """Boolean membership for a key batch (vectorized ``in``)."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        self._ensure_verified()
        result = self._plan.contains_batch(keys)
        overlay = self._overlay
        if overlay:
            for pos in np.nonzero(
                np.isin(keys, np.fromiter(
                    overlay, dtype=np.float64, count=len(overlay)
                ))
            )[0]:
                value, _ = overlay[float(keys[pos])]
                result[pos] = value is not _TOMBSTONE
        return result

    def count_range_batch(self, los, his) -> np.ndarray:
        """Vectorized count of stored keys in ``[lo, hi)`` per pair."""
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        if los.shape != his.shape:
            raise ValueError("los and his must have the same shape")
        self._ensure_verified()
        counts = self._plan.count_range_batch(los, his).astype(np.int64)
        if self._overlay:
            added, removed = self._count_arrays()
            if len(added):
                counts += np.searchsorted(added, his, side="left")
                counts -= np.searchsorted(added, los, side="left")
            if len(removed):
                counts -= np.searchsorted(removed, his, side="left")
                counts += np.searchsorted(removed, los, side="left")
        return np.maximum(counts, 0)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        base = int(self.header["value_count"])
        delta = 0
        for value, in_base in self._overlay.values():
            if value is _TOMBSTONE:
                delta -= 1
            elif not in_base:
                delta += 1
        return base + delta

    @property
    def overlay_size(self) -> int:
        return len(self._overlay)

    def close(self) -> None:
        """Drop the memmap references (the OS unmaps on GC)."""
        self._arrays.clear()
        self._plan = None  # type: ignore[assignment]
