"""Byte-surgery fault injectors for plan-store artifacts.

Sibling of :mod:`repro.resilience.faults`' tree corruptors, but aimed
at the *files*: each injector damages an on-disk plan base or delta in
a way the serving ladder must catch (at open, at lazy read-verify, or
via the staleness rule) and reports what it did.  The chaos harness
(:mod:`repro.planstore.chaos`) drives these through
:meth:`repro.faults.FaultRegistry.inject_plan` and asserts zero wrong
reads afterwards.

=====================  ===============================================
kind                   damage (and where the ladder catches it)
=====================  ===============================================
``plan_torn_header``   file truncated inside the header frame
                       (``read_plan_header`` at open)
``plan_trunc_buffer``  file truncated inside the buffer region
                       (file-size / commit-marker check at open)
``plan_flip_byte``     one byte XOR-flipped inside a live buffer
                       extent (lazy CRC verify at first read)
``plan_stale_lsn``     header ``wal_lsn`` rewritten to an older value,
                       header CRC recomputed -- a *valid but stale*
                       file (the staleness rule at open)
``plan_missing_delta`` a delta file renamed away mid-chain (chain-gap
                       detection; WAL tail replay heals it when the
                       records are still in the log)
=====================  ===============================================

``plan_stale_lsn`` is the subtle one: every other kind leaves a file
that fails a checksum, but this file re-verifies perfectly and must be
rejected on *metadata* alone.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass

from repro.planstore.format import (
    COMMIT_MARKER,
    PLAN_MAGIC,
    read_plan_header,
)

FAULT_PLAN_TORN_HEADER = "plan_torn_header"
FAULT_PLAN_TRUNCATED_BUFFER = "plan_trunc_buffer"
FAULT_PLAN_FLIPPED_BYTE = "plan_flip_byte"
FAULT_PLAN_STALE_LSN = "plan_stale_lsn"
FAULT_PLAN_MISSING_DELTA = "plan_missing_delta"

#: Every plan-file fault kind, in ladder-severity order.
PLAN_FAULT_KINDS: tuple[str, ...] = (
    FAULT_PLAN_TORN_HEADER,
    FAULT_PLAN_TRUNCATED_BUFFER,
    FAULT_PLAN_FLIPPED_BYTE,
    FAULT_PLAN_STALE_LSN,
    FAULT_PLAN_MISSING_DELTA,
)

_FRAME = struct.Struct("<II")
_PREFIX_SIZE = 8 + _FRAME.size


@dataclass(frozen=True)
class PlanFaultReport:
    """One successfully injected plan-file fault.

    Attributes:
        kind: One of the ``plan_*`` kind constants.
        path: The damaged (or renamed-away) artifact.
        message: Human-readable description of the byte surgery.
    """

    kind: str
    path: str
    message: str


def _torn_header(path: str, rng) -> PlanFaultReport:
    with open(path, "rb") as fh:
        prefix = fh.read(_PREFIX_SIZE)
    header_len = _FRAME.unpack(prefix[8:_PREFIX_SIZE])[0]
    cut = int(rng.integers(1, _PREFIX_SIZE + header_len))
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    return PlanFaultReport(
        FAULT_PLAN_TORN_HEADER, path, f"truncated to {cut} header bytes"
    )


def _truncated_buffer(path: str, rng) -> PlanFaultReport:
    header = read_plan_header(path)
    size = header["file_size"]
    lo = header["data_start"] + 1
    cut = int(rng.integers(lo, size - len(COMMIT_MARKER)))
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    return PlanFaultReport(
        FAULT_PLAN_TRUNCATED_BUFFER,
        path,
        f"truncated mid-buffer at byte {cut} of {size}",
    )


def _flipped_byte(path: str, rng) -> PlanFaultReport | None:
    header = read_plan_header(path)
    live = [d for d in header["buffers"] if d["nbytes"] > 0]
    if not live:
        return None  # nothing but empty buffers: nothing to flip
    desc = live[int(rng.integers(len(live)))]
    offset = header["data_start"] + desc["offset"] + int(
        rng.integers(desc["nbytes"])
    )
    with open(path, "r+b") as fh:
        fh.seek(offset)
        original = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([original[0] ^ 0xFF]))
    return PlanFaultReport(
        FAULT_PLAN_FLIPPED_BYTE,
        path,
        f"flipped byte {offset} inside buffer {desc['name']!r}",
    )


def _stale_lsn(path: str, rng, *, lsn: int = 0) -> PlanFaultReport | None:
    """Rewrite ``wal_lsn`` to ``lsn`` and re-checksum: valid but stale.

    The header JSON length can change, but buffer offsets are relative
    to the header's end, so shifting the buffer block wholesale keeps
    every descriptor -- and every buffer CRC -- valid.
    """
    header = read_plan_header(path)
    if header["wal_lsn"] <= lsn:
        return None  # already at or below the target: not an injection
    with open(path, "rb") as fh:
        data = fh.read()
    body = data[header["data_start"]:]  # buffers + commit marker
    header = {
        k: v for k, v in header.items() if k != "data_start"
    }
    header["wal_lsn"] = int(lsn)
    for _ in range(3):
        blob = json.dumps(header, sort_keys=True).encode("ascii")
        file_size = _PREFIX_SIZE + len(blob) + len(body)
        if header.get("file_size") == file_size:
            break
        header["file_size"] = file_size
    blob = json.dumps(header, sort_keys=True).encode("ascii")
    rebuilt = (
        PLAN_MAGIC + _FRAME.pack(len(blob), zlib.crc32(blob)) + blob + body
    )
    with open(path, "wb") as fh:
        fh.write(rebuilt)
    return PlanFaultReport(
        FAULT_PLAN_STALE_LSN, path, f"wal_lsn rewritten to {lsn}"
    )


def _missing_delta(path: str, rng) -> PlanFaultReport:
    # Renamed, not deleted: the harness simulates an operator losing
    # the file, the suffix keeps it recoverable for forensics.
    os.replace(path, path + ".lost")
    return PlanFaultReport(
        FAULT_PLAN_MISSING_DELTA, path, "delta renamed away mid-chain"
    )


_INJECTORS = {
    FAULT_PLAN_TORN_HEADER: _torn_header,
    FAULT_PLAN_TRUNCATED_BUFFER: _truncated_buffer,
    FAULT_PLAN_FLIPPED_BYTE: _flipped_byte,
    FAULT_PLAN_STALE_LSN: _stale_lsn,
    FAULT_PLAN_MISSING_DELTA: _missing_delta,
}


def inject_plan_fault(kind: str, path, rng) -> PlanFaultReport | None:
    """Apply one ``kind`` of byte surgery to the artifact at ``path``.

    Returns the report, or ``None`` when the injection is not
    applicable (the file is then guaranteed unmodified).

    Args:
        kind: One of :data:`PLAN_FAULT_KINDS`.
        path: A plan base file (or, for ``plan_missing_delta``, a delta
            file).
        rng: ``numpy.random.Generator`` choosing cut points / offsets.
    """
    try:
        injector = _INJECTORS[kind]
    except KeyError:
        raise ValueError(f"unknown plan fault kind {kind!r}") from None
    return injector(os.fspath(path), rng)
