"""Plan publishing, quarantine, and the serving fallback ladder.

:class:`PlanDirectory` owns the ``plans/`` subdirectory of a durable
state directory: generation-numbered base files (``plan-00000001.plan``)
with sequence-numbered delta chains (``plan-00000001.0001.delta``),
published atomically and *quarantined* -- renamed aside, never deleted
-- when they fail verification, so every corrupt artifact stays
available for forensics.

:class:`MmapDILI` is the read-only serving handle.  Opening one walks a
fallback ladder until something serves:

1. newest plan generation: header-verified base + its delta chain +
   the live WAL tail replayed into the overlay;
2. on any checksum / version / staleness failure: quarantine the bad
   file and try the previous generation the same way;
3. no generation survives: rebuild in memory from snapshot + WAL via
   the existing recovery path;
4. even recovery fails: transition :class:`HealthMonitor` to DEGRADED
   and raise :class:`ServingUnavailable` on every read.

Buffer contents are CRC-verified lazily (first read), so a flipped
byte that slips past the O(1) open is still caught before an answer is
served: the read quarantines the file, re-descends the ladder, and
retries -- the zero-wrong-reads contract the chaos harness asserts.

Staleness rule: a generation is servable only if its effective LSN
(base ``wal_lsn`` advanced by its delta chain) is at least the
snapshot's ``last_seqno``.  The WAL holds every record past the
snapshot seqno, so a non-stale generation can always be brought exactly
current by tail replay; a stale one is missing records that were
truncated away and can never be repaired -- it is quarantined.
"""

from __future__ import annotations

import os
import re
import threading

from repro.core.dili import DiliConfig
from repro.durability.faultpoints import FaultInjector
from repro.durability.recovery import SNAPSHOT_NAME, WAL_NAME, recover
from repro.durability.snapshot import read_snapshot_header
from repro.durability.wal import WalScan, scan_wal
from repro.planstore.format import (
    PlanFormatError,
    PlanStaleError,
    PlanStoreError,
    read_delta_file,
    read_plan_header,
    write_delta_file,
    write_plan_file,
)
from repro.planstore.store import PlanStore
from repro.resilience.health import Health, HealthMonitor
from repro.simulate.latency import DEFAULT_CYCLES, CyclesPerOp
from repro.simulate.tracer import NULL_TRACER, Tracer

PLANS_SUBDIR = "plans"
QUARANTINE_SUFFIX = ".quarantined"

_BASE_RE = re.compile(r"^plan-(\d{8})\.plan$")
_DELTA_RE = re.compile(r"^plan-(\d{8})\.(\d{4})\.delta$")


class ServingUnavailable(RuntimeError):
    """Every rung of the fallback ladder failed; reads cannot be served."""


def _fsync_dir(dirpath: str) -> None:
    fd = os.open(dirpath or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class PlanDirectory:
    """Generation-numbered plan files under one ``plans/`` directory.

    Base files are ``plan-<gen:08d>.plan``; deltas extend a base as
    ``plan-<gen:08d>.<seq:04d>.delta`` with ``seq`` starting at 1.
    Nothing here is ever deleted: failed verification renames the file
    aside with a ``.quarantined`` suffix.
    """

    def __init__(self, dirpath) -> None:
        self.dirpath = os.fspath(dirpath)

    @classmethod
    def for_state_dir(cls, state_dir) -> "PlanDirectory":
        return cls(os.path.join(os.fspath(state_dir), PLANS_SUBDIR))

    # -- naming --------------------------------------------------------

    def base_path(self, generation: int) -> str:
        return os.path.join(self.dirpath, f"plan-{generation:08d}.plan")

    def delta_path(self, generation: int, seq: int) -> str:
        return os.path.join(
            self.dirpath, f"plan-{generation:08d}.{seq:04d}.delta"
        )

    def generations(self) -> list[int]:
        """Generation numbers with a (non-quarantined) base file, sorted."""
        if not os.path.isdir(self.dirpath):
            return []
        gens = []
        for name in os.listdir(self.dirpath):
            m = _BASE_RE.match(name)
            if m:
                gens.append(int(m.group(1)))
        return sorted(gens)

    def delta_seqs(self, generation: int) -> list[tuple[int, str]]:
        """``(seq, path)`` for the generation's delta files, seq-sorted."""
        if not os.path.isdir(self.dirpath):
            return []
        out = []
        for name in os.listdir(self.dirpath):
            m = _DELTA_RE.match(name)
            if m and int(m.group(1)) == generation:
                out.append(
                    (int(m.group(2)), os.path.join(self.dirpath, name))
                )
        return sorted(out)

    def quarantined(self) -> list[str]:
        """Every quarantined artifact in the directory, sorted."""
        if not os.path.isdir(self.dirpath):
            return []
        return sorted(
            os.path.join(self.dirpath, name)
            for name in os.listdir(self.dirpath)
            if QUARANTINE_SUFFIX in name
        )

    # -- publishing ----------------------------------------------------

    def publish_base(
        self,
        plan,
        *,
        wal_lsn: int,
        faults: FaultInjector | None = None,
    ) -> int:
        """Write ``plan`` as a new base generation; returns its number."""
        os.makedirs(self.dirpath, exist_ok=True)
        gens = self.generations()
        generation = (gens[-1] + 1) if gens else 1
        write_plan_file(
            self.base_path(generation),
            plan,
            wal_lsn=wal_lsn,
            generation=generation,
            faults=faults,
        )
        return generation

    def publish_delta(
        self,
        generation: int,
        ops,
        *,
        seq: int,
        wal_lsn: int,
        faults: FaultInjector | None = None,
    ) -> str:
        """Append one delta to ``generation``'s chain; returns its path."""
        path = self.delta_path(generation, seq)
        if os.path.exists(path):
            raise PlanFormatError(f"{path}: delta seq {seq} already exists")
        write_delta_file(
            path,
            ops,
            base_generation=generation,
            seq=seq,
            wal_lsn=wal_lsn,
            faults=faults,
        )
        return path

    def chain_state(self, generation: int) -> tuple[int, int]:
        """``(effective_lsn, next_seq)`` of a generation's verified chain.

        Walks the base header and each consecutive, verifiable delta;
        stops (without raising) at the first gap or bad file, because a
        publisher must only extend the prefix a reader will accept.
        """
        header = read_plan_header(self.base_path(generation))
        lsn = int(header["wal_lsn"])
        next_seq = 1
        for seq, path in self.delta_seqs(generation):
            if seq != next_seq:
                break
            try:
                delta = read_delta_file(path)
            except PlanStoreError:
                break
            if delta["base_generation"] != generation:
                break
            lsn = max(lsn, int(delta["wal_lsn"]))
            next_seq += 1
        return lsn, next_seq

    # -- quarantine ----------------------------------------------------

    def quarantine(self, path) -> str:
        """Rename a failed artifact aside (never delete); returns new path.

        A vanished file (the torn-rename race) is a no-op returning the
        original path.
        """
        path = os.fspath(path)
        target = path + QUARANTINE_SUFFIX
        n = 0
        while os.path.exists(target):
            n += 1
            target = f"{path}{QUARANTINE_SUFFIX}.{n}"
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return path
        _fsync_dir(os.path.dirname(path))
        return target


class MmapDILI:
    """Read-only serving handle over a durable state directory.

    Descends the fallback ladder at construction and re-descends
    whenever a lazily verified read fails, so a successfully
    constructed handle keeps serving correct answers (or raises
    :class:`ServingUnavailable`) no matter which file rots underneath
    it.

    Attributes:
        rung: Ladder rung currently serving (1 newest plan, 2 older
            generation, 3 recovery rebuild, 4 degraded).
        generation: Served plan generation (None on rungs 3-4).
        health: The :class:`HealthMonitor` (DEGRADED on rung 4).
        events: Human-readable log of every fallback decision.
        quarantined: Paths this handle moved aside, in order.
    """

    def __init__(
        self,
        dirpath,
        *,
        config: DiliConfig | None = None,
        cycles: CyclesPerOp = DEFAULT_CYCLES,
        health: HealthMonitor | None = None,
    ) -> None:
        self.dirpath = os.fspath(dirpath)
        self.plans = PlanDirectory.for_state_dir(self.dirpath)
        self.health = health if health is not None else HealthMonitor()
        self._config = config
        self._cycles = cycles
        self.events: list[str] = []
        self.quarantined: list[str] = []
        self.rung = 0
        self.generation: int | None = None
        self._max_gen_seen = 0
        self._store: PlanStore | None = None
        self._fallback = None
        self._lock = threading.Lock()
        with self._lock:
            self._descend()

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------

    def _snapshot_seqno(self) -> int:
        snap = os.path.join(self.dirpath, SNAPSHOT_NAME)
        if not os.path.exists(snap):
            return 0
        try:
            _, last_seqno, _, _ = read_snapshot_header(snap)
        except ValueError as exc:
            # A corrupt snapshot is rung 3's problem; for staleness
            # purposes an unreadable header bounds nothing.
            self.events.append(f"snapshot header unreadable: {exc}")
            return 0
        return last_seqno

    def _descend(self) -> None:
        """Walk the ladder until a rung serves.  Caller holds the lock."""
        self._store = None
        self._fallback = None
        self.generation = None
        snapshot_seqno = self._snapshot_seqno()
        scan = scan_wal(os.path.join(self.dirpath, WAL_NAME))
        candidates = list(reversed(self.plans.generations()))
        # Rung 1 means the newest base this handle has *ever* seen --
        # falling back past a generation quarantined mid-read is rung 2
        # even though the re-descend no longer lists the damaged file.
        if candidates:
            self._max_gen_seen = max(self._max_gen_seen, candidates[0])
        for gen in candidates:
            store = self._try_generation(gen, snapshot_seqno, scan)
            if store is not None:
                self._store = store
                self.generation = gen
                self.rung = 1 if gen == self._max_gen_seen else 2
                self.events.append(
                    f"serving generation {gen} at LSN {store.wal_lsn} "
                    f"(rung {self.rung})"
                )
                return
        try:
            result = recover(self.dirpath, config=self._config)
        except Exception as exc:
            self.events.append(f"recovery rebuild failed: {exc}")
            self.rung = 4
            self.health.to(Health.DEGRADED)
            self.events.append("no rung can serve: DEGRADED")
            return
        self._fallback = result.index
        self.rung = 3
        self.events.append(
            f"serving recovery rebuild at seqno {result.next_seqno - 1} "
            f"(rung 3)"
        )

    def _quarantine(self, path: str, reason: str) -> None:
        self.events.append(f"quarantining {os.path.basename(path)}: {reason}")
        moved = self.plans.quarantine(path)
        if moved != path:
            self.quarantined.append(moved)

    def _try_generation(
        self, gen: int, snapshot_seqno: int, scan: WalScan
    ) -> PlanStore | None:
        base = self.plans.base_path(gen)
        try:
            store = PlanStore.open(base, cycles=self._cycles)
        except PlanStoreError as exc:
            self._quarantine(base, str(exc))
            return None
        try:
            # Delta chain: each file is individually verified so a bad
            # delta quarantines only itself; the chain simply ends early
            # and tail replay (or the staleness check) takes over.
            next_seq = 1
            for seq, dpath in self.plans.delta_seqs(gen):
                if seq != next_seq:
                    self.events.append(
                        f"generation {gen}: delta chain gap at seq "
                        f"{next_seq} (found {seq})"
                    )
                    break
                try:
                    delta = read_delta_file(dpath)
                except PlanStoreError as exc:
                    self._quarantine(dpath, str(exc))
                    break
                if delta["base_generation"] != gen:
                    self._quarantine(
                        dpath,
                        f"targets generation {delta['base_generation']}",
                    )
                    break
                store.apply_ops(delta["ops"], wal_lsn=delta["wal_lsn"])
                next_seq += 1
            if store.wal_lsn < snapshot_seqno:
                raise PlanStaleError(
                    f"{base}: plan LSN {store.wal_lsn} predates snapshot "
                    f"seqno {snapshot_seqno}; the gap was truncated away"
                )
            tail = [
                (r.opcode, r.payload)
                for r in scan.records
                if r.seqno > store.wal_lsn
            ]
            if tail:
                store.apply_ops(tail, wal_lsn=scan.last_seqno)
        except PlanStoreError as exc:
            # Includes lazy buffer verification tripped by overlay
            # replay and the staleness check above.
            store.close()
            self._quarantine(base, str(exc))
            return None
        return store

    # ------------------------------------------------------------------
    # Reads (retry down the ladder on lazy-verify failure)
    # ------------------------------------------------------------------

    def _read(self, method: str, *args, **kwargs):
        # Bounded by the artifacts that can fail: each retry quarantines
        # at least one file, so the ladder strictly shrinks.
        attempts = len(self.plans.generations()) + 2
        for _ in range(attempts):
            with self._lock:
                store, fallback, rung = self._store, self._fallback, self.rung
            if rung == 4:
                raise ServingUnavailable(
                    f"{self.dirpath}: no plan, no snapshot+WAL rebuild; "
                    f"serving is DEGRADED"
                )
            target = store if store is not None else fallback
            try:
                return getattr(target, method)(*args, **kwargs)
            except PlanStoreError as exc:
                with self._lock:
                    if self._store is store and store is not None:
                        store.close()
                        self._quarantine(store.path, str(exc))
                        self._descend()
        raise ServingUnavailable(
            f"{self.dirpath}: fallback ladder exhausted"
        )

    def get_batch(self, keys, tracer: Tracer = NULL_TRACER) -> list:
        """Values for a key batch, ``None`` where absent."""
        return self._read("get_batch", keys, tracer)

    def contains_batch(self, keys):
        """Boolean membership for a key batch."""
        return self._read("contains_batch", keys)

    def count_range_batch(self, los, his):
        """Vectorized count of stored keys in ``[lo, hi)`` per pair."""
        return self._read("count_range_batch", los, his)

    def verify(self) -> None:
        """Eagerly verify the served plan's buffers (re-descending on
        failure), or no-op on rungs 3-4."""
        # Not routed through _read: a retry that lands on the rung-3
        # rebuild has nothing left to verify and must no-op, not
        # forward "verify" to the live DILI.
        attempts = len(self.plans.generations()) + 2
        for _ in range(attempts):
            with self._lock:
                store = self._store
            if store is None:
                return
            try:
                store.verify()
                return
            except PlanStoreError as exc:
                with self._lock:
                    if self._store is store:
                        store.close()
                        self._quarantine(store.path, str(exc))
                        self._descend()
        raise ServingUnavailable(
            f"{self.dirpath}: fallback ladder exhausted"
        )

    def __len__(self) -> int:
        with self._lock:
            if self._store is not None:
                return len(self._store)
            if self._fallback is not None:
                return len(self._fallback)
        raise ServingUnavailable(f"{self.dirpath}: serving is DEGRADED")

    @property
    def wal_lsn(self) -> int | None:
        with self._lock:
            return self._store.wal_lsn if self._store is not None else None

    def close(self) -> None:
        with self._lock:
            if self._store is not None:
                self._store.close()
                self._store = None
