"""Exponential search used for last-mile correction, with cost tracing.

Learned indexes predict an approximate position and correct it with an
exponential search: double the step until the target is bracketed, then
binary-search the bracket.  Every probe of the underlying array is a
potential cache miss, so both helpers report each touched element to the
tracer along with the per-iteration arithmetic charge ``mu_E``.

``mu_E`` defaults to the paper's calibrated constant but is a parameter:
configurations that re-price the charge table (e.g.
``DiliConfig.for_disk``) pass their own value instead of silently
falling back to the Section 7.1 machine.
"""

from __future__ import annotations

from typing import Sequence

from repro.simulate.latency import DEFAULT_CYCLES
from repro.simulate.tracer import NULL_TRACER, Tracer

_KEY_BYTES = 8

MU_E = DEFAULT_CYCLES.exp_search_step
"""Default per-iteration arithmetic charge (``mu_E``, Section 7.1)."""


def exp_search_lub(
    keys: Sequence[float],
    x: float,
    hint: int,
    tracer: Tracer = NULL_TRACER,
    region: int = 0,
    mu_e: float = MU_E,
) -> int:
    """Smallest index ``i`` with ``keys[i] >= x`` (``len(keys)`` if none).

    Args:
        keys: Sorted sequence.
        x: Search key.
        hint: Predicted position to start from (clamped into range).
        tracer: Cost tracer; each key probe is one memory touch plus
            ``mu_e`` cycles.
        region: Memory-region id of ``keys`` for the tracer.
        mu_e: Arithmetic cycles charged per probe; thread the active
            ``CyclesPerOp.exp_search_step`` through here.
    """
    n = len(keys)
    if n == 0:
        return 0
    mu = tracer.compute  # bound methods to keep the hot loop short
    mem = tracer.mem
    pos = hint
    if pos < 0:
        pos = 0
    elif pos >= n:
        pos = n - 1
    mem(region, pos * _KEY_BYTES)
    mu(mu_e)
    if keys[pos] >= x:
        # Gallop left: find lo with keys[lo] < x.
        step = 1
        hi = pos
        lo = pos - step
        while lo >= 0:
            mem(region, lo * _KEY_BYTES)
            mu(mu_e)
            if keys[lo] < x:
                break
            hi = lo
            step <<= 1
            lo = pos - step
        if lo < 0:
            lo = -1
    else:
        # Gallop right: find hi with keys[hi] >= x.
        step = 1
        lo = pos
        hi = pos + step
        while hi < n:
            mem(region, hi * _KEY_BYTES)
            mu(mu_e)
            if keys[hi] >= x:
                break
            lo = hi
            step <<= 1
            hi = pos + step
        if hi >= n:
            hi = n
    # Invariant: keys[lo] < x (or lo == -1), keys[hi] >= x (or hi == n).
    while hi - lo > 1:
        mid = (lo + hi) // 2
        mem(region, mid * _KEY_BYTES)
        mu(mu_e)
        if keys[mid] >= x:
            hi = mid
        else:
            lo = mid
    return hi


def exp_search_floor(
    keys: Sequence[float],
    x: float,
    hint: int,
    tracer: Tracer = NULL_TRACER,
    region: int = 0,
    mu_e: float = MU_E,
) -> int:
    """Largest index ``i`` with ``keys[i] <= x`` (-1 if none).

    This is the child-locating search over a BU internal node's bounds
    array ``B`` (Section 4.1): find ``i`` with ``B[i] <= x < B[i+1]``.
    """
    lub = exp_search_lub(keys, x, hint, tracer, region, mu_e)
    if lub < len(keys) and keys[lub] == x:
        return lub
    return lub - 1
