"""Leaf local optimization (Algorithm 5).

The local optimization makes leaf predictions exact: each pair is stored
at precisely the slot its leaf's linear model predicts, so a lookup needs
no last-mile search.  Keys whose predictions collide are pushed into a
nested leaf with its own (rescaled) model, recursively.  The entry array
is over-allocated by the enlarging ratio ``eta`` (paper default 2) so
consecutive keys usually land in distinct slots.

The module also maintains the paper's bookkeeping: ``Delta`` (total entry
accesses to find every covered key from this node) and
``kappa = Delta/Omega`` captured right after optimization, which the
insertion path later compares against to trigger adjustments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.linear_model import LinearModel
from repro.core.nodes import LeafNode, Pair

MAX_NESTING_DEPTH = 64
"""Safety valve: with unique keys the model always separates the minimum
and maximum of a conflict group, so group sizes strictly shrink and this
depth is unreachable in practice; it guards against float-precision
pathologies."""


@dataclass
class LocalOptStats:
    """Counters accumulated across local-optimization calls.

    Attributes:
        conflicts: Number of pairs that landed in a conflicting slot
            (counted once per level of nesting they caused, at the level
            where the conflict occurred) -- the Table 6 metric.
        nested_leaves: Nested leaf nodes created for conflict groups.
        max_depth: Deepest nesting produced.
    """

    conflicts: int = 0
    nested_leaves: int = 0
    max_depth: int = 0
    _depths: list[int] = field(default_factory=list, repr=False)


def fit_leaf_model(keys: list[float] | np.ndarray, fanout: int) -> LinearModel:
    """Least-squares rank model stretched over ``fanout`` slots.

    Algorithm 4 fits keys against ranks ``0..n-1``; stretching both
    parameters by ``fanout/n`` (as the adjustment path of Algorithm 7
    lines 23-24 does explicitly) spreads predictions over the enlarged
    entry array so the over-allocation actually reduces conflicts.
    """
    n = len(keys)
    model = LinearModel.fit(keys)
    if n == 0:
        return model
    return model.scaled(fanout / n)


def local_opt(
    leaf: LeafNode,
    pairs: list[Pair],
    *,
    enlarge: float = 2.0,
    fanout: int | None = None,
    model: LinearModel | None = None,
    stats: LocalOptStats | None = None,
    depth: int = 0,
    max_fanout: int | None = None,
) -> None:
    """Distribute ``pairs`` into ``leaf``'s entry array (Algorithm 5).

    Args:
        leaf: Target leaf; its slots, model and bookkeeping are replaced.
        pairs: (key, value) tuples sorted by key; keys must be unique.
        enlarge: Enlarging ratio ``eta`` (> 1) for the entry array.
        fanout: Explicit slot count; defaults to ``ceil(enlarge * n)``.
            The adjustment path passes the enlarged ``Omega * phi(alpha)``.
        model: Explicit slot model; fitted and stretched when omitted.
        stats: Optional conflict counters (Table 6 instrumentation).
        depth: Current nesting depth (internal).
        max_fanout: Optional cap on the entry-array size, applied to
            this node and every nested conflict node (LIPP-style
            bounded allocation); None leaves fanouts unbounded.
    """
    n = len(pairs)
    if fanout is None:
        fanout = max(2, int(np.ceil(enlarge * max(n, 1))))
    if max_fanout is not None:
        fanout = max(2, min(fanout, max_fanout))
    if model is None:
        model = fit_leaf_model([p[0] for p in pairs], fanout)
    leaf.set_model(model)
    leaf.num_pairs = n
    leaf.delta = 0
    slots: list[object] = [None] * fanout
    leaf.slots = slots
    if n == 0:
        leaf.kappa = 1.0
        return

    # Bucket pairs by predicted slot, vectorised: pairs arrive sorted by
    # key and the prediction is monotone, so equal-slot pairs are
    # contiguous and one diff pass finds the group boundaries.
    keys_arr = np.fromiter((p[0] for p in pairs), dtype=np.float64,
                           count=n)
    predicted = np.floor(
        leaf.intercept + leaf.slope * keys_arr
    ).astype(np.int64)
    np.clip(predicted, 0, fanout - 1, out=predicted)
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(predicted)) + 1, [n])
    )
    groups: dict[int, list[Pair]] = {
        int(predicted[starts[g]]): pairs[starts[g]:starts[g + 1]]
        for g in range(len(starts) - 1)
    }

    progress = len(groups) > 1 or n == 1
    for t, group in groups.items():
        if len(group) == 1:
            slots[t] = group[0]
            leaf.delta += 1
        else:
            if stats is not None:
                stats.conflicts += len(group)
                stats.nested_leaves += 1
                if depth + 1 > stats.max_depth:
                    stats.max_depth = depth + 1
            child = LeafNode(group[0][0], group[-1][0])
            if depth >= MAX_NESTING_DEPTH or not progress:
                _fallback_spread(child, group)
            else:
                local_opt(
                    child,
                    group,
                    enlarge=enlarge,
                    stats=stats,
                    depth=depth + 1,
                    max_fanout=max_fanout,
                )
            slots[t] = child
            leaf.delta += len(group) + child.delta
    leaf.kappa = leaf.delta / leaf.num_pairs


def _fallback_spread(leaf: LeafNode, pairs: list[Pair]) -> None:
    """Degenerate-case placement when least-squares cannot separate keys.

    Uses an equal-width model over the group's *exact* key span: distinct
    float64 keys then always map the minimum to slot 0 and the maximum to
    the last slot, so recursion on any remaining collision group strictly
    shrinks it.  Lookups stay prediction-exact.  Reached only via the
    depth guard.
    """
    n = len(pairs)
    lo = pairs[0][0]
    hi = pairs[-1][0]
    fanout = max(2 * n, 2)
    if hi > lo:
        span = hi - lo
        model = LinearModel.from_range(lo, lo + span * (1 + 1e-9), fanout)
    else:  # identical keys: precondition violated upstream
        raise ValueError(f"duplicate key {lo!r} reached local optimization")
    leaf.set_model(model)
    leaf.num_pairs = n
    leaf.delta = 0
    slots: list[object] = [None] * fanout
    leaf.slots = slots
    groups: dict[int, list[Pair]] = {}
    for pair in pairs:
        groups.setdefault(leaf.predict_slot(pair[0]), []).append(pair)
    for t, group in groups.items():
        if len(group) == 1:
            slots[t] = group[0]
            leaf.delta += 1
        else:
            child = LeafNode(group[0][0], group[-1][0])
            _fallback_spread(child, group)
            slots[t] = child
            leaf.delta += len(group) + child.delta
    leaf.kappa = leaf.delta / max(leaf.num_pairs, 1)
