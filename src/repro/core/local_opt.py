"""Leaf local optimization (Algorithm 5).

The local optimization makes leaf predictions exact: each pair is stored
at precisely the slot its leaf's linear model predicts, so a lookup needs
no last-mile search.  Keys whose predictions collide are pushed into a
nested leaf with its own (rescaled) model, recursively.  The entry array
is over-allocated by the enlarging ratio ``eta`` (paper default 2) so
consecutive keys usually land in distinct slots.

The module also maintains the paper's bookkeeping: ``Delta`` (total entry
accesses to find every covered key from this node) and
``kappa = Delta/Omega`` captured right after optimization, which the
insertion path later compares against to trigger adjustments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.linear_model import _DY2, LinearModel
from repro.core.nodes import LeafNode, Pair

# Scalar floor+int is only equivalent to numpy's floor/astype(int64) while
# the prediction is far from the int64 edge; beyond this bound the slow
# path reproduces the vectorised conversion exactly.
_SAFE_PRED = 4.0e18

MAX_NESTING_DEPTH = 64
"""Safety valve: with unique keys the model always separates the minimum
and maximum of a conflict group, so group sizes strictly shrink and this
depth is unreachable in practice; it guards against float-precision
pathologies."""


@dataclass
class LocalOptStats:
    """Counters accumulated across local-optimization calls.

    Attributes:
        conflicts: Number of pairs that landed in a conflicting slot
            (counted once per level of nesting they caused, at the level
            where the conflict occurred) -- the Table 6 metric.
        nested_leaves: Nested leaf nodes created for conflict groups.
        max_depth: Deepest nesting produced.
    """

    conflicts: int = 0
    nested_leaves: int = 0
    max_depth: int = 0
    _depths: list[int] = field(default_factory=list, repr=False)


def fit_leaf_model(keys: list[float] | np.ndarray, fanout: int) -> LinearModel:
    """Least-squares rank model stretched over ``fanout`` slots.

    Algorithm 4 fits keys against ranks ``0..n-1``; stretching both
    parameters by ``fanout/n`` (as the adjustment path of Algorithm 7
    lines 23-24 does explicitly) spreads predictions over the enlarged
    entry array so the over-allocation actually reduces conflicts.
    """
    n = len(keys)
    model = LinearModel.fit(keys)
    if n == 0:
        return model
    ratio = fanout / n
    return LinearModel(model.slope * ratio, model.intercept * ratio)


def predict_slots(leaf: LeafNode, keys_arr: np.ndarray) -> np.ndarray | None:
    """Vectorized ``leaf.predict_slot`` over a float64 key array.

    Returns ``None`` when any raw prediction falls outside the
    int64-safe band (the ``astype(int64)`` conversion would diverge from
    the scalar ``int(math.floor(...))``) -- callers then fall back to
    per-key ``predict_slot``, which also reproduces the scalar path's
    exceptions for non-finite keys.
    """
    v = leaf.intercept + leaf.slope * keys_arr
    if not np.all((v > -_SAFE_PRED) & (v < _SAFE_PRED)):
        return None
    pos = np.floor(v).astype(np.int64)
    np.clip(pos, 0, len(leaf.slots) - 1, out=pos)
    return pos


def spawn_two(entry: Pair, pair: Pair, fanout: int) -> LeafNode | None:
    """Fused two-pair nested-leaf spawn (batch-write fast path).

    Builds the LeafNode that the scalar conflict branch produces via
    ``local_opt(LeafNode(lo, hi), sorted([entry, pair]), ...)`` with
    ``fanout = max(2, ceil(enlarge * 2))`` -- bit for bit: the same
    inlined two-point rank fit (``np.dot`` kept because its kernel
    rounds differently from pure-python products), the same stretch,
    floor and clamp.  Returns None whenever the generic path would do
    anything beyond placing both pairs in distinct slots (keys collide
    again, predictions outside the int64-safe band, or a fit the
    two-point formula cannot anchor); the caller then runs
    ``local_opt`` itself.
    """
    if entry[0] > pair[0]:
        lo, hi = pair, entry
    else:
        lo, hi = entry, pair
    x0 = lo[0]
    x1 = hi[0]
    mx = (x0 + x1) / 2.0
    dx = np.array((x0 - mx, x1 - mx))
    sxx = float(np.dot(dx, dx))
    if sxx == 0.0:
        return None
    slope = float(np.dot(dx, _DY2)) / sxx
    ratio = fanout / 2
    s = slope * ratio
    a = (0.5 - slope * mx) * ratio
    v0 = a + s * x0
    v1 = a + s * x1
    if not (
        -_SAFE_PRED < v0 < _SAFE_PRED and -_SAFE_PRED < v1 < _SAFE_PRED
    ):
        return None
    last = fanout - 1
    p0 = int(math.floor(v0))
    p0 = 0 if p0 < 0 else (last if p0 > last else p0)
    p1 = int(math.floor(v1))
    p1 = 0 if p1 < 0 else (last if p1 > last else p1)
    if p0 == p1:
        return None
    child = LeafNode(x0, x1)
    child.slope = s
    child.intercept = a
    slots: list[object] = [None] * fanout
    slots[p0] = lo
    slots[p1] = hi
    child.slots = slots
    child.num_pairs = 2
    child.delta = 2
    child.kappa = 1.0
    return child


def local_opt(
    leaf: LeafNode,
    pairs: list[Pair],
    *,
    enlarge: float = 2.0,
    fanout: int | None = None,
    model: LinearModel | None = None,
    stats: LocalOptStats | None = None,
    depth: int = 0,
    max_fanout: int | None = None,
    keys: np.ndarray | None = None,
) -> None:
    """Distribute ``pairs`` into ``leaf``'s entry array (Algorithm 5).

    Args:
        leaf: Target leaf; its slots, model and bookkeeping are replaced.
        pairs: (key, value) tuples sorted by key; keys must be unique.
        enlarge: Enlarging ratio ``eta`` (> 1) for the entry array.
        fanout: Explicit slot count; defaults to ``ceil(enlarge * n)``.
            The adjustment path passes the enlarged ``Omega * phi(alpha)``.
        model: Explicit slot model; fitted and stretched when omitted.
        stats: Optional conflict counters (Table 6 instrumentation).
        depth: Current nesting depth (internal).
        max_fanout: Optional cap on the entry-array size, applied to
            this node and every nested conflict node (LIPP-style
            bounded allocation); None leaves fanouts unbounded.
        keys: Optional float64 array holding exactly the keys of
            ``pairs`` in order; callers that already have it (bulk
            load) pass it to skip the per-pair re-extraction.
    """
    n = len(pairs)
    if fanout is None:
        fanout = max(2, int(np.ceil(enlarge * max(n, 1))))
    if max_fanout is not None:
        fanout = max(2, min(fanout, max_fanout))
    if model is None:
        model = fit_leaf_model(
            keys if keys is not None else [p[0] for p in pairs], fanout
        )
    leaf.set_model(model)
    leaf.num_pairs = n
    leaf.delta = 0
    slots: list[object] = [None] * fanout
    leaf.slots = slots
    if n == 0:
        leaf.kappa = 1.0
        return

    # Two-pair groups dominate the recursion (most slot conflicts involve
    # exactly two keys); handle them scalar instead of spinning up the
    # vectorised bucketing below.  The arithmetic mirrors it exactly:
    # same model, same floor, same clamp.
    if n == 2:
        a = leaf.intercept
        b = leaf.slope
        v0 = a + b * pairs[0][0]
        v1 = a + b * pairs[1][0]
        if -_SAFE_PRED < v0 < _SAFE_PRED and -_SAFE_PRED < v1 < _SAFE_PRED:
            last = fanout - 1
            p0 = int(math.floor(v0))
            p0 = 0 if p0 < 0 else (last if p0 > last else p0)
            p1 = int(math.floor(v1))
            p1 = 0 if p1 < 0 else (last if p1 > last else p1)
            if p0 != p1:
                slots[p0] = pairs[0]
                slots[p1] = pairs[1]
                leaf.delta = 2
                leaf.kappa = 1.0
                return
            # Both keys predict the same slot: one nested group with no
            # separation progress, which always takes the fallback spread.
            if stats is not None:
                stats.conflicts += 2
                stats.nested_leaves += 1
                if depth + 1 > stats.max_depth:
                    stats.max_depth = depth + 1
            child = LeafNode(pairs[0][0], pairs[1][0])
            _fallback_spread(child, pairs)
            slots[p0] = child
            leaf.delta = 2 + child.delta
            leaf.kappa = leaf.delta / 2
            return

    # Bucket pairs by predicted slot: pairs arrive sorted by key and the
    # prediction is monotone (least-squares slopes over ranks are
    # non-negative), so equal-slot pairs are contiguous and one diff
    # pass over the predictions finds the group boundaries.  Small
    # groups (the nested-conflict recursion) predict scalar -- same
    # model, same floor, same clamp as the vectorised form, with the
    # int64 edge guarded -- to skip the numpy fixed costs.
    pred_l: list[int] | np.ndarray | None = None
    if n <= 32:
        a = leaf.intercept
        b = leaf.slope
        last = fanout - 1
        pred_l = []
        for p in pairs:
            v = a + b * p[0]
            if not (-_SAFE_PRED < v < _SAFE_PRED):
                pred_l = None
                break
            s = int(math.floor(v))
            pred_l.append(0 if s < 0 else (last if s > last else s))
    if pred_l is not None:
        bounds = [0]
        for i in range(1, n):
            if pred_l[i] != pred_l[i - 1]:
                bounds.append(i)
        bounds.append(n)
    else:
        if keys is not None:
            keys_arr = keys
        else:
            keys_arr = np.fromiter((p[0] for p in pairs), dtype=np.float64,
                                   count=n)
        predicted = np.floor(
            leaf.intercept + leaf.slope * keys_arr
        ).astype(np.int64)
        np.clip(predicted, 0, fanout - 1, out=predicted)
        bounds = [0, *(np.flatnonzero(np.diff(predicted)) + 1).tolist(), n]
        pred_l = predicted

    num_groups = len(bounds) - 1
    progress = num_groups > 1 or n == 1
    delta_acc = 0
    for g in range(num_groups):
        s = bounds[g]
        e = bounds[g + 1]
        if e - s == 1:
            slots[int(pred_l[s])] = pairs[s]
            delta_acc += 1
        else:
            group = pairs[s:e]
            if stats is not None:
                stats.conflicts += len(group)
                stats.nested_leaves += 1
                if depth + 1 > stats.max_depth:
                    stats.max_depth = depth + 1
            child = LeafNode(group[0][0], group[-1][0])
            if depth >= MAX_NESTING_DEPTH or not progress:
                _fallback_spread(child, group)
            else:
                local_opt(
                    child,
                    group,
                    enlarge=enlarge,
                    stats=stats,
                    depth=depth + 1,
                    max_fanout=max_fanout,
                )
            slots[int(pred_l[s])] = child
            delta_acc += len(group) + child.delta
    leaf.delta = delta_acc
    leaf.kappa = delta_acc / leaf.num_pairs


def _fallback_spread(leaf: LeafNode, pairs: list[Pair]) -> None:
    """Degenerate-case placement when least-squares cannot separate keys.

    Uses an equal-width model over the group's *exact* key span: distinct
    float64 keys then always map the minimum to slot 0 and the maximum to
    the last slot, so recursion on any remaining collision group strictly
    shrinks it.  Lookups stay prediction-exact.  Reached only via the
    depth guard.
    """
    n = len(pairs)
    lo = pairs[0][0]
    hi = pairs[-1][0]
    fanout = max(2 * n, 2)
    if hi > lo:
        span = hi - lo
        model = LinearModel.from_range(lo, lo + span * (1 + 1e-9), fanout)
    else:  # identical keys: precondition violated upstream
        raise ValueError(f"duplicate key {lo!r} reached local optimization")
    leaf.set_model(model)
    leaf.num_pairs = n
    leaf.delta = 0
    slots: list[object] = [None] * fanout
    leaf.slots = slots
    groups: dict[int, list[Pair]] = {}
    for pair in pairs:
        groups.setdefault(leaf.predict_slot(pair[0]), []).append(pair)
    for t, group in groups.items():
        if len(group) == 1:
            slots[t] = group[0]
            leaf.delta += 1
        else:
            child = LeafNode(group[0][0], group[-1][0])
            _fallback_spread(child, group)
            slots[t] = child
            leaf.delta += len(group) + child.delta
    leaf.kappa = leaf.delta / max(leaf.num_pairs, 1)
