"""Structural statistics of a DILI tree (the Table 6 metrics).

The paper characterizes a built DILI by its minimum, maximum and
key-weighted average *height* -- the number of nodes on the path from the
root to the slot holding a pair, nested conflict leaves included -- plus
the number of conflicts per thousand keys observed during construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dili import DILI
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode


@dataclass(frozen=True)
class TreeStats:
    """Summary of a DILI's shape.

    Attributes:
        num_pairs: Pairs stored in the tree.
        min_height / max_height: Extremes of per-pair path length.
        avg_height: Key-weighted mean path length.
        internal_nodes: Count of equal-width internal nodes.
        leaf_nodes: Count of leaf nodes, nested conflict leaves included.
        nested_leaves: Leaf nodes that hang off another leaf's slot.
        conflicts_per_1k: Bulk-load conflicts per thousand keys
            (Table 6's last column).
        memory_bytes: Modelled index footprint.
    """

    num_pairs: int
    min_height: int
    max_height: int
    avg_height: float
    internal_nodes: int
    leaf_nodes: int
    nested_leaves: int
    conflicts_per_1k: float
    memory_bytes: int


def tree_stats(index: DILI) -> TreeStats:
    """Walk ``index`` and compute its :class:`TreeStats`."""
    acc = _Accumulator()
    if index.root is not None:
        _walk(index.root, 1, False, acc)
    n = max(acc.num_pairs, 1)
    conflicts = index.opt_stats.conflicts
    return TreeStats(
        num_pairs=acc.num_pairs,
        min_height=acc.min_height if acc.num_pairs else 0,
        max_height=acc.max_height,
        avg_height=acc.height_sum / n,
        internal_nodes=acc.internal_nodes,
        leaf_nodes=acc.leaf_nodes,
        nested_leaves=acc.nested_leaves,
        conflicts_per_1k=1000.0 * conflicts / max(len(index), 1),
        memory_bytes=index.memory_bytes(),
    )


def describe(index: DILI) -> str:
    """Human-readable one-screen summary of an index's structure.

    Intended for debugging sessions and log lines; everything in it is
    derivable from :func:`tree_stats` and :func:`memory_breakdown`.
    """
    st = tree_stats(index)
    if st.num_pairs == 0:
        return "DILI(empty)"
    mem = memory_breakdown(index)
    lines = [
        f"DILI with {st.num_pairs:,} pairs",
        (
            f"  heights: min {st.min_height} / avg {st.avg_height:.2f}"
            f" / max {st.max_height}"
        ),
        (
            f"  nodes: {st.internal_nodes:,} internal,"
            f" {st.leaf_nodes:,} leaves"
            f" ({st.nested_leaves:,} nested)"
        ),
        (
            f"  conflicts: {st.conflicts_per_1k:.1f} pairs/1K at bulk"
            f" load, {index.adjustment_count} adjustments since"
        ),
        (
            f"  memory: {mem.total / 1e6:.2f} MB"
            f" ({mem.internal_bytes / 1e6:.2f} internal,"
            f" {mem.slot_bytes / 1e6:.2f} slots,"
            f" {mem.slack_fraction:.0%} slack)"
        ),
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class MemoryBreakdown:
    """Where a DILI's modelled bytes go.

    Attributes:
        internal_bytes: Internal-node headers and child-pointer arrays.
        leaf_header_bytes: Per-leaf fixed overhead (model + bookkeeping).
        slot_bytes: Entry-array slots, occupied or not.
        occupied_slot_bytes: The subset of slot bytes holding pairs.
        nested_bytes: Bytes of nested conflict leaves (headers + slots),
            also included in the other categories' totals.
    """

    internal_bytes: int
    leaf_header_bytes: int
    slot_bytes: int
    occupied_slot_bytes: int
    nested_bytes: int

    @property
    def total(self) -> int:
        return (
            self.internal_bytes + self.leaf_header_bytes + self.slot_bytes
        )

    @property
    def slack_fraction(self) -> float:
        """Share of slot bytes that hold nothing (the eta over-allocation)."""
        if self.slot_bytes == 0:
            return 0.0
        return 1.0 - self.occupied_slot_bytes / self.slot_bytes


def memory_breakdown(index: DILI) -> MemoryBreakdown:
    """Attribute the index's modelled footprint to its components."""
    internal = leaf_header = slots = occupied = nested = 0
    stack: list[tuple[object, bool]] = (
        [(index.root, False)] if index.root is not None else []
    )
    while stack:
        node, is_nested = stack.pop()
        if type(node) is InternalNode:
            internal += 32 + 8 * len(node.children)
            stack.extend((child, False) for child in node.children)
            continue
        if type(node) is DenseLeafNode:
            leaf_header += 64
            slots += 16 * len(node.keys)
            occupied += 16 * len(node.keys)
            continue
        leaf_header += 64
        slots += 16 * len(node.slots)
        here = 64 + 16 * len(node.slots)
        if is_nested:
            nested += here
        for entry in node.slots:
            if entry is None:
                continue
            if type(entry) is tuple:
                occupied += 16
            else:
                stack.append((entry, True))
    return MemoryBreakdown(
        internal_bytes=internal,
        leaf_header_bytes=leaf_header,
        slot_bytes=slots,
        occupied_slot_bytes=occupied,
        nested_bytes=nested,
    )


class _Accumulator:
    def __init__(self) -> None:
        self.num_pairs = 0
        self.min_height = 1 << 30
        self.max_height = 0
        self.height_sum = 0
        self.internal_nodes = 0
        self.leaf_nodes = 0
        self.nested_leaves = 0


def _walk(node, depth: int, nested: bool, acc: _Accumulator) -> None:
    if type(node) is InternalNode:
        acc.internal_nodes += 1
        for child in node.children:
            _walk(child, depth + 1, False, acc)
        return
    if type(node) is DenseLeafNode:
        acc.leaf_nodes += 1
        n = len(node.keys)
        acc.num_pairs += n
        if n:
            acc.height_sum += depth * n
            acc.min_height = min(acc.min_height, depth)
            acc.max_height = max(acc.max_height, depth)
        return
    acc.leaf_nodes += 1
    if nested:
        acc.nested_leaves += 1
    pairs_here = 0
    for entry in node.slots:
        if entry is None:
            continue
        if type(entry) is tuple:
            pairs_here += 1
        else:
            _walk(entry, depth + 1, True, acc)
    acc.num_pairs += pairs_here
    if pairs_here:
        acc.height_sum += depth * pairs_here
        acc.min_height = min(acc.min_height, depth)
        acc.max_height = max(acc.max_height, depth)
