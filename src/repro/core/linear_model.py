"""Linear models and mergeable least-squares statistics.

Every DILI node stores exactly two parameters (an intercept ``a`` and a
slope ``b``); this module provides that model plus the incremental
statistics that make the greedy merging of Algorithm 3 run in O(1) per
merge.  All fits are mean-centred so they stay numerically stable for the
huge key magnitudes (up to 2**53) that the SOSD-style datasets use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

# Centred ranks of a two-point fit (0..1 minus their mean 0.5); shared so
# the hot two-point path below allocates one array instead of three.
_DY2 = np.array([-0.5, 0.5])

# Rank means and centred ranks for every size numpy sums sequentially
# (n < 8): at those sizes ``x.mean()`` is a plain left fold, so a python
# accumulator reproduces it bitwise and these constants replace the
# arange / mean / subtract round trips in the small-fit fast path.
_RANK_MEAN = {n: float(np.arange(n, dtype=np.float64).mean())
              for n in range(3, 8)}
_DY_SMALL = {n: np.arange(n, dtype=np.float64) - _RANK_MEAN[n]
             for n in range(3, 8)}


@dataclass(frozen=True)
class LinearModel:
    """The two-parameter model ``y = intercept + slope * x``.

    Internal DILI nodes derive their model from their key range (Eq. 1 of
    the paper) so that children equally divide the range; leaf nodes fit
    theirs by least squares over (key, position) pairs.
    """

    slope: float
    intercept: float

    def predict(self, x: float) -> float:
        """Raw (unclamped, unrounded) prediction."""
        return self.intercept + self.slope * x

    def predict_int(self, x: float) -> int:
        """Floor of the prediction, as used by every search algorithm."""
        return int(math.floor(self.intercept + self.slope * x))

    def predict_clamped(self, x: float, fanout: int) -> int:
        """Prediction floored and clamped into ``[0, fanout)``.

        This is the function ``f_D`` of Algorithm 5 line 4.
        """
        pos = int(math.floor(self.intercept + self.slope * x))
        if pos < 0:
            return 0
        if pos >= fanout:
            return fanout - 1
        return pos

    def inverse(self, y: float) -> float:
        """Key at which the model predicts ``y`` (requires slope != 0)."""
        if self.slope == 0.0:
            raise ZeroDivisionError("cannot invert a constant model")
        return (y - self.intercept) / self.slope

    def scaled(self, ratio: float) -> "LinearModel":
        """Both parameters multiplied by ``ratio``.

        Used by the leaf-adjustment path (Algorithm 7 line 24) to stretch
        a fit over ``[0, n)`` onto an enlarged entry array of ``n*ratio``
        slots.
        """
        return LinearModel(self.slope * ratio, self.intercept * ratio)

    @classmethod
    def from_range(cls, lb: float, ub: float, fanout: int) -> "LinearModel":
        """Equal-width child model of Eq. 1: ``b = fo/(ub-lb), a = -b*lb``."""
        if ub <= lb:
            raise ValueError(f"empty range [{lb}, {ub})")
        slope = fanout / (ub - lb)
        if not math.isfinite(slope):
            # No finite-slope linear model can tell the endpoints apart;
            # this needs a key gap below ~1/float64_max, far outside any
            # realistic key domain (SOSD keys are integers).
            raise ValueError(
                f"range [{lb}, {ub}) is too narrow for a float64 model"
            )
        return cls(slope, -slope * lb)

    @classmethod
    def fit(cls, xs: Sequence[float] | np.ndarray,
            ys: Sequence[float] | np.ndarray | None = None) -> "LinearModel":
        """Least-squares fit of ``ys`` (default ``0..n-1``) on ``xs``.

        A single point fits a constant model predicting its own y; an
        empty input fits the zero model.
        """
        n = len(xs)
        if ys is None:
            if n == 2:
                # Two-point rank fits dominate nested-leaf construction.
                # (x0+x1)/2 matches np.mean's pairwise sum bitwise for two
                # elements, elementwise subtraction matches the scalar
                # one, and the centred ranks are the constant
                # [-0.5, 0.5]; np.dot stays because its kernel rounds
                # differently from pure-python products.
                x0 = float(xs[0])
                x1 = float(xs[1])
                mx = (x0 + x1) / 2.0
                dx = np.array((x0 - mx, x1 - mx))
                sxx = float(np.dot(dx, dx))
                if sxx == 0.0:
                    return cls(0.0, 0.5)
                slope = float(np.dot(dx, _DY2)) / sxx
                return cls(slope, 0.5 - slope * mx)
            if 3 <= n <= 7:
                s = 0.0
                for v in xs:
                    s += v
                mx = float(s) / n
                my = _RANK_MEAN[n]
                dx = np.array([float(v) - mx for v in xs])
                sxx = float(np.dot(dx, dx))
                if sxx == 0.0:
                    return cls(0.0, my)
                slope = float(np.dot(dx, _DY_SMALL[n])) / sxx
                return cls(slope, my - slope * mx)
            x = np.asarray(xs, dtype=np.float64)
            y = np.arange(n, dtype=np.float64)
        else:
            x = np.asarray(xs, dtype=np.float64)
            y = np.asarray(ys, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("xs and ys must have equal length")
        if n == 0:
            return cls(0.0, 0.0)
        if n == 1:
            return cls(0.0, float(y[0]))
        mx = float(x.mean())
        my = float(y.mean())
        dx = x - mx
        sxx = float(np.dot(dx, dx))
        if sxx == 0.0:
            return cls(0.0, my)
        slope = float(np.dot(dx, y - my)) / sxx
        return cls(slope, my - slope * mx)


@dataclass
class SegmentStats:
    """Mergeable sufficient statistics of a least-squares fit.

    Stores count, means and centred second moments, so two adjacent
    segments merge in O(1) (Chan et al. pairwise-update formulas) and the
    sum of squared errors of the best-fit line is available in O(1).
    This is what makes Algorithm 3's ``s_i`` / ``m_i`` bookkeeping cheap.
    """

    n: int = 0
    mean_x: float = 0.0
    mean_y: float = 0.0
    sxx: float = 0.0
    syy: float = 0.0
    sxy: float = 0.0

    @classmethod
    def from_arrays(cls, xs: np.ndarray, ys: np.ndarray) -> "SegmentStats":
        """Build statistics from paired arrays in one vectorised pass."""
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("xs and ys must have equal length")
        n = len(x)
        if n == 0:
            return cls()
        mx = float(x.mean())
        my = float(y.mean())
        dx = x - mx
        dy = y - my
        return cls(
            n=n,
            mean_x=mx,
            mean_y=my,
            sxx=float(np.dot(dx, dx)),
            syy=float(np.dot(dy, dy)),
            sxy=float(np.dot(dx, dy)),
        )

    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> "SegmentStats":
        """Build statistics from an iterable of (x, y) pairs."""
        pts = list(points)
        if not pts:
            return cls()
        xs = np.array([p[0] for p in pts], dtype=np.float64)
        ys = np.array([p[1] for p in pts], dtype=np.float64)
        return cls.from_arrays(xs, ys)

    def merged(self, other: "SegmentStats") -> "SegmentStats":
        """Statistics of the concatenation of the two segments."""
        if self.n == 0:
            return SegmentStats(**vars(other))
        if other.n == 0:
            return SegmentStats(**vars(self))
        n = self.n + other.n
        dx = other.mean_x - self.mean_x
        dy = other.mean_y - self.mean_y
        w = self.n * other.n / n
        return SegmentStats(
            n=n,
            mean_x=self.mean_x + dx * other.n / n,
            mean_y=self.mean_y + dy * other.n / n,
            sxx=self.sxx + other.sxx + dx * dx * w,
            syy=self.syy + other.syy + dy * dy * w,
            sxy=self.sxy + other.sxy + dx * dy * w,
        )

    def sse(self) -> float:
        """Sum of squared errors of the best-fit line over this segment."""
        if self.n < 2 or self.sxx <= 0.0:
            return 0.0
        sse = self.syy - (self.sxy * self.sxy) / self.sxx
        # Guard against tiny negative values from cancellation.
        return sse if sse > 0.0 else 0.0

    def rmse(self) -> float:
        """Root-mean-square error of the best-fit line."""
        if self.n == 0:
            return 0.0
        return math.sqrt(self.sse() / self.n)

    def model(self) -> LinearModel:
        """The best-fit line for this segment."""
        if self.n == 0:
            return LinearModel(0.0, 0.0)
        if self.sxx <= 0.0:
            return LinearModel(0.0, self.mean_y)
        slope = self.sxy / self.sxx
        return LinearModel(slope, self.mean_y - slope * self.mean_x)
