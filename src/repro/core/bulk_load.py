"""BU-Tree-based bulk loading of DILI (Algorithm 4).

Phase two of construction: the BU-Tree's per-level lower bounds (the
``theta`` lists) fix how many nodes each DILI level gets, then DILI is
grown top-down.  An internal node's fanout is the number of BU nodes one
level down whose lower bounds fall inside its range, and its children
equally divide that range -- which is what gives DILI internal models
perfect accuracy while keeping the leaf layout close to the BU-Tree's
distribution-aware one (Fig. 3).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.butree import BUTree
from repro.core.cost import CostParams
from repro.core.linear_model import LinearModel
from repro.core.local_opt import LocalOptStats, local_opt
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode

logger = logging.getLogger(__name__)

_EMPTY_LEAF_FANOUT = 4
"""Slot count given to leaves whose range holds no bulk-loaded pairs, so
that later inserts spread over several slots instead of piling on one."""


@dataclass
class BulkLoadResult:
    """Everything Algorithm 4 produces.

    Attributes:
        root: Root of the DILI tree (an internal node unless the dataset
            is so small the BU-Tree had a single leaf).
        butree: The phase-one mirror tree (kept for Table 9 comparisons;
            droppable by callers that only need the index).
        opt_stats: Conflict counters from the local optimization pass
            (Table 6 metrics).
    """

    root: InternalNode | LeafNode | DenseLeafNode
    butree: BUTree
    opt_stats: LocalOptStats


def bulk_load(
    keys: np.ndarray,
    values: list,
    params: CostParams,
    *,
    enlarge: float = 2.0,
    local_optimization: bool = True,
    sample: bool = False,
    zoom: bool = True,
) -> BulkLoadResult:
    """Build a DILI node tree over sorted unique ``keys`` (Algorithm 4).

    Args:
        keys: Sorted, strictly increasing float64 array.
        values: Same-length sequence of record pointers/payloads.
        params: Cost-model constants for the BU-Tree phase.
        enlarge: Entry-array enlarging ratio ``eta`` for local opt.
        local_optimization: When False, build the DILI-LO ablation whose
            leaves pack pairs tightly (Algorithm 1 search).
        sample: Appendix A.7 sampling during greedy merging.
        zoom: Allow zoom internals for overfull DILI-LO leaf ranges.
    """
    butree = BUTree(keys, values, params=params, sample=sample)
    height = butree.height
    thetas = [butree.level_lower_bounds(h) for h in range(height)]
    opt_stats = LocalOptStats()
    builder = _Builder(
        keys=np.asarray(keys, dtype=np.float64),
        values=list(values),
        thetas=thetas,
        enlarge=enlarge,
        local_optimization=local_optimization,
        opt_stats=opt_stats,
        omega=params.omega,
        zoom=zoom,
    )
    root = builder.create(butree.root.lb, butree.root.ub, height)
    logger.debug(
        "DILI bulk load: %d keys, BU height %d, %d conflicts, "
        "%d nested leaves",
        len(keys),
        height,
        opt_stats.conflicts,
        opt_stats.nested_leaves,
    )
    return BulkLoadResult(root=root, butree=butree, opt_stats=opt_stats)


class _Builder:
    """Recursive node factory shared by the internal/leaf branches."""

    def __init__(
        self,
        keys: np.ndarray,
        values: list,
        thetas: list[np.ndarray],
        enlarge: float,
        local_optimization: bool,
        opt_stats: LocalOptStats,
        omega: int,
        zoom: bool = True,
    ) -> None:
        self.keys = keys
        self.values = values
        self.thetas = thetas
        self.enlarge = enlarge
        self.local_optimization = local_optimization
        self.opt_stats = opt_stats
        self.omega = omega
        self.zoom = zoom

    def create(self, lb: float, ub: float, h: int, zoom_depth: int = 0):
        """CreateInternal of Algorithm 4, with three practical deviations.

        A range containing zero BU lower bounds one level down becomes a
        leaf immediately; a range containing exactly one is collapsed
        (the single-child internal node the literal algorithm would
        create adds a node hop without partitioning anything); and a
        leaf range left with far more keys than the fanout cap ``omega``
        -- which happens when equal-width division strands a dense body
        next to extreme outliers (FB/OSM-style tails) -- is subdivided
        by *zoom* internal nodes.  Zoom nodes are ordinary equal-width
        DILI internals; they take over the range-narrowing role that
        nested conflict leaves would otherwise perform one slot at a
        time, and they are what keeps DILI-LO viable on tailed data.
        """
        while h >= 1:
            theta = self.thetas[h - 1]
            lo = int(np.searchsorted(theta, lb, side="left"))
            hi = int(np.searchsorted(theta, ub, side="left"))
            fanout = hi - lo
            if fanout >= 2:
                return self._create_internal(lb, ub, h, fanout)
            h -= 1  # collapse empty/single-child levels
        n_keys = self._count_keys(lb, ub)
        # Locally optimized leaves zoom through nested *fitted* models in
        # about one hop, so zoom internals would only lengthen the path;
        # dense DILI-LO leaves have no such mechanism and need them.
        need_zoom = self.zoom and not self.local_optimization
        if need_zoom and n_keys > 2 * self.omega and zoom_depth < 64:
            fanout = min(1024, max(2, -(-n_keys // self.omega)))
            node = InternalNode(lb, ub, fanout)
            width = (ub - lb) / fanout
            for i in range(fanout):
                child_lb = lb + i * width
                child_ub = lb + (i + 1) * width if i + 1 < fanout else ub
                node.children[i] = self.create(
                    child_lb, child_ub, 0, zoom_depth + 1
                )
            return node
        return self._create_leaf(lb, ub)

    def _count_keys(self, lb: float, ub: float) -> int:
        lo = int(np.searchsorted(self.keys, lb, side="left"))
        hi = int(np.searchsorted(self.keys, ub, side="left"))
        return hi - lo

    def _create_internal(self, lb: float, ub: float, h: int, fanout: int):
        node = InternalNode(lb, ub, fanout)
        width = (ub - lb) / fanout
        for i in range(fanout):
            child_lb = lb + i * width
            child_ub = lb + (i + 1) * width if i + 1 < fanout else ub
            node.children[i] = self.create(child_lb, child_ub, h - 1)
        return node

    def _create_leaf(self, lb: float, ub: float):
        lo = int(np.searchsorted(self.keys, lb, side="left"))
        hi = int(np.searchsorted(self.keys, ub, side="left"))
        piece_keys = self.keys[lo:hi]
        if not self.local_optimization:
            model = LinearModel.fit(piece_keys)
            return DenseLeafNode(
                lb, ub, piece_keys.copy(), self.values[lo:hi], model
            )
        leaf = LeafNode(lb, ub)
        pairs = list(zip(piece_keys.tolist(), self.values[lo:hi]))
        if not pairs:
            local_opt(
                leaf,
                pairs,
                enlarge=self.enlarge,
                fanout=_EMPTY_LEAF_FANOUT,
                model=LinearModel.from_range(lb, ub, _EMPTY_LEAF_FANOUT),
                stats=self.opt_stats,
            )
        else:
            local_opt(
                leaf,
                pairs,
                enlarge=self.enlarge,
                stats=self.opt_stats,
                keys=piece_keys,
            )
        return leaf
