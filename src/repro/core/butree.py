"""The bottom-up mirror tree (BU-Tree, Algorithm 2).

The BU-Tree is the first phase of DILI's bulk load.  It is grown upward:
greedy merging partitions the raw keys into leaf pieces, then repeatedly
partitions the resulting lower bounds into the next level, until creating
an immediate root is estimated to be cheaper than growing another level.

Unlike DILI, a BU internal node's children do *not* equally divide its
range, so it stores the bounds array ``B`` and key search needs a local
search after the model prediction.  The BU-Tree is therefore a complete,
queryable index in its own right -- the paper benchmarks it directly in
Table 9 -- but its main role here is supplying the level layouts
(``theta`` lists) that Algorithm 4 converts into a DILI.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import CostParams, DEFAULT_COST
from repro.core.linear_model import LinearModel
from repro.core.search_util import exp_search_floor, exp_search_lub
from repro.core.segmentation import SegmentationResult, greedy_merging
from repro.simulate.tracer import NULL_TRACER, Tracer, region_id

logger = logging.getLogger(__name__)


@dataclass
class BUNode:
    """One BU-Tree node.

    Attributes:
        lb: Inclusive lower bound of the covered key range.
        ub: Exclusive upper bound.
        height: 0 for leaves, growing upward.
        model: Least-squares model predicting a *global* index at the
            level below (a key position for leaves, a child index for
            internal nodes); subtract ``offset`` for the local index.
        offset: Global index of this node's first element one level down
            (the ``l`` of Eq. 3 / ``zeta`` of Eq. 4).
        start: Global index of the first key covered.
        end: One past the last key covered.
        children: Child nodes (internal nodes only).
        bounds: Child lower bounds ``B`` (internal nodes only).
    """

    lb: float
    ub: float
    height: int
    model: LinearModel
    offset: int
    start: int
    end: int
    children: list["BUNode"] | None = None
    bounds: np.ndarray | None = None
    region: int = field(default_factory=region_id)

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def fanout(self) -> int:
        return 0 if self.children is None else len(self.children)

    @property
    def num_keys(self) -> int:
        return self.end - self.start


class BUTree:
    """A queryable bottom-up tree over sorted (key, value) arrays.

    Args:
        keys: Sorted, strictly increasing float64 array.
        values: Array of the same length (record pointers in the paper;
            arbitrary Python objects or ints here).
        params: Cost-model constants steering the layout search.
        sample: Enable the Appendix A.7 sampling strategy during greedy
            merging.
    """

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray | list,
        params: CostParams = DEFAULT_COST,
        sample: bool = False,
    ) -> None:
        self.keys = np.asarray(keys, dtype=np.float64)
        if len(self.keys) == 0:
            raise ValueError("BUTree requires at least one key")
        if np.any(np.diff(self.keys) <= 0):
            raise ValueError("keys must be sorted and strictly increasing")
        self.values = values
        self.params = params
        self.sample = sample
        self._keys_region = region_id()
        self.levels: list[list[BUNode]] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction (Algorithm 2)
    # ------------------------------------------------------------------

    def _build(self) -> None:
        keys = self.keys
        n = len(keys)
        if self.sample and n > 64:
            # Appendix A.7: run the expensive level-0 layout search on
            # every second key.  Piece boundaries and models are mapped
            # back to full-key indices by the stride (models are linear,
            # so scaling both parameters by 2 converts sampled ranks to
            # full ranks); the final DILI leaves refit on all keys
            # anyway, so only the layout is approximate.
            result = greedy_merging(
                keys[::2], height=0, params=self.params
            )
            leaves = self._make_leaves(result, stride=2)
        else:
            result = greedy_merging(keys, height=0, params=self.params)
            leaves = self._make_leaves(result)
        self.levels = [leaves]
        height = 0
        while len(self.levels[height]) > 1:
            nodes = self.levels[height]
            lbs = np.array([nd.lb for nd in nodes], dtype=np.float64)
            root_cost = self._immediate_root_cost(lbs, height)
            next_result = greedy_merging(
                lbs, height=height + 1, params=self.params, sample=self.sample
            )
            grow_cost = next_result.cost
            if root_cost <= grow_cost or len(next_result.segments) <= 1:
                root = self._make_internal_level(
                    next_result_to_root(lbs), height
                )[0]
                self.levels.append([root])
                break
            self.levels.append(
                self._make_internal_level(next_result, height)
            )
            height += 1
        logger.debug(
            "BU-Tree built: %d keys, levels %s",
            n,
            [len(level) for level in self.levels],
        )
        # A single leaf: wrap it under a trivial root so H >= 1.
        if len(self.levels) == 1:
            only = self.levels[0][0]
            root = BUNode(
                lb=only.lb,
                ub=only.ub,
                height=1,
                model=LinearModel(0.0, 0.0),
                offset=0,
                start=only.start,
                end=only.end,
                children=[only],
                bounds=np.array([only.lb], dtype=np.float64),
            )
            self.levels.append([root])

    def _make_leaves(
        self, result: SegmentationResult, stride: int = 1
    ) -> list[BUNode]:
        keys = self.keys
        n = len(keys)
        leaves = []
        # ub of the last piece must strictly exceed the largest key.
        global_ub = float(keys[-1]) + max(1.0, abs(float(keys[-1])) * 1e-12)
        for seg in result.segments:
            start = min(seg.start * stride, n - 1)
            end = min(seg.end * stride, n)
            model = seg.model if stride == 1 else seg.model.scaled(stride)
            lb = float(keys[start])
            ub = float(keys[end]) if end < n else global_ub
            leaves.append(
                BUNode(
                    lb=lb,
                    ub=ub,
                    height=0,
                    model=model,
                    offset=start,
                    start=start,
                    end=end,
                )
            )
        leaves[0].lb = float(keys[0])
        return leaves

    def _make_internal_level(
        self, result: SegmentationResult, below_height: int
    ) -> list[BUNode]:
        below = self.levels[below_height]
        nodes = []
        for seg in result.segments:
            children = below[seg.start:seg.end]
            nodes.append(
                BUNode(
                    lb=children[0].lb,
                    ub=children[-1].ub,
                    height=below_height + 1,
                    model=seg.model,
                    offset=seg.start,
                    start=children[0].start,
                    end=children[-1].end,
                    children=list(children),
                    bounds=np.array([c.lb for c in children], dtype=np.float64),
                )
            )
        return nodes

    def _immediate_root_cost(self, lbs: np.ndarray, height: int) -> float:
        """Average per-key cost of topping the tree with one root now.

        Mirrors ``generateRoot`` of Algorithm 2: fit a model over the
        level's lower bounds, measure its per-key child-index error, and
        price one node visit plus the damped local search (Eq. 5).
        """
        model = LinearModel.fit(lbs)
        # True child index for every key, computed vectorised.
        child = np.searchsorted(lbs, self.keys, side="right") - 1
        np.clip(child, 0, len(lbs) - 1, out=child)
        pred = model.intercept + model.slope * self.keys
        err = np.abs(pred - child)
        mean_log_err = float(np.mean(np.log2(err + 1.0)))
        c = self.params.cycles
        local = mean_log_err * (c.exp_search_step + c.cache_miss)
        return c.cache_miss + c.linear_model + (
            self.params.rho ** (height + 1)
        ) * local

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> BUNode:
        return self.levels[-1][0]

    @property
    def height(self) -> int:
        """Number of levels above the leaves (H in Algorithm 4)."""
        return len(self.levels) - 1

    def level_lower_bounds(self, height: int) -> np.ndarray:
        """The ``theta^h`` list of Algorithm 4: lb of each node at height."""
        return np.array(
            [nd.lb for nd in self.levels[height]], dtype=np.float64
        )

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        """Point lookup; returns the stored value or None."""
        pos = self._locate(key, tracer)
        if pos is None:
            return None
        return self.values[pos]

    def _locate(self, key: float, tracer: Tracer) -> int | None:
        c = self.params.cycles
        node = self.root
        tracer.phase("step1")
        while not node.is_leaf:
            tracer.mem(node.region)
            tracer.compute(c.linear_model)
            hint = node.model.predict_int(key) - node.offset
            assert (  # repro-check: allow CHK002 -- type narrowing only
                node.bounds is not None and node.children is not None
            )
            idx = exp_search_floor(
                node.bounds, key, hint, tracer, node.region,
                mu_e=c.exp_search_step,
            )
            if idx < 0:
                idx = 0
            elif idx >= len(node.children):
                idx = len(node.children) - 1
            node = node.children[idx]
        tracer.phase("step2")
        tracer.mem(node.region)
        tracer.compute(c.linear_model)
        hint = node.model.predict_int(key)
        pos = exp_search_lub(
            self.keys, key, hint, tracer, self._keys_region,
            mu_e=c.exp_search_step,
        )
        tracer.phase("done")
        if pos < len(self.keys) and self.keys[pos] == key:
            return pos
        return None

    def memory_bytes(self) -> int:
        """Modelled C++ footprint: 16 B of model + 8 B/child + 8 B/bound."""
        total = 0
        for level in self.levels:
            for node in level:
                total += 48  # lb, ub, model a/b, offset, flags
                if node.children is not None:
                    total += 16 * len(node.children)  # pointer + bound
        return total

    def node_count(self) -> int:
        return sum(len(level) for level in self.levels)


def next_result_to_root(lbs: np.ndarray) -> SegmentationResult:
    """A one-piece segmentation covering the whole level (for the root)."""
    from repro.core.segmentation import Segment

    model = LinearModel.fit(lbs)
    pred = model.intercept + model.slope * lbs
    err = pred - np.arange(len(lbs), dtype=np.float64)
    rmse = float(np.sqrt(np.mean(err * err))) if len(lbs) else 0.0
    seg = Segment(start=0, end=len(lbs), model=model, rmse=rmse)
    return SegmentationResult(segments=[seg], cost=0.0)
