"""The DILI index: public API over the node tree.

Implements the paper's query and update algorithms:

* point lookup with local optimization (Algorithm 6) and without it
  (Algorithm 1, for the DILI-LO ablation),
* insertion with conflict-node creation and cost-triggered leaf
  adjustment (Algorithm 7),
* deletion with single-pair node trimming (Algorithm 8),
* ordered range scans.

The two ablation variants the paper evaluates are configuration flags:
``local_optimization=False`` yields DILI-LO and ``adjust=False`` yields
DILI-AD.
"""

from __future__ import annotations

import logging
import math
import threading
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.check.errors import InvariantError
from repro.core.bulk_load import _EMPTY_LEAF_FANOUT, bulk_load
from repro.core.cost import CostParams
from repro.core.flat import FlatPlan, InternalRouter, compile_plan
from repro.core.linear_model import LinearModel
from repro.core.local_opt import (
    LocalOptStats,
    fit_leaf_model,
    local_opt,
    predict_slots,
    spawn_two,
)
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode, Pair
from repro.simulate.latency import CyclesPerOp, DEFAULT_CYCLES
from repro.simulate.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Tracer,
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DiliConfig:
    """Hyperparameters of DILI (defaults follow Section 7.1).

    Attributes:
        omega: Average maximum fanout bounding greedy merging (4096).
        rho: Level-decay rate of the BU cost model (0.2).
        enlarge: Entry-array enlarging ratio ``eta`` (2).
        lambda_adjust: Adjustment threshold ``lambda``; a leaf whose
            average entry accesses per lookup exceeds ``lambda * kappa``
            is rebuilt (2).
        local_optimization: False builds the DILI-LO ablation.
        adjust: False builds the DILI-AD ablation (never rebuilds leaves).
        sampling: Appendix A.7 fit-on-half-the-keys during construction.
        zoom: Subdivide pathologically overfull DILI-LO leaf ranges with
            equal-width zoom internals (see DESIGN.md; False reproduces
            the literal Algorithm 4).
        max_enlarge: Cap of the adjustment ratio ``phi`` (4).
        cycles: Cycle-charge table used for cost tracing and the BU-Tree
            layout search.
    """

    omega: int = 4096
    rho: float = 0.2
    enlarge: float = 2.0
    lambda_adjust: float = 2.0
    local_optimization: bool = True
    adjust: bool = True
    sampling: bool = False
    zoom: bool = True
    max_enlarge: float = 4.0
    cycles: CyclesPerOp = DEFAULT_CYCLES

    def cost_params(self) -> CostParams:
        return CostParams(cycles=self.cycles, rho=self.rho, omega=self.omega)

    def phi(self, alpha: int) -> float:
        """Adjustment enlarging ratio ``phi(alpha) = min(eta + 0.1a, max)``."""
        return min(self.enlarge + 0.1 * alpha, self.max_enlarge)

    @classmethod
    def for_disk(cls, io_cycles: float = 25_000.0) -> "DiliConfig":
        """Configuration for disk-resident data (the paper's Section 9).

        The future-work sketch: make the BU-Tree cost model price
        expected IOs instead of cache misses -- every node or pair fetch
        becomes a block read -- and disable the local optimization,
        which would otherwise create leaf nodes covering few keys
        (wasting a block each).  With every correction probe costing a
        full block read, the layout shifts toward more accurate leaves
        that answer in a single read.

        Args:
            io_cycles: Cost of one block read in cycles (default ~10us
                at 2.5 GHz, an NVMe-class random read).
        """
        io = replace(DEFAULT_CYCLES, cache_miss=io_cycles)
        return cls(local_optimization=False, cycles=io)


class DILI:
    """Distribution-driven learned index for one-dimensional keys.

    Typical use::

        index = DILI()
        index.bulk_load(sorted_unique_keys, payloads)
        index.get(key)            # -> payload or None
        index.insert(key, value)  # -> True if newly inserted
        index.delete(key)         # -> True if the key existed
        index.range_query(lo, hi) # -> [(key, value), ...] sorted

    Keys are float64 (integers up to 2**53 are exact); duplicates are
    rejected at bulk load and deduplicated semantically on insert.
    """

    def __init__(self, config: DiliConfig | None = None) -> None:
        self.config = config if config is not None else DiliConfig()
        self.root: InternalNode | LeafNode | DenseLeafNode | None = None
        self.butree = None
        self.opt_stats = LocalOptStats()
        self.adjustment_count = 0
        self.insert_count = 0
        self.moved_pairs = 0
        # Plan-maintenance counters: full lazy compiles, single-leaf
        # subtree recompiles after structural changes, and in-place
        # buffer patches (see docs/performance.md).
        self.plan_recompiles = 0
        self.plan_subtree_recompiles = 0
        self.plan_patches = 0
        self._count = 0
        self._cycles = self.config.cycles
        self._flat: FlatPlan | None = None
        # Serializes plan compilation/maintenance: concurrent writers
        # (stripe-locked on different leaves) each produce a new plan
        # version via the copy-on-write applied_* constructors, and the
        # mutex makes every version build on the previous one instead
        # of two patches racing on the same base.  Reentrant because
        # maintenance falls back to _invalidate_plan while holding it.
        self._plan_mutex = threading.RLock()
        self._router: InternalRouter | None = None
        # Set by _insert_to_leaf/_delete_from_leaf/_adjust when an op
        # changes the tree *shape* (spawn / adjust / collapse), not just
        # a slot's contents; decides patch vs subtree recompile.
        self._op_structural = False
        # Optional repro.check.invariants.TreeSanitizer; every mutating
        # operation reports the keys it touched (zero cost when None).
        self.sanitizer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def bulk_load(
        self,
        keys: np.ndarray,
        values: list | np.ndarray | None = None,
        *,
        keep_butree: bool = False,
    ) -> None:
        """Build the index from sorted, strictly increasing keys.

        Args:
            keys: 1-D array-like of unique, ascending keys.
            values: Optional payloads; defaults to each key's position.
            keep_butree: Retain the phase-one BU-Tree on ``self.butree``
                for breakdown experiments (Table 9); otherwise it is
                dropped to free memory.
        """
        self._invalidate_plan()
        self._router = None  # the root object is being replaced
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        if len(keys) == 0:
            self.root = None
            self._count = 0
            return
        if np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be sorted and strictly increasing")
        if values is None:
            values = list(range(len(keys)))
        else:
            values = list(values)
            if len(values) != len(keys):
                raise ValueError("values must match keys in length")
        result = bulk_load(
            keys,
            values,
            self.config.cost_params(),
            enlarge=self.config.enlarge,
            local_optimization=self.config.local_optimization,
            sample=self.config.sampling,
            zoom=self.config.zoom,
        )
        self.root = result.root
        self.opt_stats = result.opt_stats
        self.butree = result.butree if keep_butree else None
        self._count = len(keys)
        if self.sanitizer is not None:
            self.sanitizer.after_bulk(self)

    @classmethod
    def from_pairs(cls, pairs: list[Pair], config: DiliConfig | None = None) -> "DILI":
        """Convenience constructor from unsorted (key, value) pairs."""
        index = cls(config)
        if pairs:
            pairs = sorted(pairs)
            keys = np.array([p[0] for p in pairs], dtype=np.float64)
            values = [p[1] for p in pairs]
            index.bulk_load(keys, values)
        return index

    def rebuild_leaf(self, leaf: LeafNode, pairs: list[Pair]) -> None:
        """Rebuild one leaf in place, bulk-load-identically.

        Replaces ``leaf``'s model, slot array and bookkeeping with
        exactly what ``bulk_load`` would construct for ``pairs`` over
        the same ``[lb, ub)`` range -- the repair engine's primitive for
        restoring a corrupted subtree from the authoritative pair table
        (see :mod:`repro.resilience.repair`).  ``pairs`` must be sorted
        by key.  The leaf *object* is preserved, so the cached router
        and the flat plan's region cross-check stay valid; the caller
        owns plan maintenance (splice or invalidate) and the tree-wide
        pair count.
        """
        if pairs:
            keys = np.fromiter(
                (p[0] for p in pairs), dtype=np.float64, count=len(pairs)
            )
            local_opt(
                leaf,
                pairs,
                enlarge=self.config.enlarge,
                stats=self.opt_stats,
                keys=keys,
            )
        else:
            local_opt(
                leaf,
                [],
                enlarge=self.config.enlarge,
                fanout=_EMPTY_LEAF_FANOUT,
                model=LinearModel.from_range(
                    leaf.lb, leaf.ub, _EMPTY_LEAF_FANOUT
                ),
                stats=self.opt_stats,
            )
        # local_opt resets delta/kappa but not the adjustment counter; a
        # freshly bulk-loaded leaf starts at zero.
        leaf.alpha = 0

    def rebuild_dense_leaf(
        self, leaf: DenseLeafNode, keys: np.ndarray, values: list
    ) -> None:
        """Rebuild one dense (DILI-LO) leaf in place, bulk-load-identically.

        Same contract as :meth:`rebuild_leaf` for the ablation's packed
        leaves: parallel sorted arrays plus a least-squares model, built
        exactly as bulk loading builds them, with the leaf object (and
        its tracer region) preserved.
        """
        keys = np.asarray(keys, dtype=np.float64)
        model = LinearModel.fit(keys)
        leaf.keys = keys.copy()
        leaf.values = list(values)
        leaf.slope = model.slope
        leaf.intercept = model.intercept

    # ------------------------------------------------------------------
    # Lookup (Algorithms 1 and 6)
    # ------------------------------------------------------------------

    def get(self, key: float, tracer: Tracer = NULL_TRACER) -> object | None:
        """Return the value stored under ``key``, or None."""
        node = self.root
        if node is None:
            return None
        c = self._cycles
        tracer.phase("step1")
        while type(node) is InternalNode:
            tracer.mem(node.region)
            tracer.compute(c.linear_model)
            idx = node.child_index(key)
            tracer.mem(node.region, 64 + idx * 8)
            node = node.children[idx]
        tracer.phase("step2")
        if type(node) is DenseLeafNode:
            return self._dense_lookup(node, key, tracer)
        # Algorithm 6: follow nested leaves until a pair or NULL.
        while True:
            tracer.mem(node.region)
            tracer.compute(c.linear_model)
            pos = node.predict_slot(key)
            tracer.mem(node.region, 64 + pos * 16)
            entry = node.slots[pos]
            if entry is None:
                return None
            if type(entry) is tuple:
                tracer.compute(c.branch)
                return entry[1] if entry[0] == key else None
            node = entry

    def _dense_lookup(
        self, node: DenseLeafNode, key: float, tracer: Tracer
    ) -> object | None:
        """Algorithm 1's last-mile: prediction + exponential search."""
        from repro.core.search_util import exp_search_lub

        if len(node.keys) == 0:
            return None
        tracer.mem(node.region)
        tracer.compute(self._cycles.linear_model)
        hint = node.predict_position(key)
        pos = exp_search_lub(
            node.keys, key, hint, tracer, node.region,
            mu_e=self._cycles.exp_search_step,
        )
        if pos < len(node.keys) and node.keys[pos] == key:
            return node.values[pos]
        return None

    def __contains__(self, key: float) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Vectorized batch reads (compiled flat plan)
    # ------------------------------------------------------------------

    def _invalidate_plan(self) -> None:
        """Drop the compiled read plan (the incremental-maintenance
        fallback for mutations no patch or subtree recompile covers)."""
        with self._plan_mutex:
            self._flat = None

    def _sanitize_after(self, keys) -> None:
        """TreeSanitizer hook: report a completed mutation.

        ``keys`` are the keys the operation touched (hit or miss --
        coherence of a miss is worth checking too).  A ``None``
        sanitizer costs one attribute load and a branch.
        """
        san = self.sanitizer
        if san is not None:
            san.after_write(self, keys)

    def _plan(self) -> FlatPlan:
        """The compiled flat read plan, building it on first use.

        The plan is a structure-of-arrays snapshot of the node tree
        (see :mod:`repro.core.flat`); it is compiled lazily on the
        first batch read and then *maintained incrementally* across
        mutations: slot-level changes patch the buffers in place and
        structural changes recompile only the affected top-level leaf's
        subtree, so mixed read/write workloads do not pay an O(n)
        recompile per write.
        """
        with self._plan_mutex:
            plan = self._flat
            if plan is None:
                if self.root is None:
                    raise ValueError(
                        "cannot compile a plan for an empty index"
                    )
                plan = compile_plan(self.root)
                self._flat = plan
                self.plan_recompiles += 1
            return plan

    def peek_plan(self) -> FlatPlan | None:
        """The maintained plan *without* compiling one (None if dropped).

        Publication hook: after a mutation,
        :class:`repro.core.concurrent.ConcurrentDILI` republished the
        maintained plan version (or unpublishes when maintenance fell
        back to invalidation) without forcing an eager recompile on the
        write path.
        """
        return self._flat

    def _get_router(self) -> InternalRouter:
        """Cached write-batch router; rebuilt when the root is replaced.

        Internal nodes are immutable after bulk load, so the router
        survives every insert/delete/adjust and is rebuilt only when
        ``self.root`` is a different object (bulk load, first insert).
        """
        router = self._router
        if router is None or router.root is not self.root:
            router = self._router = InternalRouter(self.root)
        return router

    def _plan_note_insert(self, key: float, value: object, leaf) -> None:
        """Maintain the plan after one successful scalar insert.

        Like every ``_plan_note_*`` hook this goes through the
        ``applied_*`` constructors: while the plan is private they
        patch it in place exactly as before; once it has been frozen
        by publication they return a copy-on-write successor version,
        installed here under the plan mutex.
        """
        with self._plan_mutex:
            plan = self._flat
            if plan is None:
                return
            if self._op_structural:
                new = plan.applied_recompile_subtrees([(key, leaf)])
                if new is not None:
                    self._flat = new
                    self.plan_subtree_recompiles += 1
                else:
                    self._invalidate_plan()
            else:
                new = plan.applied_insert_many([(key, value)])
                if new is not None:
                    self._flat = new
                    self.plan_patches += 1
                else:
                    self._invalidate_plan()

    def _plan_note_delete(self, key: float, leaf) -> None:
        """Maintain the plan after one successful scalar delete."""
        with self._plan_mutex:
            plan = self._flat
            if plan is None:
                return
            if self._op_structural:
                new = plan.applied_recompile_subtrees([(key, leaf)])
                if new is not None:
                    self._flat = new
                    self.plan_subtree_recompiles += 1
                else:
                    self._invalidate_plan()
            else:
                new = plan.applied_delete_many([key])
                if new is not None:
                    self._flat = new
                    self.plan_patches += 1
                else:
                    self._invalidate_plan()

    def _plan_note_update(self, key: float, value: object) -> None:
        """Maintain the plan after one successful value update."""
        with self._plan_mutex:
            plan = self._flat
            if plan is None:
                return
            new = plan.applied_values([(key, value)])
            if new is not None:
                self._flat = new
                self.plan_patches += 1
            else:
                self._invalidate_plan()

    def _plan_note_updates(self, pairs: list) -> None:
        """Maintain the plan after a batch of successful value updates."""
        if not pairs:
            return
        with self._plan_mutex:
            plan = self._flat
            if plan is None:
                return
            new = plan.applied_values(pairs)
            if new is not None:
                self._flat = new
                self.plan_patches += len(pairs)
            else:
                self._invalidate_plan()

    def get_batch(
        self, keys: np.ndarray | list, tracer: Tracer = NULL_TRACER
    ) -> list:
        """Values for a whole key batch (``None`` where absent).

        Semantically identical to ``[self.get(k) for k in keys]`` but
        descends the compiled flat plan level-synchronously with numpy,
        so the per-key cost is a handful of vectorized ops instead of a
        Python pointer chase.  With a real ``tracer`` the recorded
        descent is replayed per key in batch order, charging exactly
        the events (and therefore the same simulated cycles and cache
        misses) as the equivalent scalar loop.
        """
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        if self.root is None:
            return [None] * len(keys)
        plan = self._plan()
        record = not isinstance(tracer, NullTracer)
        out, trace = plan.lookup_batch(keys, record=record)
        if record:
            plan.replay_trace(keys, trace, tracer, self._cycles)
        return plan.gather_values(out)

    def contains_batch(self, keys: np.ndarray | list) -> np.ndarray:
        """Boolean membership for a key batch (vectorized ``in``)."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        if self.root is None:
            return np.zeros(len(keys), dtype=bool)
        return self._plan().contains_batch(keys)

    def count_range_batch(
        self, los: np.ndarray | list, his: np.ndarray | list
    ) -> np.ndarray:
        """Vectorized :meth:`count_range` over paired bound arrays."""
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        if los.shape != his.shape:
            raise ValueError("los and his must have the same shape")
        if self.root is None:
            return np.zeros(len(los), dtype=np.int64)
        return self._plan().count_range_batch(los, his)

    # ------------------------------------------------------------------
    # Insertion (Algorithm 7)
    # ------------------------------------------------------------------

    def insert(
        self, key: float, value: object, tracer: Tracer = NULL_TRACER
    ) -> bool:
        """Insert a pair; returns False (and changes nothing) if present.

        With a real ``tracer`` the descent and slot probes charge the
        same events a ``get`` of the same key would (the probe cost of
        Algorithm 7); structural work (``local_opt`` during spawns and
        adjustments) charges nothing, matching the paper's cost model.
        The compiled read plan, if present, is patched or
        subtree-recompiled in place -- and left untouched entirely when
        the key already exists.
        """
        key = float(key)
        if self.root is None:
            leaf = LeafNode(key, key + 1.0)
            local_opt(leaf, [(key, value)], enlarge=self.config.enlarge)
            self.root = leaf
            self._count = 1
            self.insert_count += 1
            self._sanitize_after((key,))
            return True
        if not self.config.local_optimization:
            raise NotImplementedError(
                "the DILI-LO ablation is lookup-only (paper Section 7.2)"
            )
        c = self._cycles
        tracer.phase("step1")
        node = self.root
        while type(node) is InternalNode:
            tracer.mem(node.region)
            tracer.compute(c.linear_model)
            idx = node.child_index(key)
            tracer.mem(node.region, 64 + idx * 8)
            node = node.children[idx]
        tracer.phase("step2")
        self._op_structural = False
        inserted = self._insert_to_leaf(node, (key, value), tracer)
        if inserted:
            self._count += 1
            self.insert_count += 1
            self._plan_note_insert(key, value, node)
        self._sanitize_after((key,))
        return inserted

    def _insert_to_leaf(
        self, leaf: LeafNode, pair: Pair, tracer: Tracer = NULL_TRACER
    ) -> bool:
        """insertToLeafNode of Algorithm 7, including the adjust check."""
        c = self._cycles
        tracer.mem(leaf.region)
        tracer.compute(c.linear_model)
        pos = leaf.predict_slot(pair[0])
        tracer.mem(leaf.region, 64 + pos * 16)
        entry = leaf.slots[pos]
        if entry is None:
            leaf.slots[pos] = pair
            leaf.delta += 1
            not_exist = True
        elif type(entry) is tuple:
            tracer.compute(c.branch)
            if entry[0] == pair[0]:
                not_exist = False
            else:
                child = LeafNode(
                    min(entry[0], pair[0]), max(entry[0], pair[0])
                )
                group = sorted([entry, pair])
                local_opt(child, group, enlarge=self.config.enlarge)
                leaf.slots[pos] = child
                leaf.delta += 1 + child.delta
                self.moved_pairs += 2
                self._op_structural = True
                not_exist = True
        else:
            delta_before = entry.delta
            not_exist = self._insert_to_leaf(entry, pair, tracer)
            leaf.delta += 1 + entry.delta - delta_before
        if not_exist:
            leaf.num_pairs += 1
            if (
                self.config.adjust
                and leaf.delta / leaf.num_pairs
                > self.config.lambda_adjust * leaf.kappa
            ):
                self._adjust(leaf)
        return not_exist

    def _adjust(self, leaf: LeafNode) -> None:
        """Rebuild a degraded leaf with an enlarged entry array.

        Collects every pair under the leaf, enlarges the array by
        ``phi(alpha)``, retrains the model stretched over the new fanout
        (Algorithm 7 lines 21-26) and redistributes with local opt.
        """
        self._op_structural = True
        pairs = list(leaf.iter_pairs())
        self.moved_pairs += len(pairs)
        ratio = self.config.phi(leaf.alpha)
        leaf.alpha += 1
        fanout = max(2, int(math.ceil(len(pairs) * ratio)))
        model = fit_leaf_model([p[0] for p in pairs], fanout)
        local_opt(
            leaf,
            pairs,
            enlarge=self.config.enlarge,
            fanout=fanout,
            model=model,
            stats=self.opt_stats,
        )
        self.adjustment_count += 1
        logger.debug(
            "adjusted leaf [%s, %s): %d pairs, ratio %.2f, alpha %d",
            leaf.lb,
            leaf.ub,
            len(pairs),
            ratio,
            leaf.alpha,
        )

    # ------------------------------------------------------------------
    # Deletion (Algorithm 8)
    # ------------------------------------------------------------------

    def delete(self, key: float, tracer: Tracer = NULL_TRACER) -> bool:
        """Remove ``key``; returns False if it was not present.

        Tracer semantics match :meth:`insert`: probes charge ``get``-like
        events, structural trimming charges nothing.  A miss leaves the
        compiled read plan untouched; a hit patches it (or recompiles
        the affected leaf's subtree after a nested-leaf collapse).
        """
        key = float(key)
        node = self.root
        if node is None:
            return False
        if not self.config.local_optimization:
            raise NotImplementedError(
                "the DILI-LO ablation is lookup-only (paper Section 7.2)"
            )
        c = self._cycles
        tracer.phase("step1")
        while type(node) is InternalNode:
            tracer.mem(node.region)
            tracer.compute(c.linear_model)
            idx = node.child_index(key)
            tracer.mem(node.region, 64 + idx * 8)
            node = node.children[idx]
        tracer.phase("step2")
        self._op_structural = False
        existed = self._delete_from_leaf(node, key, tracer)
        if existed:
            self._count -= 1
            self._plan_note_delete(key, node)
        self._sanitize_after((key,))
        return existed

    def _delete_from_leaf(
        self, leaf: LeafNode, key: float, tracer: Tracer = NULL_TRACER
    ) -> bool:
        """deleteFromLeafNode of Algorithm 8, with single-pair trimming."""
        c = self._cycles
        tracer.mem(leaf.region)
        tracer.compute(c.linear_model)
        pos = leaf.predict_slot(key)
        tracer.mem(leaf.region, 64 + pos * 16)
        entry = leaf.slots[pos]
        if entry is None:
            existed = False
        elif type(entry) is tuple:
            tracer.compute(c.branch)
            if entry[0] == key:
                leaf.slots[pos] = None
                leaf.delta -= 1
                existed = True
            else:
                existed = False
        else:
            delta_before = entry.delta
            existed = self._delete_from_leaf(entry, key, tracer)
            leaf.delta -= 1 + delta_before - entry.delta
            if existed and entry.num_pairs == 1:
                remaining = next(entry.iter_pairs())
                leaf.slots[pos] = remaining
                leaf.delta -= 1
                self._op_structural = True
        if existed:
            leaf.num_pairs -= 1
            leaf.kappa = (
                leaf.delta / leaf.num_pairs if leaf.num_pairs > 0 else 1.0
            )
        return existed

    def bulk_insert(
        self,
        keys: np.ndarray | list,
        values: list | None = None,
        *,
        rebuild_ratio: float = 0.3,
    ) -> int:
        """Insert many pairs at once; returns how many were new.

        Small batches route through :meth:`insert_batch` (the vectorized
        Algorithm 7 path).  When the batch exceeds ``rebuild_ratio`` of
        the current size, it is cheaper -- and yields a
        distribution-aware layout for the *combined* data -- to merge
        and re-run bulk loading, the strategy the paper's
        construction-cost discussion implies for large ingests.
        Existing keys keep their old values (insert semantics).
        """
        keys = np.asarray(keys, dtype=np.float64)
        if values is None:
            values = ["inserted"] * len(keys)
        if len(values) != len(keys):
            raise ValueError("values must match keys in length")
        if len(keys) == 0:
            return 0
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = [values[int(i)] for i in order]
        if np.any(np.diff(keys) <= 0):
            raise ValueError("batch keys must be unique")
        if len(self) == 0 or len(keys) < rebuild_ratio * len(self):
            return int(np.count_nonzero(self.insert_batch(keys, values)))
        merged: dict[float, object] = {
            float(keys[i]): values[i] for i in range(len(keys))
        }
        before = len(self)
        batch_new = len(merged)
        for key, value in self.items():
            if key in merged:
                batch_new -= 1
            merged[key] = value  # existing pairs win, insert semantics
        all_keys = np.fromiter(sorted(merged), dtype=np.float64,
                               count=len(merged))
        all_values = [merged[float(k)] for k in all_keys]
        self.bulk_load(all_keys, all_values)
        self.insert_count += len(self) - before
        return batch_new

    # ------------------------------------------------------------------
    # Vectorized batch writes
    # ------------------------------------------------------------------
    #
    # The batch write path mirrors get_batch's structure: the whole
    # batch descends the cached InternalRouter level-synchronously
    # (internal nodes never change after bulk load), keys are grouped
    # by target top-level leaf, slot prediction is vectorized per group,
    # and only conflict resolution, nested-leaf spawning and _adjust
    # fall back to the scalar Algorithm 7/8 code.  Results, tree
    # structure, counters, and -- under a real tracer -- the simulated
    # cost trace are identical to the equivalent scalar loop: keys
    # within one leaf keep their batch order (stable sort) and
    # operations on different top-level leaves commute.

    def insert_batch(
        self,
        keys: np.ndarray | list,
        values: list | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> np.ndarray:
        """Insert many pairs; boolean array, True where newly inserted.

        Semantically identical to
        ``[self.insert(k, v) for k, v in zip(keys, values)]`` --
        including duplicate handling, adjustment triggers, counters and
        (with a real ``tracer``) the exact simulated cost trace, which
        is recorded per key during grouped execution and replayed in
        batch order.  ``values`` defaults to ``"inserted"`` payloads,
        like :meth:`bulk_insert`.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        n = len(keys)
        if values is None:
            values = ["inserted"] * n
        elif len(values) != n:
            raise ValueError("values must match keys in length")
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        start = 0
        if self.root is None:
            # The first key builds the root exactly like scalar insert.
            out[0] = self.insert(float(keys[0]), values[0], tracer)
            if n == 1:
                return out
            start = 1
        if not self.config.local_optimization:
            raise NotImplementedError(
                "the DILI-LO ablation is lookup-only (paper Section 7.2)"
            )
        record = not isinstance(tracer, NullTracer)
        router = self._get_router()
        sub = keys[start:]
        leaf_of, rtrace = router.route(sub, record=record)
        recorders = (
            self._descent_recorders(router, len(sub), rtrace)
            if record
            else None
        )
        order = np.argsort(leaf_of, kind="stable")
        sorted_leaf = leaf_of[order]
        bounds = [
            0,
            *(np.flatnonzero(np.diff(sorted_leaf)) + 1).tolist(),
            len(order),
        ]
        leaves = router.leaves
        all_patches: list = []
        dirty: list = []
        for g in range(len(bounds) - 1):
            members = order[bounds[g]:bounds[g + 1]]
            leaf = leaves[int(sorted_leaf[bounds[g]])]
            structural, patches = self._insert_group(
                leaf, members, sub, values, start, out, recorders
            )
            if structural:
                dirty.append((leaf, float(sub[members[0]])))
            else:
                all_patches.extend(patches)
        newly = int(np.count_nonzero(out[start:]))
        self._count += newly
        self.insert_count += newly
        self._plan_note_batch(all_patches, dirty, deletes=False)
        if record:
            for rec in recorders:
                rec.replay(tracer)
        self._sanitize_after(keys)
        return out

    def _insert_group(
        self, leaf, members, keys_sub, values, offset, out, recorders
    ):
        """Apply one leaf's batch inserts in batch order.

        The leaf's bookkeeping (delta/num_pairs/kappa) lives in locals
        across the loop -- nothing below the top frame reads the parent
        leaf's attributes -- and is written back before any `_adjust`
        (which rebuilds the leaf in place) and at the end.  Returns
        ``(structural, patches)`` where ``patches`` are the (key, value)
        pairs that landed in empty slots (plan-patchable) -- discarded
        by the caller when the leaf changed structurally, because the
        subtree recompile covers them wholesale.
        """
        cfg = self.config
        adjust_on = cfg.adjust
        lam = cfg.lambda_adjust
        enlarge = cfg.enlarge
        # Same fanout expression local_opt evaluates for a 2-pair group.
        fanout2 = max(2, int(np.ceil(enlarge * 2)))
        c = self._cycles
        eta = c.linear_model
        br = c.branch
        members_list = members.tolist()
        mkeys = keys_sub[members]
        pos_arr = predict_slots(leaf, mkeys)
        if pos_arr is None:
            pos_list = [leaf.predict_slot(float(k)) for k in mkeys]
        else:
            pos_list = pos_arr.tolist()
        keys_list = mkeys.tolist()
        slots = leaf.slots
        delta = leaf.delta
        npairs = leaf.num_pairs
        kappa = leaf.kappa
        region = leaf.region
        structural = False
        patches: list = []
        m = len(members_list)
        for t in range(m):
            j = members_list[t]
            k = keys_list[t]
            p = pos_list[t]
            rec = recorders[j] if recorders is not None else None
            if rec is not None:
                rec.mem(region)
                rec.compute(eta)
                rec.mem(region, 64 + p * 16)
            entry = slots[p]
            if entry is None:
                pair = (k, values[offset + j])
                slots[p] = pair
                delta += 1
                not_exist = True
                patches.append(pair)
            elif type(entry) is tuple:
                if rec is not None:
                    rec.compute(br)
                if entry[0] == k:
                    not_exist = False
                else:
                    pair = (k, values[offset + j])
                    child = spawn_two(entry, pair, fanout2)
                    if child is None:
                        child = LeafNode(
                            min(entry[0], k), max(entry[0], k)
                        )
                        group = sorted([entry, pair])
                        local_opt(child, group, enlarge=enlarge)
                    slots[p] = child
                    delta += 1 + child.delta
                    self.moved_pairs += 2
                    structural = True
                    not_exist = True
            else:
                delta_before = entry.delta
                self._op_structural = False
                not_exist = self._insert_to_leaf(
                    entry,
                    (k, values[offset + j]),
                    rec if rec is not None else NULL_TRACER,
                )
                delta += 1 + entry.delta - delta_before
                if self._op_structural:
                    structural = True
                elif not_exist:
                    patches.append((k, values[offset + j]))
            if not_exist:
                out[offset + j] = True
                npairs += 1
                # Same float expression as the scalar adjust check --
                # not algebraically rearranged, so it fires on exactly
                # the same ops.
                if adjust_on and delta / npairs > lam * kappa:
                    leaf.delta = delta
                    leaf.num_pairs = npairs
                    self._adjust(leaf)
                    structural = True
                    slots = leaf.slots
                    delta = leaf.delta
                    npairs = leaf.num_pairs
                    kappa = leaf.kappa
                    if t + 1 < m:
                        rest = np.asarray(
                            keys_list[t + 1:], dtype=np.float64
                        )
                        pa = predict_slots(leaf, rest)
                        if pa is None:
                            pos_list[t + 1:] = [
                                leaf.predict_slot(kk)
                                for kk in keys_list[t + 1:]
                            ]
                        else:
                            pos_list[t + 1:] = pa.tolist()
        leaf.delta = delta
        leaf.num_pairs = npairs
        return structural, patches

    def delete_batch(
        self, keys: np.ndarray | list, tracer: Tracer = NULL_TRACER
    ) -> np.ndarray:
        """Remove many keys; boolean array, True where a key existed.

        Semantically identical to ``[self.delete(k) for k in keys]``,
        with the same grouped vectorized execution, plan maintenance,
        and batch-order trace replay as :meth:`insert_batch`.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        n = len(keys)
        out = np.zeros(n, dtype=bool)
        if self.root is None or n == 0:
            return out
        if not self.config.local_optimization:
            raise NotImplementedError(
                "the DILI-LO ablation is lookup-only (paper Section 7.2)"
            )
        record = not isinstance(tracer, NullTracer)
        router = self._get_router()
        leaf_of, rtrace = router.route(keys, record=record)
        recorders = (
            self._descent_recorders(router, n, rtrace) if record else None
        )
        order = np.argsort(leaf_of, kind="stable")
        sorted_leaf = leaf_of[order]
        bounds = [
            0,
            *(np.flatnonzero(np.diff(sorted_leaf)) + 1).tolist(),
            len(order),
        ]
        leaves = router.leaves
        all_removed: list = []
        dirty: list = []
        for g in range(len(bounds) - 1):
            members = order[bounds[g]:bounds[g + 1]]
            leaf = leaves[int(sorted_leaf[bounds[g]])]
            structural, removed = self._delete_group(
                leaf, members, keys, out, recorders
            )
            if structural:
                dirty.append((leaf, float(keys[members[0]])))
            else:
                all_removed.extend(removed)
        self._count -= int(np.count_nonzero(out))
        self._plan_note_batch(all_removed, dirty, deletes=True)
        if record:
            for rec in recorders:
                rec.replay(tracer)
        self._sanitize_after(keys)
        return out

    def _delete_group(self, leaf, members, keys_arr, out, recorders):
        """Apply one leaf's batch deletes in batch order.

        Returns ``(structural, removed_keys)``; ``removed_keys`` are the
        top-frame pair deletions (plan-patchable).
        """
        c = self._cycles
        eta = c.linear_model
        br = c.branch
        members_list = members.tolist()
        mkeys = keys_arr[members]
        pos_arr = predict_slots(leaf, mkeys)
        if pos_arr is None:
            pos_list = [leaf.predict_slot(float(k)) for k in mkeys]
        else:
            pos_list = pos_arr.tolist()
        keys_list = mkeys.tolist()
        slots = leaf.slots
        delta = leaf.delta
        npairs = leaf.num_pairs
        kappa = leaf.kappa
        region = leaf.region
        structural = False
        removed: list = []
        for t in range(len(members_list)):
            j = members_list[t]
            k = keys_list[t]
            p = pos_list[t]
            rec = recorders[j] if recorders is not None else None
            if rec is not None:
                rec.mem(region)
                rec.compute(eta)
                rec.mem(region, 64 + p * 16)
            entry = slots[p]
            if entry is None:
                existed = False
            elif type(entry) is tuple:
                if rec is not None:
                    rec.compute(br)
                if entry[0] == k:
                    slots[p] = None
                    delta -= 1
                    existed = True
                    removed.append(k)
                else:
                    existed = False
            else:
                delta_before = entry.delta
                self._op_structural = False
                existed = self._delete_from_leaf(
                    entry, k, rec if rec is not None else NULL_TRACER
                )
                delta -= 1 + delta_before - entry.delta
                if existed and entry.num_pairs == 1:
                    remaining = next(entry.iter_pairs())
                    slots[p] = remaining
                    delta -= 1
                    structural = True
                elif self._op_structural:
                    structural = True
                elif existed:
                    removed.append(k)
            if existed:
                out[j] = True
                npairs -= 1
                kappa = delta / npairs if npairs > 0 else 1.0
        leaf.delta = delta
        leaf.num_pairs = npairs
        leaf.kappa = kappa
        return structural, removed

    def update_batch(
        self, keys: np.ndarray | list, values: list
    ) -> np.ndarray:
        """Replace values for many existing keys; True where updated.

        Semantically identical to
        ``[self.update(k, v) for k, v in zip(keys, values)]``.  Updates
        never restructure the tree, so the plan maintenance is pure
        value-table patching.  (Like ``update``, this charges no
        simulated cost, so it takes no tracer.)
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        n = len(keys)
        if len(values) != n:
            raise ValueError("values must match keys in length")
        out = np.zeros(n, dtype=bool)
        if self.root is None or n == 0:
            return out
        router = self._get_router()
        leaf_of, _ = router.route(keys)
        order = np.argsort(leaf_of, kind="stable")
        sorted_leaf = leaf_of[order]
        bounds = [
            0,
            *(np.flatnonzero(np.diff(sorted_leaf)) + 1).tolist(),
            len(order),
        ]
        leaves = router.leaves
        updated: list = []
        for g in range(len(bounds) - 1):
            members = order[bounds[g]:bounds[g + 1]].tolist()
            leaf = leaves[int(sorted_leaf[bounds[g]])]
            group_keys = keys[members].tolist()
            if type(leaf) is DenseLeafNode:
                for t, j in enumerate(members):
                    k = group_keys[t]
                    idx = int(np.searchsorted(leaf.keys, k, side="left"))
                    if idx < len(leaf.keys) and leaf.keys[idx] == k:
                        leaf.values[idx] = values[j]
                        out[j] = True
                        updated.append((k, values[j]))
                continue
            garr = np.asarray(group_keys, dtype=np.float64)
            pos_arr = predict_slots(leaf, garr)
            if pos_arr is None:
                pos_list = [leaf.predict_slot(k) for k in group_keys]
            else:
                pos_list = pos_arr.tolist()
            for t, j in enumerate(members):
                k = group_keys[t]
                node = leaf
                p = pos_list[t]
                while True:
                    entry = node.slots[p]
                    if entry is None:
                        break
                    if type(entry) is tuple:
                        if entry[0] == k:
                            node.slots[p] = (k, values[j])
                            out[j] = True
                            updated.append((k, values[j]))
                        break
                    node = entry
                    p = node.predict_slot(k)
        self._plan_note_updates(updated)
        self._sanitize_after(keys)
        return out

    def _descent_recorders(
        self, router: InternalRouter, n: int, trace: list
    ) -> list[RecordingTracer]:
        """Per-key recorders pre-loaded with the routing descent events.

        Synthesizes, for every key, exactly the events the scalar
        insert/delete descent charges (phase step1, then per internal
        level: node header read, model evaluation, child-pointer read,
        then phase step2).  Group execution appends the leaf-probe
        events; the caller replays every recorder in batch order.
        """
        recs = [RecordingTracer() for _ in range(n)]
        eta = self._cycles.linear_model
        region = router.region.tolist()
        depth = len(trace)
        if depth:
            path_node = np.full((n, depth), -1, dtype=np.int64)
            path_pos = np.full((n, depth), -1, dtype=np.int64)
            for level, (idx, node, pos) in enumerate(trace):
                path_node[idx, level] = node
                path_pos[idx, level] = pos
            nodes_list = path_node.tolist()
            pos_list = path_pos.tolist()
        else:
            nodes_list = [[] for _ in range(n)]
            pos_list = nodes_list
        for i in range(n):
            rec = recs[i]
            rec.phase("step1")
            rn = nodes_list[i]
            rp = pos_list[i]
            for level in range(len(rn)):
                v = rn[level]
                if v < 0:
                    break  # resolved at the previous level
                rec.mem(region[v])
                rec.compute(eta)
                rec.mem(region[v], 64 + rp[level] * 8)
            rec.phase("step2")
        return recs

    def _plan_note_batch(
        self, slot_keys: list, dirty: list, *, deletes: bool
    ) -> None:
        """Maintain the plan after a write batch.

        ``slot_keys`` are the patchable slot-level mutations (pairs for
        inserts, keys for deletes) from non-structural groups;
        ``dirty`` holds ``(leaf, key)`` for structurally changed
        top-level leaves, each recompiled as one subtree splice.
        """
        with self._plan_mutex:
            plan = self._flat
            if plan is None:
                return
            ok = True
            if slot_keys:
                if deletes:
                    new = plan.applied_delete_many(slot_keys)
                else:
                    new = plan.applied_insert_many(slot_keys)
                if new is not None:
                    self._flat = plan = new
                    self.plan_patches += len(slot_keys)
                else:
                    ok = False
            if ok and dirty:
                new = plan.applied_recompile_subtrees(
                    [(key, leaf) for leaf, key in dirty]
                )
                if new is not None:
                    self._flat = new
                    self.plan_subtree_recompiles += len(dirty)
                else:
                    ok = False
            if not ok:
                self._invalidate_plan()

    # ------------------------------------------------------------------
    # Value updates and convenience accessors
    # ------------------------------------------------------------------

    def update(self, key: float, value: object) -> bool:
        """Replace the value stored under an existing key.

        Returns False (and stores nothing) when the key is absent; use
        :meth:`insert` to add new keys.  Updates touch exactly one slot
        and never restructure the tree, so the compiled read plan is
        patched in place (one ``values`` entry) rather than dropped.
        """
        key = float(key)
        node = self.root
        if node is None:
            return False
        while type(node) is InternalNode:
            node = node.children[node.child_index(key)]
        if type(node) is DenseLeafNode:
            idx = int(np.searchsorted(node.keys, key, side="left"))
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                self._plan_note_update(key, value)
                self._sanitize_after((key,))
                return True
            return False
        while True:
            pos = node.predict_slot(key)
            entry = node.slots[pos]
            if entry is None:
                return False
            if type(entry) is tuple:
                if entry[0] == key:
                    node.slots[pos] = (key, value)
                    self._plan_note_update(key, value)
                    self._sanitize_after((key,))
                    return True
                return False
            node = entry

    def pop(self, key: float, default: object = None) -> object:
        """Remove ``key`` and return its value (``default`` if absent)."""
        value = self.get(key)
        if value is None:
            return default
        self.delete(key)
        return value

    def min_item(self) -> Pair | None:
        """The smallest-key pair, or None when empty."""
        for pair in self.items():
            return pair
        return None

    def max_item(self) -> Pair | None:
        """The largest-key pair, or None when empty."""
        last = None
        for pair in self.items():
            last = pair
        return last

    def count_range(self, lo: float, hi: float) -> int:
        """Number of keys in [lo, hi).

        Counts without materializing pairs: with a compiled flat plan
        this is two binary searches over the sorted key array; without
        one, the descent recurses only into the two boundary subtrees
        and takes strictly-interior subtrees wholesale from their
        ``num_pairs`` bookkeeping.
        """
        lo = float(lo)
        hi = float(hi)
        if self.root is None or hi <= lo:
            return 0
        if self._flat is not None:
            return self._flat.count_range(lo, hi)
        return _count_range_node(self.root, lo, hi)

    def keys(self) -> Iterator[float]:
        """All keys in ascending order (no pair tuples materialized)."""
        if self.root is not None:
            yield from _iter_node_keys(self.root)

    def values(self) -> Iterator[object]:
        """All values in ascending key order (no pair tuples built)."""
        if self.root is not None:
            yield from _iter_node_values(self.root)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    _PICKLE_VERSION = 2

    def __getstate__(self) -> dict:
        """Pickle without the compiled plan/router (derived state)."""
        state = dict(self.__dict__)
        state["_flat"] = None
        state["_router"] = None
        state["sanitizer"] = None
        state["_plan_mutex"] = None  # locks do not pickle; recreated
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__["_plan_mutex"] = threading.RLock()
        # Files written before the flat plan / batch write path existed
        # lack these fields.
        self.__dict__.setdefault("_flat", None)
        self.__dict__.setdefault("_cycles", self.config.cycles)
        self.__dict__.setdefault("_router", None)
        self.__dict__.setdefault("_op_structural", False)
        self.__dict__.setdefault("plan_recompiles", 0)
        self.__dict__.setdefault("plan_subtree_recompiles", 0)
        self.__dict__.setdefault("plan_patches", 0)
        self.__dict__.setdefault("sanitizer", None)

    def save(self, path) -> None:
        """Serialize the index to ``path``, atomically and checksummed.

        The pickled index travels inside an envelope carrying a format
        version and a CRC32 of the payload; :meth:`load` refuses files
        written by incompatible versions or whose checksum does not
        match.  The write goes to a temp file in the same directory,
        is fsynced, then renamed over ``path`` -- a crash mid-save
        leaves either the complete old file or the complete new one,
        never a torn mix.
        """
        import os
        import pickle
        import zlib

        path = os.fspath(path)
        index_bytes = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "format_version": self._PICKLE_VERSION,
            "crc32": zlib.crc32(index_bytes),
            "index_pickle": index_bytes,
        }
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as fh:
            pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    @classmethod
    def load(cls, path, *, validate: bool = False) -> "DILI":
        """Deserialize an index written by :meth:`save`.

        Args:
            path: File written by :meth:`save`.
            validate: Also run :meth:`validate` on the loaded index,
                turning silent structural damage into a hard error.

        Raises:
            ValueError: The file is truncated, corrupt (checksum
                mismatch), from an incompatible version, or not a
                saved DILI at all.
        """
        import pickle
        import zlib

        try:
            with open(path, "rb") as fh:
                # The envelope predates the CRC discipline; the real
                # payload below is checksummed before unpickling.
                envelope = pickle.load(fh)  # repro-check: allow CHK007 -- legacy save envelope, payload CRC-checked below
        except OSError:
            raise
        except Exception as exc:
            # A truncated or bit-flipped pickle stream can raise nearly
            # anything; surface it as one clear error, not a traceback
            # from the pickle internals.
            raise ValueError(
                f"{path} is truncated or not a saved DILI index: {exc}"
            ) from exc
        if not isinstance(envelope, dict) or "format_version" not in envelope:
            raise ValueError(f"{path} is not a saved DILI index")
        version = envelope.get("format_version")
        if version == 1:
            # Legacy format: the index was pickled inline, no checksum.
            index = envelope.get("index")
        elif version == cls._PICKLE_VERSION:
            index_bytes = envelope.get("index_pickle")
            if not isinstance(index_bytes, bytes):
                raise ValueError(f"{path} is not a saved DILI index")
            if zlib.crc32(index_bytes) != envelope.get("crc32"):
                raise ValueError(
                    f"{path}: payload checksum mismatch -- the file is "
                    f"corrupt or was torn by an interrupted write"
                )
            index = pickle.loads(index_bytes)  # repro-check: allow CHK007 -- crc32 verified two lines up
        else:
            raise ValueError(
                f"unsupported DILI file version {version!r}"
            )
        if not isinstance(index, cls):
            raise ValueError(f"{path} does not contain a DILI index")
        if validate:
            index.validate()
        return index

    # ------------------------------------------------------------------
    # Ordered iteration and range queries
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Pair]:
        """All (key, value) pairs in ascending key order."""
        if self.root is None:
            return
        yield from self._iter_node(self.root)

    def _iter_node(self, node) -> Iterator[Pair]:
        if type(node) is InternalNode:
            for child in node.children:
                yield from self._iter_node(child)
        elif type(node) is DenseLeafNode:
            yield from node.iter_pairs()
        else:
            yield from node.iter_pairs()

    def iter_from(self, lo: float) -> Iterator[Pair]:
        """Pairs with key >= lo, ascending (the scan primitive)."""
        if self.root is None:
            return
        yield from self._iter_node_from(self.root, lo)

    def _iter_node_from(self, node, lo: float) -> Iterator[Pair]:
        if type(node) is InternalNode:
            start = node.child_index(lo)
            children = node.children
            yield from self._iter_node_from(children[start], lo)
            for i in range(start + 1, len(children)):
                yield from self._iter_node(children[i])
        elif type(node) is DenseLeafNode:
            start = int(np.searchsorted(node.keys, lo, side="left"))
            for i in range(start, len(node.keys)):
                yield (float(node.keys[i]), node.values[i])
        else:
            start = node.predict_slot(lo)
            slots = node.slots
            for i in range(start, len(slots)):
                entry = slots[i]
                if entry is None:
                    continue
                if type(entry) is tuple:
                    if entry[0] >= lo:
                        yield entry
                else:
                    if i == start:
                        yield from self._iter_node_from(entry, lo)
                    else:
                        yield from entry.iter_pairs()

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        """All pairs with lo <= key < hi, in ascending key order.

        Dense (DILI-LO) leaves are harvested with vectorised slices --
        the streaming advantage Fig. 6b credits them with -- while
        locally optimized leaves walk their slot arrays.
        """
        out: list[Pair] = []
        if self.root is not None:
            self._collect_range(self.root, lo, hi, out)
        return out

    def _collect_range(
        self, node, lo: float, hi: float, out: list[Pair]
    ) -> bool:
        """Append pairs in [lo, hi); False once a key >= hi is seen."""
        if type(node) is InternalNode:
            start = node.child_index(lo)
            for i in range(start, len(node.children)):
                if not self._collect_range(node.children[i], lo, hi, out):
                    return False
            return True
        if type(node) is DenseLeafNode:
            keys = node.keys
            a = int(np.searchsorted(keys, lo, side="left"))
            b = int(np.searchsorted(keys, hi, side="left"))
            out.extend(zip(keys[a:b].tolist(), node.values[a:b]))
            return b >= len(keys)
        start = node.predict_slot(lo)
        slots = node.slots
        for i in range(start, len(slots)):
            entry = slots[i]
            if entry is None:
                continue
            if type(entry) is tuple:
                key = entry[0]
                if key >= hi:
                    return False
                if key >= lo:
                    out.append(entry)
            else:
                if not self._collect_range(entry, lo, hi, out):
                    return False
        return True

    def scan(self, lo: float, count: int) -> list[Pair]:
        """Up to ``count`` pairs starting at the first key >= lo."""
        out = []
        for pair in self.iter_from(lo):
            out.append(pair)
            if len(out) >= count:
                break
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Modelled C++ footprint (header + slot/pointer arrays)."""
        return _memory_bytes(self.root)

    def validate(self) -> None:
        """Check structural invariants; raises InvariantError on damage.

        Verifies that every stored pair is found at exactly its predicted
        slot, that per-leaf pair counts match, and that in-order
        iteration yields strictly increasing keys.  The raised
        :class:`repro.check.errors.InvariantError` subclasses
        ``AssertionError`` but survives ``python -O``.
        """
        if self.root is None:
            if self._count != 0:
                raise InvariantError("empty tree with nonzero count")
            return
        total = _validate_node(self.root)
        if total != self._count:
            raise InvariantError(
                f"pair count mismatch: walked {total}, tracked {self._count}"
            )
        last = -math.inf
        for key, _ in self.items():
            if key <= last:
                raise InvariantError(f"iteration order broken at {key}")
            last = key


def _count_all(node) -> int:
    """Pairs under a subtree, from per-node bookkeeping (no pair walk)."""
    if type(node) is InternalNode:
        return sum(_count_all(c) for c in node.children)
    return node.num_pairs  # LeafNode counter / DenseLeafNode property


def _count_range_node(node, lo: float, hi: float) -> int:
    """Pairs with key in [lo, hi) under ``node``, counting interior
    subtrees wholesale.

    The key observation: a child strictly between the child owning
    ``lo`` and the child owning ``hi`` can only hold keys inside
    ``(lo, hi)`` -- the child mapping (``child_index`` for internals,
    ``predict_slot`` for leaves) is monotone in the key, and a key
    outside the range would have mapped to a boundary child or beyond.
    Only the two boundary subtrees need recursive filtering.
    """
    if type(node) is InternalNode:
        i_lo = node.child_index(lo)
        i_hi = node.child_index(hi)
        if i_lo == i_hi:
            return _count_range_node(node.children[i_lo], lo, hi)
        total = _count_range_node(node.children[i_lo], lo, hi)
        total += _count_range_node(node.children[i_hi], lo, hi)
        for i in range(i_lo + 1, i_hi):
            total += _count_all(node.children[i])
        return total
    if type(node) is DenseLeafNode:
        a = int(np.searchsorted(node.keys, lo, side="left"))
        b = int(np.searchsorted(node.keys, hi, side="left"))
        return b - a
    p_lo = node.predict_slot(lo)
    p_hi = node.predict_slot(hi)
    if p_lo == p_hi:
        return _count_slot(node.slots[p_lo], lo, hi)
    total = _count_slot(node.slots[p_lo], lo, hi)
    total += _count_slot(node.slots[p_hi], lo, hi)
    slots = node.slots
    for p in range(p_lo + 1, p_hi):
        entry = slots[p]
        if entry is None:
            continue
        total += 1 if type(entry) is tuple else entry.num_pairs
    return total


def _count_slot(entry, lo: float, hi: float) -> int:
    """Count within one boundary slot of a leaf."""
    if entry is None:
        return 0
    if type(entry) is tuple:
        return 1 if lo <= entry[0] < hi else 0
    return _count_range_node(entry, lo, hi)


def _iter_node_keys(node) -> Iterator[float]:
    """Keys in ascending order, straight off the node arrays."""
    if type(node) is InternalNode:
        for child in node.children:
            yield from _iter_node_keys(child)
    elif type(node) is DenseLeafNode:
        yield from (float(k) for k in node.keys)
    else:
        for entry in node.slots:
            if entry is None:
                continue
            if type(entry) is tuple:
                yield entry[0]
            else:
                yield from _iter_node_keys(entry)


def _iter_node_values(node) -> Iterator[object]:
    """Values in ascending key order, straight off the node arrays."""
    if type(node) is InternalNode:
        for child in node.children:
            yield from _iter_node_values(child)
    elif type(node) is DenseLeafNode:
        yield from node.values
    else:
        for entry in node.slots:
            if entry is None:
                continue
            if type(entry) is tuple:
                yield entry[1]
            else:
                yield from _iter_node_values(entry)


def _memory_bytes(node) -> int:
    if node is None:
        return 0
    if type(node) is InternalNode:
        return 32 + 8 * len(node.children) + sum(
            _memory_bytes(c) for c in node.children
        )
    if type(node) is DenseLeafNode:
        return 64 + 16 * len(node.keys)
    total = 64 + 16 * len(node.slots)
    for entry in node.slots:
        if entry is not None and type(entry) is not tuple:
            total += _memory_bytes(entry)
    return total


def _validate_node(node) -> int:
    """Recursively verify a subtree; returns the number of pairs in it."""
    if type(node) is InternalNode:
        if len(node.children) < 1:
            raise InvariantError("internal node without children")
        return sum(_validate_node(c) for c in node.children)
    if type(node) is DenseLeafNode:
        if len(node.keys) != len(node.values):
            raise InvariantError("dense leaf keys/values length mismatch")
        if len(node.keys) > 1 and not bool(np.all(np.diff(node.keys) > 0)):
            raise InvariantError("dense leaf unsorted")
        return len(node.keys)
    count = 0
    for i, entry in enumerate(node.slots):
        if entry is None:
            continue
        if type(entry) is tuple:
            predicted = node.predict_slot(entry[0])
            if predicted != i:
                raise InvariantError(
                    f"pair {entry[0]} stored at slot {i}, "
                    f"predicted {predicted}"
                )
            count += 1
        else:
            count += _validate_node(entry)
    if count != node.num_pairs:
        raise InvariantError(
            f"leaf pair count mismatch: walked {count}, "
            f"tracked {node.num_pairs}"
        )
    return count
