"""Cache-aware search-cost model (Section 3 and Eq. 5-7 of the paper).

These functions score candidate node layouts during BU-Tree construction.
They estimate, in CPU cycles, how long the *final DILI* would take to find
a key if the layout under consideration were adopted:

* descending one level costs a node load plus a model evaluation
  (``theta_N + eta``),
* imperfect models at a level cost an exponential search whose iteration
  count is ``~log2`` of the prediction error, damped by ``rho**h`` because
  high levels influence the eventual leaf layout less (Section 4.4).

The greedy merging of Algorithm 3 needs the *estimated accumulated search
cost* ``T_ea`` of a breakpoint list in O(1) per candidate, so the entry
point here takes aggregate statistics (piece count and the key-weighted
mean log-error) rather than raw keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulate.latency import CyclesPerOp, DEFAULT_CYCLES


@dataclass(frozen=True)
class CostParams:
    """Constants of the search-cost model.

    Attributes:
        cycles: Hardware charge table (theta_N, eta, mu_E, ... in cycles).
        rho: Decay factor applied per level above the one being laid out
            (Eq. 5); the paper uses 0.2 and finds 0.05-0.5 near-equivalent
            (Table 7).
        omega: Average maximum fanout; greedy merging stops once the mean
            piece size reaches omega (Algorithm 3 line 6; paper: 4096).
    """

    cycles: CyclesPerOp = DEFAULT_CYCLES
    rho: float = 0.2
    omega: int = 4096


DEFAULT_COST = CostParams()


def exp_search_cycles(error: float, cycles: CyclesPerOp = DEFAULT_CYCLES) -> float:
    """Cost ``t_E`` of an exponential search starting ``error`` slots away.

    The paper models the search as ``2*log2(error)`` iterations, each
    paying one pair access (``theta_E``, a potential cache miss) plus
    ``mu_E`` cycles of arithmetic (Section 3).
    """
    if error < 1.0:
        return 0.0
    iters = 2.0 * math.log2(error + 1.0)
    return iters * (cycles.exp_search_step + cycles.cache_miss)


def bu_node_search_cycles(
    error: float,
    height: int,
    params: CostParams = DEFAULT_COST,
) -> float:
    """Cost ``T_ns`` of visiting one BU node at ``height`` (Eq. 5).

    ``error`` is the node model's prediction error for the key; the local
    correction term is damped by ``rho**height``.
    """
    c = params.cycles
    local = 0.0
    if error >= 1.0:
        local = math.log2(error + 1.0) * (c.exp_search_step + c.cache_miss)
    return c.cache_miss + c.linear_model + (params.rho ** height) * local


def estimated_depth(n_below: int, k: int) -> float:
    """Estimated depth ``delta`` of nodes at the level being laid out.

    With ``n_below`` nodes one level down grouped into ``k`` pieces, the
    average fanout is ``n_below/k`` and the tree above needs
    ``delta = log_{n_below/k}(n_below)`` further levels to converge to a
    single root (Eq. 7's worked example).
    """
    if k <= 1:
        return 1.0
    if n_below <= 1:
        return 1.0
    fanout = n_below / k
    if fanout <= 1.0:
        # Merging made no progress; treat as a full extra level per node.
        return float(n_below)
    return math.log(n_below) / math.log(fanout)


def accumulated_cost(
    n_below: int,
    k: int,
    mean_log_error: float,
    height: int,
    params: CostParams = DEFAULT_COST,
) -> float:
    """Estimated accumulated search cost ``T_ea`` of a breakpoint list.

    Args:
        n_below: Number of nodes (or keys, at height 0) one level down.
        k: Number of pieces the candidate breakpoint list induces.
        mean_log_error: Key-weighted mean of ``log2(prediction error)``
            across the candidate pieces; greedy merging maintains this
            incrementally from per-piece RMSEs.
        height: Height ``h`` of the level being laid out.
        params: Model constants.

    Returns:
        The cost in cycles of descending from the (estimated) root to a
        node at this height, per key (Eq. 7).  Fewer pieces mean a
        shallower tree but larger per-piece error; this function encodes
        that trade-off.
    """
    c = params.cycles
    delta = estimated_depth(n_below, k)
    ceil_delta = math.ceil(delta)
    local = mean_log_error * (c.exp_search_step + c.cache_miss)
    total = 0.0
    for h_prime in range(height, ceil_delta + 1):
        weight = min(1.0, delta + 1.0 - h_prime)
        if weight <= 0.0:
            continue
        level_cost = c.cache_miss + c.linear_model
        level_cost += (params.rho ** h_prime) * local
        total += weight * level_cost
    return total
