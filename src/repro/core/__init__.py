"""The paper's primary contribution: the DILI learned index.

Subpackage layout (see DESIGN.md for the full inventory):

* :mod:`repro.core.linear_model` -- two-parameter linear models and
  mergeable least-squares statistics.
* :mod:`repro.core.cost` -- the cache-aware search-cost model (Eq. 2, 5-7).
* :mod:`repro.core.segmentation` -- greedy merging (Algorithm 3).
* :mod:`repro.core.butree` -- the bottom-up mirror tree (Algorithm 2).
* :mod:`repro.core.nodes` -- DILI internal/leaf node structures.
* :mod:`repro.core.local_opt` -- leaf local optimization (Algorithm 5).
* :mod:`repro.core.bulk_load` -- BU-Tree-based bulk loading (Algorithm 4).
* :mod:`repro.core.dili` -- the public :class:`DILI` index
  (Algorithms 1, 6, 7 and 8).
* :mod:`repro.core.concurrent` -- lock-crabbing wrapper (Appendix A.8).
* :mod:`repro.core.stats` -- structural statistics (Table 6 metrics).
"""

from repro.core.dili import DILI, DiliConfig
from repro.core.linear_model import LinearModel, SegmentStats

__all__ = ["DILI", "DiliConfig", "LinearModel", "SegmentStats"]
