"""Node structures of the DILI tree.

Three node kinds appear in a DILI:

* :class:`InternalNode` -- children equally divide the key range, so the
  Eq. 1 model locates the right child with one multiply-add and no local
  search.  Stores only the model and the child-pointer array ``C``.
* :class:`LeafNode` -- the locally optimized leaf of Section 5.  Its
  entry array ``V`` holds pairs at their model-predicted slots; slots
  where several keys collided hold a nested :class:`LeafNode` instead,
  and unused slots hold ``None``.
* :class:`DenseLeafNode` -- the DILI-LO ablation leaf: pairs packed
  tightly, looked up with model prediction plus exponential search
  (Algorithm 1).

Pairs are plain ``(key, value)`` tuples; slot-type dispatch is a cheap
``type(entry) is tuple`` check in the hot search loop.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.linear_model import LinearModel
from repro.simulate.tracer import region_id

Pair = tuple  # (key, value)


class InternalNode:
    """Equal-width internal node (Section 2, "Internal Nodes")."""

    __slots__ = ("lb", "ub", "slope", "intercept", "children", "region")

    def __init__(self, lb: float, ub: float, fanout: int) -> None:
        self.lb = lb
        self.ub = ub
        model = LinearModel.from_range(lb, ub, fanout)
        self.slope = model.slope
        self.intercept = model.intercept
        self.children: list[object] = [None] * fanout
        self.region = region_id()

    @property
    def fanout(self) -> int:
        return len(self.children)

    def child_index(self, key: float) -> int:
        """Index of the child covering ``key``, clamped into range.

        Clamping makes out-of-range keys land in the boundary child,
        which is how inserts beyond the bulk-loaded range are absorbed.
        """
        pos = int(math.floor(self.intercept + self.slope * key))
        last = len(self.children) - 1
        if pos < 0:
            return 0
        if pos > last:
            return last
        return pos

    def child_bounds(self, index: int) -> tuple[float, float]:
        """Key range [lb, ub) assigned to child ``index``."""
        width = (self.ub - self.lb) / len(self.children)
        return self.lb + index * width, self.lb + (index + 1) * width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InternalNode([{self.lb}, {self.ub}), fo={self.fanout})"


class LeafNode:
    """Locally optimized leaf (Section 5, Fig. 4).

    Attributes mirror the paper's bookkeeping: ``num_pairs`` is Omega,
    ``delta`` is Delta (total entry accesses to find every covered key
    from here), ``kappa`` is Delta/Omega as of the last local
    optimization, and ``alpha`` counts adjustments so far.
    """

    __slots__ = (
        "lb",
        "ub",
        "slope",
        "intercept",
        "slots",
        "num_pairs",
        "delta",
        "kappa",
        "alpha",
        "region",
    )

    def __init__(self, lb: float, ub: float) -> None:
        self.lb = lb
        self.ub = ub
        self.slope = 0.0
        self.intercept = 0.0
        self.slots: list[object] = [None]
        self.num_pairs = 0
        self.delta = 0
        self.kappa = 1.0
        self.alpha = 0
        self.region = region_id()

    @property
    def fanout(self) -> int:
        return len(self.slots)

    def set_model(self, model: LinearModel) -> None:
        self.slope = model.slope
        self.intercept = model.intercept

    def predict_slot(self, key: float) -> int:
        """``f_D`` of Algorithm 5 line 4: floored, clamped prediction."""
        pos = int(math.floor(self.intercept + self.slope * key))
        last = len(self.slots) - 1
        if pos < 0:
            return 0
        if pos > last:
            return last
        return pos

    def iter_pairs(self) -> Iterator[Pair]:
        """All pairs under this leaf (including nested leaves), in key order.

        In-order traversal is key-ordered because the slot prediction is
        monotone in the key and nested leaves group equal-slot keys.
        """
        for entry in self.slots:
            if entry is None:
                continue
            if type(entry) is tuple:
                yield entry
            else:
                yield from entry.iter_pairs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeafNode([{self.lb}, {self.ub}), fo={self.fanout}, "
            f"pairs={self.num_pairs})"
        )


class DenseLeafNode:
    """Tightly packed leaf for the DILI-LO ablation (no local opt).

    Pairs are stored as parallel sorted arrays; lookups follow
    Algorithm 1: model prediction, then exponential search.
    """

    __slots__ = ("lb", "ub", "slope", "intercept", "keys", "values", "region")

    def __init__(
        self,
        lb: float,
        ub: float,
        keys: np.ndarray,
        values: list,
        model: LinearModel,
    ) -> None:
        self.lb = lb
        self.ub = ub
        self.keys = keys
        self.values = values
        self.slope = model.slope
        self.intercept = model.intercept
        self.region = region_id()

    @property
    def num_pairs(self) -> int:
        return len(self.keys)

    def predict_position(self, key: float) -> int:
        """Unclamped local position estimate for the exponential search."""
        return int(math.floor(self.intercept + self.slope * key))

    def iter_pairs(self) -> Iterator[Pair]:
        for i in range(len(self.keys)):
            yield (float(self.keys[i]), self.values[i])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DenseLeafNode([{self.lb}, {self.ub}), n={len(self.keys)})"
