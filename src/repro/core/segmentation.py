"""Greedy merging segmentation (Algorithm 3 of the paper).

Given a sorted sequence ``xs`` (raw keys at height 0, child lower bounds
at higher levels) with implicit targets ``ys = 0..n-1``, the algorithm:

1. starts from ``n/2`` pieces of two (the last of three) elements,
2. repeatedly merges the adjacent pair of pieces whose merge increases
   total linear-fit loss the least, maintaining per-piece statistics in
   O(1) per merge via :class:`~repro.core.linear_model.SegmentStats`,
3. after every merge evaluates the *estimated accumulated search cost*
   (Eq. 7) of the current breakpoint list in O(1),
4. stops when the mean piece size reaches the fanout cap ``omega`` and
   returns the segmentation whose cost estimate was smallest.

Because merging is destructive, the merge order is recorded and the
winning configuration is reconstructed afterwards from the removed
boundaries; this keeps the whole routine O(n log n).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import CostParams, DEFAULT_COST, accumulated_cost
from repro.core.linear_model import LinearModel, SegmentStats


@dataclass(frozen=True)
class Segment:
    """One piece of the chosen segmentation.

    Attributes:
        start: Index of the first element (inclusive) in the input array.
        end: Index one past the last element.
        model: Least-squares line fit on (xs[start:end], start..end-1),
            i.e. targets are *global* positions, matching Eq. 3/4 where
            the node-local model subtracts the piece offset afterwards.
        rmse: Root-mean-square error of the fit over this piece.
    """

    start: int
    end: int
    model: LinearModel
    rmse: float

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class SegmentationResult:
    """Output of :func:`greedy_merging`.

    Attributes:
        segments: Chosen pieces in key order.
        cost: Estimated accumulated search cost of the chosen layout.
        cost_curve: ``{k: cost}`` for every piece count evaluated; kept
            for the hyperparameter benchmarks and tests.
    """

    segments: list[Segment]
    cost: float
    cost_curve: dict[int, float] = field(default_factory=dict)

    def piece_starts(self) -> list[int]:
        """Start index of each piece (indices into the input array)."""
        return [seg.start for seg in self.segments]


def _weighted_log_error(stats: SegmentStats) -> float:
    """Contribution of one piece to the mean-log-error aggregate.

    ``T_ea`` needs the key-weighted mean of ``log2(prediction error)``;
    per piece we use ``n * log2(rmse + 1)`` with the piece RMSE as the
    error proxy (the +1 keeps perfect pieces at zero cost).
    """
    if stats.n == 0:
        return 0.0
    return stats.n * math.log2(stats.rmse() + 1.0)


def _initial_pieces(n: int) -> list[tuple[int, int]]:
    """Size-2 pieces over ``range(n)``; the last piece absorbs a leftover.

    Mirrors Algorithm 3 line 2: ``{{0,1},{2,3},...,{2k-2,2k-1,n-1}}``.
    """
    if n <= 3:
        return [(0, n)]
    k = n // 2
    pieces = [(2 * i, 2 * i + 2) for i in range(k)]
    if n % 2 == 1:
        start, _ = pieces[-1]
        pieces[-1] = (start, n)
    return pieces


def _initial_stats(
    xs: np.ndarray, ys: np.ndarray, pieces: list[tuple[int, int]]
) -> list[SegmentStats | None]:
    """Statistics of the initial size-2 pieces, computed vectorised.

    All pieces except possibly the last have exactly two points, whose
    moments have closed forms; building ~n/2 SegmentStats objects through
    the generic constructor dominates construction time otherwise.
    """
    k = len(pieces)
    if k == 0:
        return []
    # The final piece may hold three points; handle it generically.
    tail_start, tail_end = pieces[-1]
    even = k - 1 if (tail_end - tail_start) != 2 else k
    x0 = xs[0:2 * even:2]
    x1 = xs[1:2 * even:2]
    y0 = ys[0:2 * even:2]
    y1 = ys[1:2 * even:2]
    mean_x = (x0 + x1) * 0.5
    mean_y = (y0 + y1) * 0.5
    half_dx = (x1 - x0) * 0.5
    half_dy = (y1 - y0) * 0.5
    sxx = 2.0 * half_dx * half_dx
    syy = 2.0 * half_dy * half_dy
    sxy = 2.0 * half_dx * half_dy
    stats: list[SegmentStats | None] = [
        SegmentStats(
            n=2,
            mean_x=float(mean_x[i]),
            mean_y=float(mean_y[i]),
            sxx=float(sxx[i]),
            syy=float(syy[i]),
            sxy=float(sxy[i]),
        )
        for i in range(even)
    ]
    if even != k:
        stats.append(
            SegmentStats.from_arrays(
                xs[tail_start:tail_end], ys[tail_start:tail_end]
            )
        )
    return stats


def greedy_merging(
    xs: np.ndarray,
    *,
    height: int = 0,
    params: CostParams = DEFAULT_COST,
    sample: bool = False,
    sample_piece_threshold: int = 8,
) -> SegmentationResult:
    """Find a good piecewise-linear segmentation of ``xs`` (Algorithm 3).

    Args:
        xs: Sorted, strictly increasing 1-D array of keys or bounds.
        height: Tree height of the level being laid out (0 = leaves);
            enters the cost model through the ``rho**h`` damping.
        params: Cost-model constants, including the fanout cap ``omega``.
        sample: Apply the Appendix A.7 sampling strategy -- pieces larger
            than ``sample_piece_threshold`` fit their final model on every
            second element, halving fit work with little layout change.
        sample_piece_threshold: Piece size above which sampling kicks in.

    Returns:
        The segmentation with the smallest estimated accumulated search
        cost among all piece counts visited by the merge schedule.
    """
    xs = np.asarray(xs, dtype=np.float64)
    n = len(xs)
    if n == 0:
        return SegmentationResult(segments=[], cost=0.0)
    ys = np.arange(n, dtype=np.float64)
    pieces = _initial_pieces(n)
    if len(pieces) == 1:
        seg = _fit_segment(xs, ys, 0, n, sample, sample_piece_threshold)
        return SegmentationResult(segments=[seg], cost=0.0, cost_curve={1: 0.0})

    # The merge loop runs O(n) times, so per-piece state lives in one
    # tuple per piece -- (n, mean_x, mean_y, sxx, syy, sxy, sse, wle) --
    # with the SegmentStats / sse / weighted-log-error math inlined
    # (Chan et al. pairwise updates).  The arithmetic replicates the
    # SegmentStats operation order exactly, keeping the merge schedule
    # (and therefore the produced tree) bit-identical to the object
    # version while dropping its allocation and call overhead.
    k = len(pieces)
    k0 = k

    tail_start, tail_end = pieces[-1]
    even = k - 1 if (tail_end - tail_start) != 2 else k
    # Piece i starts at 2i (the tail covers three elements when n is odd).
    starts = list(range(0, 2 * even, 2))
    if even != k:
        starts.append(tail_start)
    x0 = xs[0:2 * even:2]
    x1 = xs[1:2 * even:2]
    y0 = ys[0:2 * even:2]
    y1 = ys[1:2 * even:2]
    half_dx = (x1 - x0) * 0.5
    half_dy = (y1 - y0) * 0.5
    mx_arr = (x0 + x1) * 0.5
    my_arr = (y0 + y1) * 0.5
    sxx_arr = 2.0 * half_dx * half_dx
    syy_arr = 2.0 * half_dy * half_dy
    sxy_arr = 2.0 * half_dx * half_dy
    # sse = syy - sxy^2/sxx, clamped at zero.  Keys strictly increase so
    # sxx > 0 almost always, but sub-ulp spacing can underflow it to 0;
    # the scalar guard (`sxx <= 0 -> sse = 0`) is replicated by masking,
    # since np.maximum would propagate the 0/0 NaN instead of clamping.
    with np.errstate(invalid="ignore", divide="ignore"):
        sse_arr = syy_arr - (sxy_arr * sxy_arr) / sxx_arr
    np.maximum(sse_arr, 0.0, out=sse_arr)
    sse_arr[sxx_arr <= 0.0] = 0.0

    log2 = math.log2
    sqrt = math.sqrt
    sse_l = sse_arr.tolist()
    wle_l = []
    wle_append = wle_l.append
    total_wle = 0.0
    for sse_v in sse_l:
        if sse_v == 0.0:
            # log2(sqrt(0) + 1) is exactly 0; two-point pieces fit their
            # line perfectly, so the clamp above makes this common.
            wle_append(0.0)
        else:
            wle_v = 2 * log2(sqrt(sse_v / 2) + 1.0)
            wle_append(wle_v)
            total_wle += wle_v
    st = list(zip([2] * even, mx_arr.tolist(), my_arr.tolist(),
                  sxx_arr.tolist(), syy_arr.tolist(), sxy_arr.tolist(),
                  sse_l, wle_l))
    if even != k:
        tail = SegmentStats.from_arrays(xs[tail_start:tail_end],
                                        ys[tail_start:tail_end])
        tail_sse = tail.sse()
        tail_wle = tail.n * log2(sqrt(tail_sse / tail.n) + 1.0)
        total_wle += tail_wle
        st.append((tail.n, tail.mean_x, tail.mean_y, tail.sxx, tail.syy,
                   tail.sxy, tail_sse, tail_wle))

    nxt = list(range(1, k)) + [-1]
    prv = [-1] + list(range(k - 1))
    version = [0] * k

    max_piece = 2 * params.omega
    k_min = max(1, math.ceil(n / params.omega))

    # Candidate entries carry the exact (i, j, version_i, version_j) they
    # were computed for; any later merge touching i or j bumps a version
    # and invalidates the entry (lazy deletion; absorbing a piece also
    # bumps its version, which marks it dead).
    #
    # The initial candidates (all adjacent pairs, scored vectorised) are
    # not heapified: they are consumed in one sorted pass, with only the
    # candidates created by merges going through a heap.  Every initial
    # entry is (delta, i, i+1, 0, 0), so a stable argsort on delta orders
    # them exactly as tuple comparison would, and popping the smaller of
    # the sorted head and the heap top reproduces the single-heap pop
    # order (all entries are distinct, so the order is strict).
    init_d: list[float] = []
    mxm_l: list[float] = []
    mym_l: list[float] = []
    m_sxx_l: list[float] = []
    m_syy_l: list[float] = []
    m_sxy_l: list[float] = []
    m_sse_l: list[float] = []
    if even >= 2 and 4 <= max_piece:
        dx = np.diff(mx_arr)
        dy = np.diff(my_arr)
        # w = n_i*n_j/(n_i+n_j) = 1.0 for two two-point pieces, so the
        # cross terms are exactly dx*dx etc.
        m_sxx = sxx_arr[:-1] + sxx_arr[1:] + dx * dx * 1.0
        m_syy = syy_arr[:-1] + syy_arr[1:] + dy * dy * 1.0
        m_sxy = sxy_arr[:-1] + sxy_arr[1:] + dx * dy * 1.0
        with np.errstate(invalid="ignore", divide="ignore"):
            m_sse = m_syy - (m_sxy * m_sxy) / m_sxx
        np.maximum(m_sse, 0.0, out=m_sse)
        m_sse[m_sxx <= 0.0] = 0.0
        init_d = (m_sse - sse_arr[:-1] - sse_arr[1:]).tolist()
        # Merged means and moments of every 2+2 candidate, precomputed
        # with the same operations the scalar merge body would run, so a
        # still-valid initial merge can skip its moment math entirely.
        mxm_l = (mx_arr[:-1] + dx * 2 / 4).tolist()
        mym_l = (my_arr[:-1] + dy * 2 / 4).tolist()
        m_sxx_l = m_sxx.tolist()
        m_syy_l = m_syy.tolist()
        m_sxy_l = m_sxy.tolist()
        m_sse_l = m_sse.tolist()
    if even != k and k >= 2:
        # Initial candidate between the last two pieces (two-point piece
        # and the three-point tail), scored like the inline pushes below.
        # Its position in init_d is even-1 == k-2, so position == i holds
        # for every initial candidate.
        na, mxa, mya, sxxa, syya, sxya, ssea, _wa = st[k - 2]
        nb, mxb, myb, sxxb, syyb, sxyb, sseb, _wb = st[k - 1]
        nm0 = na + nb
        if nm0 <= max_piece:
            dx0 = mxb - mxa
            dy0 = myb - mya
            w0 = na * nb / nm0
            sxx0 = sxxa + sxxb + dx0 * dx0 * w0
            if nm0 < 2 or sxx0 <= 0.0:
                sse0 = 0.0
            else:
                syy0 = syya + syyb + dy0 * dy0 * w0
                sxy0 = sxya + sxyb + dx0 * dy0 * w0
                sse0 = syy0 - (sxy0 * sxy0) / sxx0
                if sse0 <= 0.0:
                    sse0 = 0.0
            init_d.append(sse0 - ssea - sseb)
    init_order = (
        np.argsort(np.asarray(init_d), kind="stable").tolist()
        if init_d else []
    )
    n_init = len(init_order)
    ptr = 0
    heap: list[tuple[float, int, int, int, int]] = []

    # The cost of every visited piece count only depends on (k, total_wle)
    # and never feeds back into the merge order, so record total_wle per
    # merge and evaluate the cost curve after the loop.
    wle_trace = [total_wle]
    removed_boundaries: list[int] = []  # start index of the absorbed piece
    trace_append = wle_trace.append
    removed_append = removed_boundaries.append
    heappop = heapq.heappop
    heappush = heapq.heappush

    if n_init:
        ii = init_order[0]
        d0 = init_d[ii]
    while k > k_min:
        if ptr < n_init:
            if heap:
                h0 = heap[0]
                hd = h0[0]
                if d0 < hd:
                    use_init = True
                elif d0 > hd:
                    use_init = False
                else:
                    # Delta tie: compare (i, j) lexicographically.  On a
                    # full (delta, i, j) tie the initial entry wins -- its
                    # versions are (0, 0) and a pushed duplicate carries
                    # at least one bumped version.
                    i2 = h0[1]
                    use_init = ii < i2 or (ii == i2 and ii + 1 <= h0[2])
            else:
                use_init = True
        elif heap:
            use_init = False
        else:
            break
        fast = False
        if use_init:
            i = ii
            j = ii + 1
            ptr += 1
            if ptr < n_init:
                ii = init_order[ptr]
                d0 = init_d[ii]
            if version[i] or version[j]:
                continue
            if j < even:
                # Valid 2+2 merge: both pieces untouched, so the merged
                # moments precomputed above still apply verbatim.
                nm = 4
                mxm = mxm_l[i]
                mym = mym_l[i]
                sxx = m_sxx_l[i]
                syy = m_syy_l[i]
                sxy = m_sxy_l[i]
                sse = m_sse_l[i]
                wle = 0.0 if sse == 0.0 else 4 * log2(sqrt(sse / 4) + 1.0)
                total_wle -= wle_l[i] + wle_l[j]
                total_wle += wle
                st[i] = (4, mxm, mym, sxx, syy, sxy, sse, wle)
                fast = True
        else:
            delta, i, j, vi, vj = heappop(heap)
            if version[i] != vi or version[j] != vj or nxt[i] != j:
                continue
        if not fast:
            ni, mxi, myi, sxxi, syyi, sxyi, ssei, wlei = st[i]
            nj, mxj, myj, sxxj, syyj, sxyj, ssej, wlej = st[j]
            nm = ni + nj
            # No size re-check: every candidate was pushed only after a
            # <= max_piece test and matching versions mean the sizes have
            # not changed since.
            # Merge piece j into piece i (pairwise moment update).
            dx = mxj - mxi
            dy = myj - myi
            w = ni * nj / nm
            sxx = sxxi + sxxj + dx * dx * w
            syy = syyi + syyj + dy * dy * w
            sxy = sxyi + sxyj + dx * dy * w
            if nm < 2 or sxx <= 0.0:
                sse = 0.0
            else:
                sse = syy - (sxy * sxy) / sxx
                if sse <= 0.0:
                    sse = 0.0
            wle = 0.0 if sse == 0.0 else nm * log2(sqrt(sse / nm) + 1.0)
            total_wle -= wlei + wlej
            total_wle += wle
            mxm = mxi + dx * nj / nm
            mym = myi + dy * nj / nm
            st[i] = (nm, mxm, mym, sxx, syy, sxy, sse, wle)
        removed_append(starts[j])
        j2 = nxt[j]
        nxt[i] = j2
        if j2 != -1:
            prv[j2] = i
        version[j] += 1  # absorbed: invalidates every entry naming j
        vi = version[i] + 1
        version[i] = vi
        k -= 1
        trace_append(total_wle)
        # Re-score (i, nxt[i]) then (prv[i], i), exactly as two
        # push_candidate calls would.
        if j2 != -1:
            nb, mxb, myb, sxxb, syyb, sxyb, sseb, _wb = st[j2]
            nmc = nm + nb
            if nmc <= max_piece:
                dxc = mxb - mxm
                dyc = myb - mym
                wc = nm * nb / nmc
                sxxc = sxx + sxxb + dxc * dxc * wc
                if nmc < 2 or sxxc <= 0.0:
                    ssec = 0.0
                else:
                    syyc = syy + syyb + dyc * dyc * wc
                    sxyc = sxy + sxyb + dxc * dyc * wc
                    ssec = syyc - (sxyc * sxyc) / sxxc
                    if ssec <= 0.0:
                        ssec = 0.0
                heappush(heap, (ssec - sse - sseb, i, j2, vi, version[j2]))
        p = prv[i]
        if p != -1:
            na, mxa, mya, sxxa, syya, sxya, ssea, _wa = st[p]
            nmc = na + nm
            if nmc <= max_piece:
                dxc = mxm - mxa
                dyc = mym - mya
                wc = na * nm / nmc
                sxxc = sxxa + sxx + dxc * dxc * wc
                if nmc < 2 or sxxc <= 0.0:
                    ssec = 0.0
                else:
                    syyc = syya + syy + dyc * dyc * wc
                    sxyc = sxya + sxy + dxc * dyc * wc
                    ssec = syyc - (sxyc * sxyc) / sxxc
                    if ssec <= 0.0:
                        ssec = 0.0
                heappush(heap, (ssec - ssea - sse, p, i, version[p], vi))

    cost_curve = _cost_curve(n, k0, wle_trace, height, params)
    best_k = min(cost_curve, key=lambda kk: (cost_curve[kk], kk))
    segments = _reconstruct(
        xs, ys, pieces, removed_boundaries, best_k, sample, sample_piece_threshold
    )
    return SegmentationResult(
        segments=segments, cost=cost_curve[best_k], cost_curve=cost_curve
    )


def _cost_curve(
    n: int,
    k0: int,
    wle_trace: list[float],
    height: int,
    params: CostParams,
) -> dict[int, float]:
    """Evaluate Eq. 7 for every visited piece count in one tight loop.

    ``wle_trace[m]`` is the total weighted log error after ``m`` merges,
    i.e. at piece count ``k0 - m``.  Inlines :func:`accumulated_cost` /
    :func:`~repro.core.cost.estimated_depth` with hoisted constants,
    replicating their operation order so the returned floats are
    bit-identical to calling them per merge.
    """
    c = params.cycles
    rho = params.rho
    base = c.cache_miss + c.linear_model
    unit = c.exp_search_step + c.cache_miss
    log_n = math.log(n) if n > 1 else 0.0
    # delta never exceeds log2(n)+1 once fanout > 1; the fanout<=1 branch
    # uses delta=n but only at the (never-visited) degenerate k=n.
    max_h = int(math.log2(n)) + 2 if n > 1 else 2
    rho_pow = [rho ** h for h in range(height, max_h + 1)]
    m_count = len(wle_trace)
    mle_arr = np.asarray(wle_trace) / n
    local_arr = mle_arr * unit
    # Estimated depths stay scalar: math.log and np.log can differ in the
    # last ulp, and delta feeds a ceil().
    log = math.log
    ceil = math.ceil
    deltas = [1.0] * m_count
    cds = np.empty(m_count, dtype=np.int64)
    for m in range(m_count):
        k = k0 - m
        if k <= 1 or n <= 1:
            delta = 1.0
        else:
            fanout = n / k
            if fanout <= 1.0:
                delta = float(n)
            else:
                delta = log_n / log(fanout)
        deltas[m] = delta
        cds[m] = ceil(delta)
    deltas_arr = np.asarray(deltas)
    # Group the piece counts by ceil(delta): within a group every k sums
    # the same h' terms, so the whole group evaluates with one vector op
    # per level.  All h' below ceil(delta) have weight clamped to exactly
    # 1.0 and the final level's weight is delta + 1 - h' elementwise --
    # the same operations, in the same order, as the scalar loop.
    out = np.zeros(m_count)
    for cd_val in np.unique(cds):
        cd = int(cd_val)
        idx = np.flatnonzero(cds == cd)
        if cd > max_h:  # degenerate fanout<=1 tail: don't inline
            for m in idx.tolist():
                out[m] = accumulated_cost(n, k0 - m, float(mle_arr[m]),
                                          height, params)
            continue
        loc = local_arr[idx]
        tot = np.zeros(len(idx))
        for h_prime in range(height, cd + 1):
            term = base + rho_pow[h_prime - height] * loc
            if h_prime == cd:
                term = ((deltas_arr[idx] + 1.0) - cd) * term
            tot += term
        out[idx] = tot
    return dict(zip(range(k0, k0 - m_count, -1), out.tolist()))


def _reconstruct(
    xs: np.ndarray,
    ys: np.ndarray,
    initial_pieces: list[tuple[int, int]],
    removed_boundaries: list[int],
    best_k: int,
    sample: bool,
    sample_piece_threshold: int,
) -> list[Segment]:
    """Rebuild the piece list at ``best_k`` from the recorded merge order."""
    n = len(xs)
    k0 = len(initial_pieces)
    n_merges = k0 - best_k
    boundary_set = {start for start, _ in initial_pieces}
    for start in removed_boundaries[:n_merges]:
        boundary_set.discard(start)
    starts = sorted(boundary_set)
    segments = []
    for idx, start in enumerate(starts):
        end = starts[idx + 1] if idx + 1 < len(starts) else n
        segments.append(
            _fit_segment(xs, ys, start, end, sample, sample_piece_threshold)
        )
    return segments


def _fit_segment(
    xs: np.ndarray,
    ys: np.ndarray,
    start: int,
    end: int,
    sample: bool,
    sample_piece_threshold: int,
) -> Segment:
    """Fit the final model of one piece, optionally on a half sample."""
    px = xs[start:end]
    py = ys[start:end]
    if sample and len(px) > sample_piece_threshold:
        model = LinearModel.fit(px[::2], py[::2])
    else:
        model = LinearModel.fit(px, py)
    pred = model.intercept + model.slope * px
    err = pred - py
    rmse = float(np.sqrt(np.mean(err * err))) if len(px) else 0.0
    return Segment(start=start, end=end, model=model, rmse=rmse)
