"""Greedy merging segmentation (Algorithm 3 of the paper).

Given a sorted sequence ``xs`` (raw keys at height 0, child lower bounds
at higher levels) with implicit targets ``ys = 0..n-1``, the algorithm:

1. starts from ``n/2`` pieces of two (the last of three) elements,
2. repeatedly merges the adjacent pair of pieces whose merge increases
   total linear-fit loss the least, maintaining per-piece statistics in
   O(1) per merge via :class:`~repro.core.linear_model.SegmentStats`,
3. after every merge evaluates the *estimated accumulated search cost*
   (Eq. 7) of the current breakpoint list in O(1),
4. stops when the mean piece size reaches the fanout cap ``omega`` and
   returns the segmentation whose cost estimate was smallest.

Because merging is destructive, the merge order is recorded and the
winning configuration is reconstructed afterwards from the removed
boundaries; this keeps the whole routine O(n log n).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import CostParams, DEFAULT_COST, accumulated_cost
from repro.core.linear_model import LinearModel, SegmentStats


@dataclass(frozen=True)
class Segment:
    """One piece of the chosen segmentation.

    Attributes:
        start: Index of the first element (inclusive) in the input array.
        end: Index one past the last element.
        model: Least-squares line fit on (xs[start:end], start..end-1),
            i.e. targets are *global* positions, matching Eq. 3/4 where
            the node-local model subtracts the piece offset afterwards.
        rmse: Root-mean-square error of the fit over this piece.
    """

    start: int
    end: int
    model: LinearModel
    rmse: float

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class SegmentationResult:
    """Output of :func:`greedy_merging`.

    Attributes:
        segments: Chosen pieces in key order.
        cost: Estimated accumulated search cost of the chosen layout.
        cost_curve: ``{k: cost}`` for every piece count evaluated; kept
            for the hyperparameter benchmarks and tests.
    """

    segments: list[Segment]
    cost: float
    cost_curve: dict[int, float] = field(default_factory=dict)

    def piece_starts(self) -> list[int]:
        """Start index of each piece (indices into the input array)."""
        return [seg.start for seg in self.segments]


def _weighted_log_error(stats: SegmentStats) -> float:
    """Contribution of one piece to the mean-log-error aggregate.

    ``T_ea`` needs the key-weighted mean of ``log2(prediction error)``;
    per piece we use ``n * log2(rmse + 1)`` with the piece RMSE as the
    error proxy (the +1 keeps perfect pieces at zero cost).
    """
    if stats.n == 0:
        return 0.0
    return stats.n * math.log2(stats.rmse() + 1.0)


def _initial_pieces(n: int) -> list[tuple[int, int]]:
    """Size-2 pieces over ``range(n)``; the last piece absorbs a leftover.

    Mirrors Algorithm 3 line 2: ``{{0,1},{2,3},...,{2k-2,2k-1,n-1}}``.
    """
    if n <= 3:
        return [(0, n)]
    k = n // 2
    pieces = [(2 * i, 2 * i + 2) for i in range(k)]
    if n % 2 == 1:
        start, _ = pieces[-1]
        pieces[-1] = (start, n)
    return pieces


def _initial_stats(
    xs: np.ndarray, ys: np.ndarray, pieces: list[tuple[int, int]]
) -> list[SegmentStats | None]:
    """Statistics of the initial size-2 pieces, computed vectorised.

    All pieces except possibly the last have exactly two points, whose
    moments have closed forms; building ~n/2 SegmentStats objects through
    the generic constructor dominates construction time otherwise.
    """
    k = len(pieces)
    if k == 0:
        return []
    # The final piece may hold three points; handle it generically.
    tail_start, tail_end = pieces[-1]
    even = k - 1 if (tail_end - tail_start) != 2 else k
    x0 = xs[0:2 * even:2]
    x1 = xs[1:2 * even:2]
    y0 = ys[0:2 * even:2]
    y1 = ys[1:2 * even:2]
    mean_x = (x0 + x1) * 0.5
    mean_y = (y0 + y1) * 0.5
    half_dx = (x1 - x0) * 0.5
    half_dy = (y1 - y0) * 0.5
    sxx = 2.0 * half_dx * half_dx
    syy = 2.0 * half_dy * half_dy
    sxy = 2.0 * half_dx * half_dy
    stats: list[SegmentStats | None] = [
        SegmentStats(
            n=2,
            mean_x=float(mean_x[i]),
            mean_y=float(mean_y[i]),
            sxx=float(sxx[i]),
            syy=float(syy[i]),
            sxy=float(sxy[i]),
        )
        for i in range(even)
    ]
    if even != k:
        stats.append(
            SegmentStats.from_arrays(
                xs[tail_start:tail_end], ys[tail_start:tail_end]
            )
        )
    return stats


def greedy_merging(
    xs: np.ndarray,
    *,
    height: int = 0,
    params: CostParams = DEFAULT_COST,
    sample: bool = False,
    sample_piece_threshold: int = 8,
) -> SegmentationResult:
    """Find a good piecewise-linear segmentation of ``xs`` (Algorithm 3).

    Args:
        xs: Sorted, strictly increasing 1-D array of keys or bounds.
        height: Tree height of the level being laid out (0 = leaves);
            enters the cost model through the ``rho**h`` damping.
        params: Cost-model constants, including the fanout cap ``omega``.
        sample: Apply the Appendix A.7 sampling strategy -- pieces larger
            than ``sample_piece_threshold`` fit their final model on every
            second element, halving fit work with little layout change.
        sample_piece_threshold: Piece size above which sampling kicks in.

    Returns:
        The segmentation with the smallest estimated accumulated search
        cost among all piece counts visited by the merge schedule.
    """
    xs = np.asarray(xs, dtype=np.float64)
    n = len(xs)
    if n == 0:
        return SegmentationResult(segments=[], cost=0.0)
    ys = np.arange(n, dtype=np.float64)
    pieces = _initial_pieces(n)
    if len(pieces) == 1:
        seg = _fit_segment(xs, ys, 0, n, sample, sample_piece_threshold)
        return SegmentationResult(segments=[seg], cost=0.0, cost_curve={1: 0.0})

    k = len(pieces)
    starts = [p[0] for p in pieces]
    ends = [p[1] for p in pieces]
    stats: list[SegmentStats | None] = _initial_stats(xs, ys, pieces)
    nxt = list(range(1, k)) + [-1]
    prv = [-1] + list(range(k - 1))
    version = [0] * k
    alive = [True] * k

    total_wle = sum(_weighted_log_error(st) for st in stats if st is not None)
    max_piece = 2 * params.omega
    k_min = max(1, math.ceil(n / params.omega))

    # Heap entries carry the exact (i, j, version_i, version_j) they were
    # computed for; any later merge touching i or j bumps a version and
    # invalidates the entry (lazy deletion).
    heap: list[tuple[float, int, int, int, int]] = []

    def push_candidate(i: int) -> None:
        j = nxt[i]
        if j == -1:
            return
        si, sj = stats[i], stats[j]
        assert si is not None and sj is not None
        if si.n + sj.n > max_piece:
            return
        merged = si.merged(sj)
        delta = merged.sse() - si.sse() - sj.sse()
        heapq.heappush(heap, (delta, i, j, version[i], version[j]))

    for i in range(k):
        push_candidate(i)

    def current_cost() -> float:
        mean_log_err = total_wle / n
        return accumulated_cost(n, k, mean_log_err, height, params)

    cost_curve: dict[int, float] = {k: current_cost()}
    removed_boundaries: list[int] = []  # start index of the absorbed piece

    while k > k_min and heap:
        delta, i, j, vi, vj = heapq.heappop(heap)
        if not alive[i] or not alive[j]:
            continue
        if nxt[i] != j or version[i] != vi or version[j] != vj:
            continue
        si, sj = stats[i], stats[j]
        assert si is not None and sj is not None
        if si.n + sj.n > max_piece:
            continue
        # Merge piece j into piece i.
        total_wle -= _weighted_log_error(si) + _weighted_log_error(sj)
        merged = si.merged(sj)
        total_wle += _weighted_log_error(merged)
        stats[i] = merged
        ends[i] = ends[j]
        alive[j] = False
        stats[j] = None
        removed_boundaries.append(starts[j])
        nxt[i] = nxt[j]
        if nxt[j] != -1:
            prv[nxt[j]] = i
        version[i] += 1
        k -= 1
        cost_curve[k] = current_cost()
        push_candidate(i)
        if prv[i] != -1:
            push_candidate(prv[i])

    best_k = min(cost_curve, key=lambda kk: (cost_curve[kk], kk))
    segments = _reconstruct(
        xs, ys, pieces, removed_boundaries, best_k, sample, sample_piece_threshold
    )
    return SegmentationResult(
        segments=segments, cost=cost_curve[best_k], cost_curve=cost_curve
    )


def _reconstruct(
    xs: np.ndarray,
    ys: np.ndarray,
    initial_pieces: list[tuple[int, int]],
    removed_boundaries: list[int],
    best_k: int,
    sample: bool,
    sample_piece_threshold: int,
) -> list[Segment]:
    """Rebuild the piece list at ``best_k`` from the recorded merge order."""
    n = len(xs)
    k0 = len(initial_pieces)
    n_merges = k0 - best_k
    boundary_set = {start for start, _ in initial_pieces}
    for start in removed_boundaries[:n_merges]:
        boundary_set.discard(start)
    starts = sorted(boundary_set)
    segments = []
    for idx, start in enumerate(starts):
        end = starts[idx + 1] if idx + 1 < len(starts) else n
        segments.append(
            _fit_segment(xs, ys, start, end, sample, sample_piece_threshold)
        )
    return segments


def _fit_segment(
    xs: np.ndarray,
    ys: np.ndarray,
    start: int,
    end: int,
    sample: bool,
    sample_piece_threshold: int,
) -> Segment:
    """Fit the final model of one piece, optionally on a half sample."""
    px = xs[start:end]
    py = ys[start:end]
    if sample and len(px) > sample_piece_threshold:
        model = LinearModel.fit(px[::2], py[::2])
    else:
        model = LinearModel.fit(px, py)
    pred = model.intercept + model.slope * px
    err = pred - py
    rmse = float(np.sqrt(np.mean(err * err))) if len(px) else 0.0
    return Segment(start=start, end=end, model=model, rmse=rmse)
