"""RCU-style epoch publication for compiled read plans.

:class:`repro.core.concurrent.ConcurrentDILI` used to run every batch
read under ``exclusive()`` -- the global lock plus all 256 stripes -- so
the vectorized descent of :class:`repro.core.flat.FlatPlan` was
throttled to one reader at a time.  This module supplies the classic
read-copy-update alternative (BLI in PAPERS.md is the learned-index
exemplar): the compiled plan becomes an immutable *published version*
that readers grab with a single attribute load, while writers build
patched plans off to the side (the copy-on-write ``applied_*``
constructors in :mod:`repro.core.flat`) and swap them in atomically.

Protocol
--------
* **Publish.** :meth:`PlanPublisher.publish` freezes the plan (in-place
  patching of a published plan raises
  :class:`~repro.check.errors.InvariantError`), checks the version is
  newer than the current one (concurrent writers may race to publish;
  the monotonic version counter makes the last tree state win
  regardless of arrival order), and installs it with one reference
  store -- atomic under CPython, and the only write readers ever see.
* **Read.** :meth:`PlanPublisher.pinned` pins the current epoch in a
  sharded counter *before* loading the plan, yields the snapshot, and
  unpins on exit.  No lock is taken and no writer is blocked; the
  descent runs against buffers that are guaranteed not to mutate.
* **Retire.** Replacing (or dropping) the published plan moves the old
  version onto a limbo list tagged with the current epoch, then
  advances the epoch.  A retired plan is *reclaimed* -- its reference
  dropped so the SoA buffers can be freed -- only once every pin that
  could still observe it has drained (``min active pinned epoch >
  tag``).

CPython already guarantees memory safety here (a reader's reference
keeps the buffers alive), so the epoch machinery is the *discipline*
layer: it makes use-after-retire a detectable event (the lock
sanitizer's ``unpinned-plan-read``), bounds how long superseded buffers
stay resident, and gives ``lock_stats`` honest ``plan_publishes`` /
``plans_retired`` / ``epoch_pins`` telemetry.  The same structure maps
directly onto a free-threaded or multi-process port where reclamation
is load-bearing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["EpochManager", "PlanPublisher", "next_plan_version"]

_VERSION_LOCK = threading.Lock()
_NEXT_VERSION = 1


def next_plan_version() -> int:
    """Globally monotonic plan version (thread-safe).

    Process-wide rather than per-index so a plan version never repeats:
    publication uses ``version`` to order racing publishes, and a
    counter that restarted per compile could move backwards across an
    invalidate -> recompile cycle.
    """
    global _NEXT_VERSION
    with _VERSION_LOCK:
        version = _NEXT_VERSION
        _NEXT_VERSION += 1
    return version


class _Shard:
    """One stripe of the sharded pin table (own lock, own counters)."""

    __slots__ = ("lock", "epochs", "threads")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        #: pinned epoch -> number of active pins that entered at it
        self.epochs: dict[int, int] = {}
        #: thread ident -> nesting depth of its active pins
        self.threads: dict[int, int] = {}


class EpochManager:
    """Sharded epoch counter with a limbo list for retired objects.

    Readers :meth:`pin` the current epoch for the duration of a
    snapshot read; writers :meth:`retire` superseded objects, which
    tags them with the pre-advance epoch and reclaims every limbo entry
    no still-active pin could observe.  Pins shard by thread ident so
    concurrent readers touch different locks.
    """

    def __init__(self, shards: int = 16) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self._shards = [_Shard() for _ in range(shards)]
        self._epoch_lock = threading.Lock()
        self._epoch = 0
        #: retired-but-not-reclaimed (epoch tag, object) entries
        self._limbo: list[tuple[int, object]] = []
        self._pins = 0
        self._retired = 0
        self._reclaimed = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    @contextmanager
    def pin(self):
        """Pin the current epoch for the duration of the ``with`` body.

        The pinned epoch is recorded *before* the caller loads whatever
        snapshot it reads, so any object retired afterwards carries a
        tag greater than or equal to this pin and cannot be reclaimed
        until the pin drops.  Reentrant, and yields the pinned epoch.
        """
        tid = threading.get_ident()
        shard = self._shards[tid % len(self._shards)]
        with shard.lock:
            epoch = self._epoch
            shard.epochs[epoch] = shard.epochs.get(epoch, 0) + 1
            shard.threads[tid] = shard.threads.get(tid, 0) + 1
            self._pins += 1
        try:
            yield epoch
        finally:
            with shard.lock:
                left = shard.epochs[epoch] - 1
                if left:
                    shard.epochs[epoch] = left
                else:
                    del shard.epochs[epoch]
                depth = shard.threads[tid] - 1
                if depth:
                    shard.threads[tid] = depth
                else:
                    del shard.threads[tid]

    def current_thread_pinned(self) -> bool:
        """Whether the calling thread holds at least one active pin."""
        tid = threading.get_ident()
        shard = self._shards[tid % len(self._shards)]
        with shard.lock:
            return tid in shard.threads

    def min_active(self) -> int | None:
        """Oldest epoch any active pin entered at (None when idle)."""
        lo: int | None = None
        for shard in self._shards:
            with shard.lock:
                for epoch in shard.epochs:
                    if lo is None or epoch < lo:
                        lo = epoch
        return lo

    def retire(self, obj: object) -> None:
        """Move ``obj`` to limbo and advance the epoch, then reclaim.

        The entry is tagged with the *pre-advance* epoch: every reader
        that could have loaded ``obj`` pinned at or before that tag
        (publication swaps the reference before retiring the old one),
        so the entry survives exactly until those pins drain.
        """
        with self._epoch_lock:
            self._limbo.append((self._epoch, obj))
            self._epoch += 1
            self._retired += 1
            self._reclaim_locked()

    def reclaim(self) -> int:
        """Drop every limbo entry no active pin could observe.

        Called automatically by :meth:`retire`; exposed so quiescent
        periods (e.g. after a burst of readers exits) can drain limbo
        without waiting for the next publication.  Returns how many
        entries were reclaimed.
        """
        with self._epoch_lock:
            return self._reclaim_locked()

    def _reclaim_locked(self) -> int:
        floor = self.min_active()
        if floor is None:
            floor = self._epoch
        keep = [entry for entry in self._limbo if entry[0] >= floor]
        dropped = len(self._limbo) - len(keep)
        if dropped:
            self._limbo = keep
            self._reclaimed += dropped
        return dropped

    def drained(self) -> bool:
        """True when no retired object is still awaiting reclamation."""
        with self._epoch_lock:
            return not self._limbo

    def stats(self) -> dict:
        with self._epoch_lock:
            return {
                "epoch_pins": self._pins,
                "plans_retired": self._retired,
                "plans_reclaimed": self._reclaimed,
                "plans_limbo": len(self._limbo),
            }


class PlanPublisher:
    """The single published-plan slot of one concurrent index.

    Holds at most one frozen :class:`~repro.core.flat.FlatPlan` (or
    ``None`` while no plan is servable -- empty tree, or a mutation the
    copy-on-write tiers could not absorb).  Readers snapshot it through
    :meth:`pinned`; writers race through :meth:`publish`, where the
    monotonic plan version decides the winner.
    """

    def __init__(self, epochs: EpochManager | None = None) -> None:
        self._epochs = epochs if epochs is not None else EpochManager()
        self._swap_lock = threading.Lock()
        self._current = None
        self._publishes = 0

    @property
    def epochs(self) -> EpochManager:
        return self._epochs

    def load(self):
        """The currently published plan (None when unpublished).

        One attribute read -- atomic under CPython -- and no lock; the
        caller must hold an epoch pin (:meth:`pinned`) while using the
        returned plan, or the retire bookkeeping cannot see it.
        """
        return self._current

    @contextmanager
    def pinned(self):
        """Pin an epoch and yield the published plan snapshot.

        Pin *then* load: anything retired after this pin was installed
        carries an epoch tag at or above ours, so the yielded plan --
        even if superseded mid-read -- stays in limbo until we exit.
        """
        with self._epochs.pin():
            yield self._current

    def current_thread_pinned(self) -> bool:
        return self._epochs.current_thread_pinned()

    def publish(self, plan) -> bool:
        """Freeze ``plan`` and install it; retire the one it replaces.

        Returns False without publishing when ``plan`` is already
        current or is older than (or the same version as) the current
        one -- racing writers may each try to publish their own view of
        the maintained plan, and versions are assigned under
        ``DILI._plan_mutex`` in tree-mutation order, so rejecting stale
        versions keeps the slot converging on the latest tree state.
        """
        with self._swap_lock:
            old = self._current
            if old is plan:
                return False
            if old is not None and plan.version <= old.version:
                return False
            plan.freeze()
            self._current = plan
            self._publishes += 1
            if old is not None:
                self._epochs.retire(old)
            return True

    def unpublish(self) -> bool:
        """Drop the published plan (tree emptied or plan invalidated)."""
        with self._swap_lock:
            old = self._current
            if old is None:
                return False
            self._current = None
            self._epochs.retire(old)
            return True

    def stats(self) -> dict:
        out = self._epochs.stats()
        out["plan_publishes"] = self._publishes
        return out
