"""DiliMap: a ``collections.abc.MutableMapping`` facade over DILI.

Lets the learned index drop into code written against dict-like
interfaces (caches, feature stores, symbol tables) while keeping DILI's
ordered-scan superpowers reachable::

    m = DiliMap({10: "a", 20: "b"})
    m[15] = "c"
    del m[10]
    list(m.irange(12, 30))   # ordered slice, a dict cannot do this

Keys are coerced to float64 (integers up to 2**53 are exact); values
may be anything except None, which DILI reserves as the absence
signal.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Iterator, Mapping

import numpy as np

from repro.core.dili import DILI, DiliConfig


class DiliMap(MutableMapping):
    """Dict-compatible wrapper around a :class:`~repro.DILI` index.

    Args:
        items: Optional mapping or iterable of (key, value) pairs to
            bulk load.
        config: Optional :class:`~repro.DiliConfig`.
    """

    def __init__(
        self,
        items: Mapping | list | None = None,
        config: DiliConfig | None = None,
    ) -> None:
        self._index = DILI(config)
        if items:
            pairs = (
                list(items.items())
                if isinstance(items, Mapping)
                else list(items)
            )
            seen: dict[float, object] = {}
            for key, value in pairs:
                seen[self._check(key, value)] = value
            keys = np.fromiter(sorted(seen), dtype=np.float64,
                               count=len(seen))
            self._index.bulk_load(keys, [seen[float(k)] for k in keys])

    @staticmethod
    def _check(key, value=1) -> float:
        if value is None:
            raise ValueError("DiliMap cannot store None values")
        key = float(key)
        if key != key:  # NaN
            raise ValueError("DiliMap cannot use NaN keys")
        return key

    # -- MutableMapping protocol ---------------------------------------

    def __getitem__(self, key) -> object:
        value = self._index.get(float(key))
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key, value) -> None:
        key = self._check(key, value)
        if not self._index.insert(key, value):
            self._index.update(key, value)

    def __delitem__(self, key) -> None:
        if not self._index.delete(float(key)):
            raise KeyError(key)

    def __iter__(self) -> Iterator[float]:
        return self._index.keys()

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key) -> bool:
        try:
            key = float(key)
        except (TypeError, ValueError):
            return False
        return self._index.get(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiliMap({len(self)} items)"

    # -- Ordered extensions beyond dict --------------------------------

    def irange(self, lo: float, hi: float) -> Iterator[tuple]:
        """(key, value) pairs with lo <= key < hi, ascending."""
        for pair in self._index.iter_from(float(lo)):
            if pair[0] >= float(hi):
                return
            yield pair

    def peekitem(self, last: bool = True) -> tuple:
        """Largest (default) or smallest item; KeyError when empty."""
        item = (
            self._index.max_item() if last else self._index.min_item()
        )
        if item is None:
            raise KeyError("DiliMap is empty")
        return item

    @property
    def index(self) -> DILI:
        """The underlying DILI (for stats, tracing, validation)."""
        return self._index
