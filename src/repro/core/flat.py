"""Array-packed read plan for vectorized batch lookups.

The DILI node tree is a pointer structure: every ``get`` chases
``InternalNode`` / ``LeafNode`` objects one attribute at a time.  That is
faithful to the paper's algorithms but leaves most of numpy's throughput
on the table, because DILI's equal-width internal models make the entire
descent a *data-parallel* computation: at every level the next hop is
``floor(intercept + slope * key)`` clamped into the fanout -- the same
multiply-add for every in-flight key.

:func:`compile_plan` packs the tree into structure-of-arrays buffers
(one row per node, one row per entry-array slot) and
:class:`FlatPlan` descends a whole key batch level-synchronously with
numpy ops -- no per-key Python in the loop.  The plan references the
live tree's payload objects and is compiled lazily by
:meth:`repro.core.dili.DILI.get_batch`.  It *survives* mutations:
slot-level changes (insert into an empty slot, delete of a top-frame
pair, value update) patch the buffers in place (``patch_insert_many`` /
``patch_delete_many`` / ``patch_value``), structural changes (nested
leaf spawn, ``_adjust``, single-pair collapse) recompile only the
affected top-level leaf's subtree (``recompile_subtree``), and a full
recompile is the last resort (see ``DILI._invalidate_plan`` and the
``plan_patches`` / ``plan_subtree_recompiles`` / ``plan_recompiles``
counters).

:class:`InternalRouter` is the write-path sibling: internal nodes are
immutable after bulk load, so a cached array-packed skeleton of just
the internals routes whole write batches to their target top-level
leaves level-synchronously.

Layout
------
Node table (row = one node, in DFS preorder; the root is row 0):

========  =======  ====================================================
array     dtype    meaning
========  =======  ====================================================
kind      int8     0 internal, 1 locally-optimized leaf, 2 dense leaf
slope     float64  node model slope
intercept float64  node model intercept
size      int64    slot count (internal/leaf) or key count (dense)
base      int64    first row in the slot table (internal/leaf) or the
                   first index in ``dense_keys`` (dense)
region    int64    tracer memory-region id of the original node
========  =======  ====================================================

Slot table (row = one child pointer or entry-array slot):

=========  =====  =====================================================
array      dtype  meaning
=========  =====  =====================================================
slot_kind  int8   0 empty, 1 pair, 2 child node
slot_ref   int64  pair index (kind 1) or node row (kind 2)
=========  =====  =====================================================

``pair_keys`` / ``dense_keys`` hold the keys (both ascending -- a DFS of
the tree visits keys in order) and ``values`` holds every payload, pair
payloads first, so a lookup resolves to ``values[i]`` for a single flat
index ``i``.

Cost tracing
------------
``lookup_batch(..., record=True)`` additionally returns the per-level
descent trace (which node each key visited and at which slot).  The
tracer-aware callers replay that trace key by key, in batch order,
through the ordinary :class:`~repro.simulate.tracer.Tracer` protocol --
charging exactly the events the scalar ``get`` loop would have charged,
in the same order, so the stateful LRU cache simulation produces
identical totals.

Versioning and publication
--------------------------
Every plan carries a globally monotonic ``version`` and a ``frozen``
flag.  :meth:`FlatPlan.freeze` (called by
:class:`repro.core.epoch.PlanPublisher` at publication) makes the plan
immutable: the in-place ``patch_*`` / ``recompile_*`` mutators raise
:class:`~repro.check.errors.InvariantError` on a frozen plan.  Plan
maintenance goes through the ``applied_*`` constructors instead, which
mutate in place while the plan is private (the pre-publication fast
path, identical to the old behavior) and switch to copy-on-write once
it is frozen: the clone shares every unmodified SoA buffer with its
parent and copies only the arrays the patch writes (the slot tables
for inserts/deletes, the value list for updates; subtree splices
rebuild whole arrays and need no private copies at all).  Lint rule
CHK008 keeps all other code off the in-place mutators.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.check.errors import InvariantError
from repro.core.epoch import next_plan_version
from repro.core.local_opt import _SAFE_PRED
from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode
from repro.simulate.latency import CyclesPerOp, DEFAULT_CYCLES
from repro.simulate.tracer import NULL_TRACER, Tracer

KIND_INTERNAL = 0
KIND_LEAF = 1
KIND_DENSE = 2

SLOT_EMPTY = 0
SLOT_PAIR = 1
SLOT_NODE = 2

_MAX_DESCENT = 4096
"""Hard cap on descent iterations; the deepest legal tree is the BU
height plus ``MAX_NESTING_DEPTH``, orders of magnitude below this."""


class FlatPlan:
    """Structure-of-arrays snapshot of a DILI tree, for batch reads."""

    __slots__ = (
        "kind",
        "slope",
        "intercept",
        "size",
        "base",
        "region",
        "slot_kind",
        "slot_ref",
        "pair_keys",
        "dense_keys",
        "values",
        "sorted_keys",
        "num_pairs",
        "depth",
        "version",
        "frozen",
    )

    def __init__(
        self,
        kind: np.ndarray,
        slope: np.ndarray,
        intercept: np.ndarray,
        size: np.ndarray,
        base: np.ndarray,
        region: np.ndarray,
        slot_kind: np.ndarray,
        slot_ref: np.ndarray,
        pair_keys: np.ndarray,
        dense_keys: np.ndarray,
        values: list,
        sorted_keys: np.ndarray,
        depth: int,
    ) -> None:
        self.kind = kind
        self.slope = slope
        self.intercept = intercept
        self.size = size
        self.base = base
        self.region = region
        self.slot_kind = slot_kind
        self.slot_ref = slot_ref
        self.pair_keys = pair_keys
        self.dense_keys = dense_keys
        self.values = values
        self.sorted_keys = sorted_keys
        self.num_pairs = len(pair_keys)
        self.depth = depth
        self.version = next_plan_version()
        self.frozen = False

    # ------------------------------------------------------------------
    # Versioning / copy-on-write publication support
    # ------------------------------------------------------------------

    def freeze(self) -> "FlatPlan":
        """Mark this plan immutable (idempotent); returns ``self``.

        Called at publication time: once other threads can hold
        lock-free references to the buffers, in-place patching would be
        a torn read waiting to happen, so the ``patch_*`` /
        ``recompile_*`` mutators refuse frozen plans and maintenance
        switches to the copy-on-write ``applied_*`` constructors.
        """
        self.frozen = True
        return self

    def _frozen_guard(self) -> None:
        if self.frozen:
            raise InvariantError(
                "in-place mutation of a frozen (published) FlatPlan; "
                "use the applied_* copy-on-write constructors"
            )

    def _cow_clone(
        self, *, copy_slots: bool = False, copy_values: bool = False
    ) -> "FlatPlan":
        """Unfrozen clone sharing every buffer its patch will not touch.

        The patch tiers validate fully before mutating and touch a
        known, small subset of the tables in place (everything else is
        rebuilt as fresh arrays), so the clone copies exactly that
        subset: ``copy_slots`` privatizes the slot tables
        (insert/delete patches), ``copy_values`` the value list (value
        patches).  Subtree splices reassign whole arrays and need
        neither.
        """
        clone = FlatPlan.__new__(FlatPlan)
        for name in FlatPlan.__slots__:
            setattr(clone, name, getattr(self, name))
        if copy_slots:
            clone.slot_kind = self.slot_kind.copy()
            clone.slot_ref = self.slot_ref.copy()
        if copy_values:
            clone.values = list(self.values)
        clone.version = next_plan_version()
        clone.frozen = False
        return clone

    def applied_values(self, pairs: list) -> "FlatPlan | None":
        """Plan with ``(key, value)`` payload replacements applied.

        Returns ``self`` (patched in place) while unfrozen, a
        copy-on-write clone once frozen, or ``None`` when any key's
        terminal cannot be located (plan out of sync): the caller must
        fall back to invalidation.  A frozen plan is never half
        patched -- the clone is discarded on failure.
        """
        target = self if not self.frozen else self._cow_clone(copy_values=True)
        for key, value in pairs:
            if not target.patch_value(key, value):
                return None
        return target

    def applied_insert_many(self, pairs: list) -> "FlatPlan | None":
        """Plan with newly inserted pairs spliced in (COW when frozen).

        Same contract as :meth:`applied_values`; the insert patch
        mutates only the slot tables in place (the key/value arrays are
        rebuilt), so the clone privatizes exactly those.
        """
        target = self if not self.frozen else self._cow_clone(copy_slots=True)
        return target if target.patch_insert_many(pairs) else None

    def applied_delete_many(self, keys: Sequence[float]) -> "FlatPlan | None":
        """Plan with top-frame pair deletions applied (COW when frozen)."""
        target = self if not self.frozen else self._cow_clone(copy_slots=True)
        return target if target.patch_delete_many(keys) else None

    def applied_recompile_subtrees(self, items: list) -> "FlatPlan | None":
        """Plan with structurally changed subtrees respliced.

        COW when frozen; the splice reassembles every table as fresh
        concatenations (unchanged chunks are copied by
        ``np.concatenate``), so the clone shares nothing it mutates and
        needs no private copies up front.
        """
        target = self if not self.frozen else self._cow_clone()
        return target if target.recompile_subtrees(items) else None

    # ------------------------------------------------------------------
    # Batch descent
    # ------------------------------------------------------------------

    def lookup_batch(
        self, keys: np.ndarray, record: bool = False
    ) -> tuple[np.ndarray, list | None]:
        """Resolve every key to a flat value index (-1 when absent).

        Args:
            keys: 1-D float64 key batch.
            record: Also return the descent trace for tracer replay.

        Returns:
            ``(out, trace)``: ``out[i]`` indexes :attr:`values` or is -1;
            ``trace`` is ``None`` unless ``record``, else a list of
            per-level ``(idx, node, pos)`` arrays plus a final
            ``(idx, node, None)`` entry for keys that ended in a dense
            leaf.
        """
        q = np.ascontiguousarray(keys, dtype=np.float64)
        n = len(q)
        out = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return out, ([] if record else None)
        idx = np.arange(n, dtype=np.int64)
        node = np.zeros(n, dtype=np.int64)
        trace: list | None = [] if record else None
        dense_idx_parts: list[np.ndarray] = []
        dense_node_parts: list[np.ndarray] = []
        for _ in range(_MAX_DESCENT):
            if idx.size == 0:
                break
            kinds = self.kind[node]
            dense = kinds == KIND_DENSE
            if dense.any():
                dense_idx_parts.append(idx[dense])
                dense_node_parts.append(node[dense])
                keep = ~dense
                idx = idx[keep]
                node = node[keep]
                if idx.size == 0:
                    break
            # One multiply-add per in-flight key locates the next slot
            # (Eq. 1 / Algorithm 5 line 4), floored and clamped exactly
            # like the scalar predict_slot/child_index.
            pos = np.floor(
                self.intercept[node] + self.slope[node] * q[idx]
            ).astype(np.int64)
            np.clip(pos, 0, self.size[node] - 1, out=pos)
            if record:
                trace.append((idx, node, pos))
            ref = self.base[node] + pos
            skind = self.slot_kind[ref]
            sref = self.slot_ref[ref]
            is_pair = skind == SLOT_PAIR
            if is_pair.any():
                pidx = idx[is_pair]
                pref = sref[is_pair]
                hit = self.pair_keys[pref] == q[pidx]
                out[pidx[hit]] = pref[hit]
            descend = skind == SLOT_NODE
            idx = idx[descend]
            node = sref[descend]
        else:  # pragma: no cover - defended structural corruption
            raise RuntimeError("flat plan descent did not terminate")
        if dense_idx_parts:
            didx = np.concatenate(dense_idx_parts)
            dnode = np.concatenate(dense_node_parts)
            if record:
                trace.append((didx, dnode, None))
            if len(self.dense_keys):
                pos = np.searchsorted(self.dense_keys, q[didx])
                np.clip(pos, 0, len(self.dense_keys) - 1, out=pos)
                hit = self.dense_keys[pos] == q[didx]
                out[didx[hit]] = self.num_pairs + pos[hit]
        return out, trace

    def get_batch(self, keys: np.ndarray) -> list:
        """Values for every key, ``None`` where absent (batch ``get``)."""
        out, _ = self.lookup_batch(keys)
        return self.gather_values(out)

    def gather_values(self, out: np.ndarray) -> list:
        """Map flat value indices (-1 = miss) to payloads, vectorised."""
        values_arr = np.empty(len(self.values), dtype=object)
        if len(self.values):
            values_arr[:] = self.values
        picked = values_arr[np.maximum(out, 0)] if len(out) else values_arr[:0]
        picked[out < 0] = None
        return picked.tolist()

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership array for the key batch."""
        out, _ = self.lookup_batch(keys)
        return out >= 0

    # ------------------------------------------------------------------
    # Range counting
    # ------------------------------------------------------------------

    def count_range(self, lo: float, hi: float) -> int:
        """Number of stored keys in ``[lo, hi)``, two binary searches."""
        if hi <= lo:
            return 0
        sk = self.sorted_keys
        return int(
            np.searchsorted(sk, hi, side="left")
            - np.searchsorted(sk, lo, side="left")
        )

    def count_range_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`count_range` over paired bound arrays."""
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        if los.shape != his.shape:
            raise ValueError("los and his must have the same shape")
        sk = self.sorted_keys
        counts = np.searchsorted(sk, his, side="left") - np.searchsorted(
            sk, los, side="left"
        )
        return np.maximum(counts, 0)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    #
    # All patch methods return False (leaving the plan untouched or --
    # for recompile_subtree -- only consistently updated) when they
    # cannot prove the in-place edit is equivalent to a fresh
    # compile_plan(root); callers then fall back to full invalidation.
    # On success, the patched arrays are *identical* to what a fresh
    # compile of the mutated tree would produce (asserted by the
    # equivalence tests), so reads cannot tell the difference.

    def _locate(self, key: float) -> tuple[int, int] | None:
        """Scalar descent to ``key``'s terminal ``(node row, slot pos)``.

        Uses the same scalar ``int(math.floor(...))`` arithmetic as the
        live tree's ``child_index``/``predict_slot``, so the located
        slot is exactly the one the scalar operation touched.  Returns
        ``(row, -1)`` for a dense-leaf terminal, ``None`` if the
        descent does not terminate.
        """
        kind = self.kind
        slope = self.slope
        intercept = self.intercept
        size = self.size
        base = self.base
        slot_kind = self.slot_kind
        slot_ref = self.slot_ref
        row = 0
        for _ in range(_MAX_DESCENT):
            if kind[row] == KIND_DENSE:
                return row, -1
            pos = int(math.floor(intercept[row] + slope[row] * key))
            last = int(size[row]) - 1
            if pos < 0:
                pos = 0
            elif pos > last:
                pos = last
            ref = int(base[row]) + pos
            if slot_kind[ref] == SLOT_NODE:
                row = int(slot_ref[ref])
                continue
            return row, pos
        return None

    def patch_value(self, key: float, value) -> bool:
        """Replace ``key``'s payload in the flat value table in place.

        Value updates never restructure the tree, so the plan's only
        stale state is one ``values`` entry.  Works on pair and dense
        terminals alike.
        """
        self._frozen_guard()
        loc = self._locate(key)
        if loc is None:
            return False
        row, pos = loc
        if pos < 0:  # dense terminal
            b = int(self.base[row])
            m = int(self.size[row])
            block = self.dense_keys[b:b + m]
            i = int(np.searchsorted(block, key))
            if i >= m or block[i] != key:
                return False
            self.values[self.num_pairs + b + i] = value
            return True
        ref = int(self.base[row]) + pos
        if self.slot_kind[ref] != SLOT_PAIR:
            return False
        p = int(self.slot_ref[ref])
        if self.pair_keys[p] != key:
            return False
        self.values[p] = value
        return True

    def patch_insert(self, key: float, value) -> bool:
        """Single-pair form of :meth:`patch_insert_many`."""
        return self.patch_insert_many([(key, value)])

    def patch_insert_many(self, pairs: list) -> bool:
        """Splice newly inserted pairs into the buffers in place.

        ``pairs`` are ``(key, value)`` tuples the live tree just placed
        into previously *empty* slots (no spawn, no adjust).  Slot
        positions come from re-running the descent on the plan itself;
        the flat key/value arrays grow by one vectorized ``np.insert``
        with the existing pair references shifted in bulk.
        """
        self._frozen_guard()
        if len(self.dense_keys):
            return False  # dense/mixed plans: patching keys not supported
        k = len(pairs)
        if k == 0:
            return True
        refs = []
        for key, _ in pairs:
            loc = self._locate(key)
            if loc is None or loc[1] < 0:
                return False
            row, pos = loc
            ref = int(self.base[row]) + pos
            if self.slot_kind[ref] != SLOT_EMPTY:
                return False
            refs.append(ref)
        keys_arr = np.fromiter(
            (p[0] for p in pairs), dtype=np.float64, count=k
        )
        order = np.argsort(keys_arr, kind="stable")
        keys_sorted = keys_arr[order]
        if k > 1 and not np.all(keys_sorted[1:] > keys_sorted[:-1]):
            return False  # duplicate keys in one patch batch
        old = self.pair_keys
        ins = np.searchsorted(old, keys_sorted)
        # Existing pair index i moves up by the number of new keys
        # landing at or before it.
        pair_mask = self.slot_kind == SLOT_PAIR
        prefs = self.slot_ref[pair_mask]
        self.slot_ref[pair_mask] = prefs + np.searchsorted(
            ins, prefs, side="right"
        )
        self.pair_keys = np.insert(old, ins, keys_sorted)
        self.sorted_keys = self.pair_keys
        final = ins + np.arange(k, dtype=np.int64)
        slot_kind = self.slot_kind
        slot_ref = self.slot_ref
        for t in range(k):
            ref = refs[int(order[t])]
            slot_kind[ref] = SLOT_PAIR
            slot_ref[ref] = final[t]
        vals = self.values
        out_vals: list = []
        prev = 0
        for t in range(k):
            cut = int(ins[t])
            out_vals.extend(vals[prev:cut])
            out_vals.append(pairs[int(order[t])][1])
            prev = cut
        out_vals.extend(vals[prev:])
        self.values = out_vals
        self.num_pairs += k
        return True

    def patch_delete(self, key: float) -> bool:
        """Single-key form of :meth:`patch_delete_many`."""
        return self.patch_delete_many([key])

    def patch_delete_many(self, keys: Sequence[float]) -> bool:
        """Remove deleted top-frame pairs from the buffers in place.

        ``keys`` were just deleted from pair slots without any
        structural change (no nested-leaf collapse).  The vacated slots
        become ``SLOT_EMPTY`` with a zeroed ref -- exactly what a fresh
        compile of the mutated tree would emit.
        """
        self._frozen_guard()
        if len(self.dense_keys):
            return False
        k = len(keys)
        if k == 0:
            return True
        drop = np.empty(k, dtype=np.int64)
        slot_refs = []
        pair_keys = self.pair_keys
        for t, key in enumerate(keys):
            loc = self._locate(key)
            if loc is None or loc[1] < 0:
                return False
            row, pos = loc
            ref = int(self.base[row]) + pos
            if self.slot_kind[ref] != SLOT_PAIR:
                return False
            p = int(self.slot_ref[ref])
            if pair_keys[p] != key:
                return False
            drop[t] = p
            slot_refs.append(ref)
        drop.sort()
        if k > 1 and not np.all(drop[1:] > drop[:-1]):
            return False  # duplicate keys in one patch batch
        for ref in slot_refs:
            self.slot_kind[ref] = SLOT_EMPTY
            self.slot_ref[ref] = 0
        pair_mask = self.slot_kind == SLOT_PAIR
        prefs = self.slot_ref[pair_mask]
        self.slot_ref[pair_mask] = prefs - np.searchsorted(drop, prefs)
        self.pair_keys = np.delete(pair_keys, drop)
        self.sorted_keys = self.pair_keys
        vals = self.values
        out_vals = []
        prev = 0
        for p in drop.tolist():
            out_vals.extend(vals[prev:p])
            prev = p + 1
        out_vals.extend(vals[prev:])
        self.values = out_vals
        self.num_pairs -= k
        return True

    def recompile_subtree(self, key: float, top_leaf) -> bool:
        """Single-leaf form of :meth:`recompile_subtrees`."""
        return self.recompile_subtrees([(key, top_leaf)])

    def recompile_subtrees(self, items: list) -> bool:
        """Recompile structurally changed top-level leaves, one splice.

        ``items`` holds ``(key, top_leaf)`` pairs: each ``top_leaf`` is
        a live-tree top-level leaf that just changed *structurally*
        (spawn / adjust / collapse) and ``key`` is any key routing to
        it.  DFS-preorder construction makes each top-level leaf's plan
        footprint contiguous in all three tables (node rows, slot rows,
        pair indices), so every stale extent is cut out, the freshly
        built arrays spliced in, and all references outside the extents
        shifted by cumulative size deltas -- a single pass over the
        buffers no matter how many leaves changed, which is what makes
        write batches with many structural groups affordable.
        """
        self._frozen_guard()
        if len(self.dense_keys):
            return False
        if not items:
            return True
        kind = self.kind
        segs = []
        for key, top_leaf in items:
            row = 0
            hops = 0
            for _ in range(_MAX_DESCENT):
                if kind[row] != KIND_INTERNAL:
                    break
                pos = int(
                    math.floor(
                        self.intercept[row] + self.slope[row] * key
                    )
                )
                last = int(self.size[row]) - 1
                if pos < 0:
                    pos = 0
                elif pos > last:
                    pos = last
                row = int(self.slot_ref[int(self.base[row]) + pos])
                hops += 1
            else:
                return False
            if int(self.region[row]) != top_leaf.region:
                return False  # plan out of sync with the live tree
            ext = self._subtree_extent(row)
            if ext is None:
                return False
            node_end, slot_end, pair_lo, pair_count = ext
            b = _PlanBuilder()
            b.add_node(top_leaf, 1)
            if b.dense_len:
                return False
            if pair_count == 0:
                # Empty footprint (e.g. a previously empty leaf whose
                # batch inserts were all structural, so none were
                # patched in): no pair anchors the splice.  The pair
                # table is globally key-ordered, so the insertion point
                # of the rebuilt subtree's first key (or of the routing
                # key, when it stays empty) is the anchor.
                anchor = b.pair_keys[0] if b.pair_keys else key
                pair_lo = int(np.searchsorted(self.pair_keys, anchor))
            segs.append((
                row, node_end, int(self.base[row]), slot_end,
                pair_lo, pair_lo + pair_count, b, hops,
            ))
        segs.sort(key=lambda s: s[0])
        k = len(segs)
        # Disjointness guard: distinct top-level leaves always yield
        # ordered, non-overlapping extents in all three tables.
        for i in range(1, k):
            if (
                segs[i - 1][1] > segs[i][0]
                or segs[i - 1][3] > segs[i][2]
                or segs[i - 1][5] > segs[i][4]
            ):
                return False
        # Cumulative deltas before each segment (and after the last).
        dn = [0] * (k + 1)
        ds = [0] * (k + 1)
        dp = [0] * (k + 1)
        for i, (r, ne, sl, se, pl, pe, b, _h) in enumerate(segs):
            dn[i + 1] = dn[i] + len(b.kind) - (ne - r)
            ds[i + 1] = ds[i] + len(b.slot_kind) - (se - sl)
            dp[i + 1] = dp[i] + len(b.pair_keys) - (pe - pl)
        node_ends = np.asarray([s[1] for s in segs], dtype=np.int64)
        slot_ends = np.asarray([s[3] for s in segs], dtype=np.int64)
        pair_ends = np.asarray([s[5] for s in segs], dtype=np.int64)
        dn_arr = np.asarray(dn, dtype=np.int64)
        ds_arr = np.asarray(ds, dtype=np.int64)
        dp_arr = np.asarray(dp, dtype=np.int64)
        # Fix references in the slot rows *outside* every extent.  An
        # outside ref to old node x (or pair y) shifts by the cumulative
        # delta of the segments that end at or before it; a parent's
        # pointer to a segment root r_i lands on new_r_i the same way.
        old_sk = self.slot_kind
        old_sr = self.slot_ref.copy()
        outside = np.ones(len(old_sk), dtype=bool)
        for r, ne, sl, se, pl, pe, b, _h in segs:
            outside[sl:se] = False
        nmask = outside & (old_sk == SLOT_NODE)
        old_sr[nmask] += dn_arr[
            np.searchsorted(node_ends, old_sr[nmask], side="right")
        ]
        pmask = outside & (old_sk == SLOT_PAIR)
        old_sr[pmask] += dp_arr[
            np.searchsorted(pair_ends, old_sr[pmask], side="right")
        ]
        # Outside node rows keep their slot blocks; the block start
        # shifts by the cumulative slot delta before it.
        new_node_base = self.base + ds_arr[
            np.searchsorted(slot_ends, self.base, side="right")
        ]
        # Assemble every table as alternating [unchanged | rebuilt]
        # chunks -- one concatenate per array.
        kind_parts = []
        slope_parts = []
        intercept_parts = []
        size_parts = []
        region_parts = []
        base_parts = []
        sk_parts = []
        sr_parts = []
        pk_parts = []
        out_vals: list = []
        prev_n = 0
        prev_s = 0
        prev_p = 0
        vals = self.values
        max_new_depth = self.depth
        for i, (r, ne, sl, se, pl, pe, b, hops) in enumerate(segs):
            new_sk = np.asarray(b.slot_kind, dtype=np.int8)
            new_sr = np.asarray(b.slot_ref, dtype=np.int64)
            new_sr[new_sk == SLOT_NODE] += r + dn[i]
            new_sr[new_sk == SLOT_PAIR] += pl + dp[i]
            kind_parts += [kind[prev_n:r], np.asarray(b.kind, dtype=np.int8)]
            slope_parts += [
                self.slope[prev_n:r],
                np.asarray(b.slope, dtype=np.float64),
            ]
            intercept_parts += [
                self.intercept[prev_n:r],
                np.asarray(b.intercept, dtype=np.float64),
            ]
            size_parts += [
                self.size[prev_n:r],
                np.asarray(b.size, dtype=np.int64),
            ]
            region_parts += [
                self.region[prev_n:r],
                np.asarray(b.region, dtype=np.int64),
            ]
            base_parts += [
                new_node_base[prev_n:r],
                np.asarray(b.base, dtype=np.int64) + sl + ds[i],
            ]
            sk_parts += [old_sk[prev_s:sl], new_sk]
            sr_parts += [old_sr[prev_s:sl], new_sr]
            pk_parts += [
                self.pair_keys[prev_p:pl],
                np.asarray(b.pair_keys, dtype=np.float64),
            ]
            out_vals.extend(vals[prev_p:pl])
            out_vals.extend(b.pair_vals)
            prev_n, prev_s, prev_p = ne, se, pe
            if hops + b.max_depth > max_new_depth:
                max_new_depth = hops + b.max_depth
        kind_parts.append(kind[prev_n:])
        slope_parts.append(self.slope[prev_n:])
        intercept_parts.append(self.intercept[prev_n:])
        size_parts.append(self.size[prev_n:])
        region_parts.append(self.region[prev_n:])
        base_parts.append(new_node_base[prev_n:])
        sk_parts.append(old_sk[prev_s:])
        sr_parts.append(old_sr[prev_s:])
        pk_parts.append(self.pair_keys[prev_p:])
        out_vals.extend(vals[prev_p:])
        self.kind = np.concatenate(kind_parts)
        self.slope = np.concatenate(slope_parts)
        self.intercept = np.concatenate(intercept_parts)
        self.size = np.concatenate(size_parts)
        self.region = np.concatenate(region_parts)
        self.base = np.concatenate(base_parts)
        self.slot_kind = np.concatenate(sk_parts)
        self.slot_ref = np.concatenate(sr_parts)
        self.pair_keys = np.concatenate(pk_parts)
        self.sorted_keys = self.pair_keys
        self.values = out_vals
        self.num_pairs += dp[k]
        # Upper bound: nesting may have shrunk elsewhere, but depth is
        # informational (the descent loops run until resolution).
        self.depth = max_new_depth
        return True

    def _subtree_extent(self, row: int) -> tuple[int, int, int, int] | None:
        """Extent of ``row``'s subtree: (node_end, slot_end, pair_lo, n).

        Walks the subtree's slot rows; returns ``None`` when it reaches
        a dense leaf (those interleave a fourth table).
        """
        kind = self.kind
        base = self.base
        size = self.size
        slot_kind = self.slot_kind
        slot_ref = self.slot_ref
        node_end = row + 1
        slot_end = int(base[row])
        pair_lo = -1
        pair_count = 0
        stack = [row]
        while stack:
            v = stack.pop()
            if kind[v] == KIND_DENSE:
                return None
            if v + 1 > node_end:
                node_end = v + 1
            b = int(base[v])
            e = b + int(size[v])
            if e > slot_end:
                slot_end = e
            for j in range(b, e):
                sk = slot_kind[j]
                if sk == SLOT_NODE:
                    stack.append(int(slot_ref[j]))
                elif sk == SLOT_PAIR:
                    p = int(slot_ref[j])
                    pair_count += 1
                    if pair_lo < 0 or p < pair_lo:
                        pair_lo = p
        return node_end, slot_end, pair_lo, pair_count

    # ------------------------------------------------------------------
    # Tracer replay
    # ------------------------------------------------------------------

    def replay_trace(
        self,
        keys: np.ndarray,
        trace: list,
        tracer: Tracer,
        cycles: CyclesPerOp = DEFAULT_CYCLES,
    ) -> None:
        """Charge the tracer exactly as per-key scalar ``get`` calls would.

        The batch descent is level-synchronous, but the simulated cache
        is a stateful LRU: event *order* changes hit/miss outcomes.  So
        the recorded trace is transposed into per-key paths and replayed
        key by key in batch order -- the same event stream, in the same
        order, as ``for k in keys: index.get(k, tracer)``.
        """
        from repro.core.search_util import exp_search_lub

        n = len(keys)
        if n == 0:
            return
        depth = len(trace)
        path_node = np.full((n, depth), -1, dtype=np.int64)
        path_pos = np.full((n, depth), -1, dtype=np.int64)
        for level, (idx, node, pos) in enumerate(trace):
            path_node[idx, level] = node
            if pos is None:  # dense terminals carry no slot position
                path_pos[idx, level] = -2
            else:
                path_pos[idx, level] = pos
        eta = cycles.linear_model
        branch = cycles.branch
        mu_e = cycles.exp_search_step
        # Plain-python copies of the node table: the replay loop indexes
        # them per event, and python ints compare/hash like the scalar
        # path's attributes do.
        kind = self.kind.tolist()
        region = self.region.tolist()
        slot_kind = self.slot_kind.tolist()
        base = self.base.tolist()
        slope = self.slope.tolist()
        intercept = self.intercept.tolist()
        size = self.size.tolist()
        dense_keys = self.dense_keys
        mem = tracer.mem
        compute = tracer.compute
        nodes_list = path_node.tolist()
        pos_list = path_pos.tolist()
        keys_list = np.ascontiguousarray(keys, dtype=np.float64).tolist()
        for i in range(n):
            key = keys_list[i]
            row_nodes = nodes_list[i]
            row_pos = pos_list[i]
            tracer.phase("step1")
            in_step2 = False
            for level in range(depth):
                v = row_nodes[level]
                if v < 0:
                    continue
                k = kind[v]
                if not in_step2 and k != KIND_INTERNAL:
                    tracer.phase("step2")
                    in_step2 = True
                p = row_pos[level]
                if p == -2:  # dense leaf: Algorithm 1's last mile
                    m = size[v]
                    if m == 0:
                        break
                    mem(region[v])
                    compute(eta)
                    hint = int(np.floor(intercept[v] + slope[v] * key))
                    b = base[v]
                    exp_search_lub(
                        dense_keys[b:b + m], key, hint, tracer,
                        region[v], mu_e=mu_e,
                    )
                    break
                mem(region[v])
                compute(eta)
                if k == KIND_INTERNAL:
                    mem(region[v], 64 + p * 8)
                else:
                    mem(region[v], 64 + p * 16)
                    if slot_kind[base[v] + p] == SLOT_PAIR:
                        compute(branch)
            if not in_step2:
                tracer.phase("step2")

    def memory_bytes(self) -> int:
        """Actual buffer footprint of the plan itself."""
        arrays = (
            self.kind, self.slope, self.intercept, self.size, self.base,
            self.region, self.slot_kind, self.slot_ref, self.pair_keys,
            self.dense_keys, self.sorted_keys,
        )
        return sum(a.nbytes for a in arrays) + 8 * len(self.values)

    def self_check(self) -> None:
        """Verify SoA cross-reference integrity after patches/splices.

        The sanitizer hook point (:mod:`repro.check.invariants` calls
        this during deep verification): every table length, slot
        reference, dense block, and sorted-key ordering the patch and
        recompile paths maintain incrementally is re-checked from
        scratch.  Raises
        :class:`repro.check.errors.InvariantError` on the first
        inconsistency.
        """
        from repro.check.errors import InvariantError

        rows = len(self.kind)
        for name in ("slope", "intercept", "size", "base", "region"):
            if len(getattr(self, name)) != rows:
                raise InvariantError(
                    f"plan table '{name}' has {len(getattr(self, name))} "
                    f"rows, kind has {rows}"
                )
        if len(self.slot_kind) != len(self.slot_ref):
            raise InvariantError(
                f"slot tables diverge: {len(self.slot_kind)} kinds vs "
                f"{len(self.slot_ref)} refs"
            )
        if self.num_pairs != len(self.pair_keys):
            raise InvariantError(
                f"num_pairs {self.num_pairs} != pair table length "
                f"{len(self.pair_keys)}"
            )
        if len(self.values) != self.num_pairs + len(self.dense_keys):
            raise InvariantError(
                f"value table holds {len(self.values)} entries for "
                f"{self.num_pairs} pairs + {len(self.dense_keys)} dense keys"
            )
        for name in ("pair_keys", "sorted_keys"):
            arr = getattr(self, name)
            if len(arr) > 1 and not bool(np.all(arr[1:] > arr[:-1])):
                raise InvariantError(f"plan '{name}' not strictly ascending")
        n_slots = len(self.slot_kind)
        for row in range(rows):
            b = int(self.base[row])
            m = int(self.size[row])
            if self.kind[row] == KIND_DENSE:
                if b < 0 or b + m > len(self.dense_keys):
                    raise InvariantError(
                        f"dense row {row} block [{b}, {b + m}) outside "
                        f"dense_keys[0, {len(self.dense_keys)})"
                    )
                block = self.dense_keys[b:b + m]
                if len(block) > 1 and not bool(np.all(block[1:] > block[:-1])):
                    raise InvariantError(f"dense row {row} block unsorted")
            elif b < 0 or m < 1 or b + m > n_slots:
                raise InvariantError(
                    f"row {row} slots [{b}, {b + m}) outside the slot "
                    f"table [0, {n_slots})"
                )
        bad_kind = ~np.isin(self.slot_kind, (SLOT_EMPTY, SLOT_PAIR, SLOT_NODE))
        if bool(np.any(bad_kind)):
            raise InvariantError("slot table holds an unknown slot kind")
        pair_refs = self.slot_ref[self.slot_kind == SLOT_PAIR]
        if len(pair_refs) != self.num_pairs or not bool(
            np.array_equal(np.sort(pair_refs), np.arange(self.num_pairs))
        ):
            raise InvariantError(
                f"{len(pair_refs)} pair slots do not reference the "
                f"{self.num_pairs} pair-table entries exactly once"
            )
        node_refs = self.slot_ref[self.slot_kind == SLOT_NODE]
        if len(node_refs) and (
            int(node_refs.min()) < 1 or int(node_refs.max()) >= rows
        ):
            raise InvariantError("slot table references a node row "
                                 "outside the node table")


class _PlanBuilder:
    """Accumulates SoA rows for a (sub)tree in DFS preorder.

    Shared by :func:`compile_plan` (whole tree) and
    :meth:`FlatPlan.recompile_subtree` (one top-level leaf's subtree,
    whose locally 0-based references the caller offsets into place).
    """

    __slots__ = (
        "kind", "slope", "intercept", "size", "base", "region",
        "slot_kind", "slot_ref", "pair_keys", "pair_vals",
        "dense_key_parts", "dense_vals", "dense_len", "max_depth",
    )

    def __init__(self) -> None:
        self.kind: list[int] = []
        self.slope: list[float] = []
        self.intercept: list[float] = []
        self.size: list[int] = []
        self.base: list[int] = []
        self.region: list[int] = []
        self.slot_kind: list[int] = []
        self.slot_ref: list[int] = []
        self.pair_keys: list[float] = []
        self.pair_vals: list = []
        self.dense_key_parts: list[np.ndarray] = []
        self.dense_vals: list = []
        self.dense_len = 0
        self.max_depth = 0

    def add_node(self, node, depth: int) -> int:
        if depth > self.max_depth:
            self.max_depth = depth
        kind = self.kind
        slot_kind = self.slot_kind
        slot_ref = self.slot_ref
        nid = len(kind)
        t = type(node)
        if t is InternalNode:
            children = node.children
            kind.append(KIND_INTERNAL)
            self.slope.append(node.slope)
            self.intercept.append(node.intercept)
            self.size.append(len(children))
            b = len(slot_kind)
            self.base.append(b)
            self.region.append(node.region)
            slot_kind.extend([SLOT_NODE] * len(children))
            slot_ref.extend([0] * len(children))
            for i, child in enumerate(children):
                slot_ref[b + i] = self.add_node(child, depth + 1)
        elif t is DenseLeafNode:
            kind.append(KIND_DENSE)
            self.slope.append(node.slope)
            self.intercept.append(node.intercept)
            self.size.append(len(node.keys))
            self.base.append(self.dense_len)
            self.region.append(node.region)
            self.dense_key_parts.append(
                np.asarray(node.keys, dtype=np.float64)
            )
            self.dense_vals.extend(node.values)
            self.dense_len += len(node.keys)
        else:
            slots = node.slots
            kind.append(KIND_LEAF)
            self.slope.append(node.slope)
            self.intercept.append(node.intercept)
            self.size.append(len(slots))
            b = len(slot_kind)
            self.base.append(b)
            self.region.append(node.region)
            slot_kind.extend([SLOT_EMPTY] * len(slots))
            slot_ref.extend([0] * len(slots))
            pair_keys = self.pair_keys
            pair_vals = self.pair_vals
            for i, entry in enumerate(slots):
                if entry is None:
                    continue
                if type(entry) is tuple:
                    slot_kind[b + i] = SLOT_PAIR
                    slot_ref[b + i] = len(pair_keys)
                    pair_keys.append(entry[0])
                    pair_vals.append(entry[1])
                else:
                    slot_kind[b + i] = SLOT_NODE
                    slot_ref[b + i] = self.add_node(entry, depth + 1)
        return nid


def compile_plan(root) -> FlatPlan:
    """Pack the node tree under ``root`` into a :class:`FlatPlan`.

    One DFS over the tree; payload objects are shared with the live
    tree, keys are copied into flat float64 buffers.  Slot/pair order
    follows the in-tree order, so ``pair_keys`` and ``dense_keys`` come
    out ascending (slot prediction is monotone in the key).
    """
    b = _PlanBuilder()
    b.add_node(root, 1)
    pair_arr = np.asarray(b.pair_keys, dtype=np.float64)
    dense_arr = (
        np.concatenate(b.dense_key_parts)
        if b.dense_key_parts
        else np.empty(0, dtype=np.float64)
    )
    if len(dense_arr) == 0:
        sorted_keys = pair_arr
    elif len(pair_arr) == 0:
        sorted_keys = dense_arr
    else:  # mixed trees cannot arise from bulk_load, but stay correct
        sorted_keys = np.sort(np.concatenate([pair_arr, dense_arr]))
    return FlatPlan(
        kind=np.asarray(b.kind, dtype=np.int8),
        slope=np.asarray(b.slope, dtype=np.float64),
        intercept=np.asarray(b.intercept, dtype=np.float64),
        size=np.asarray(b.size, dtype=np.int64),
        base=np.asarray(b.base, dtype=np.int64),
        region=np.asarray(b.region, dtype=np.int64),
        slot_kind=np.asarray(b.slot_kind, dtype=np.int8),
        slot_ref=np.asarray(b.slot_ref, dtype=np.int64),
        pair_keys=pair_arr,
        dense_keys=dense_arr,
        values=b.pair_vals + b.dense_vals,
        sorted_keys=sorted_keys,
        depth=b.max_depth,
    )


class InternalRouter:
    """Array-packed internal skeleton for routing whole write batches.

    Internal nodes are immutable after bulk load -- inserts, deletes and
    leaf adjustments only ever replace slots *inside* top-level leaves --
    so this skeleton stays valid for the lifetime of a root.  ``DILI``
    caches one per tree and rebuilds it only when the root object is
    replaced.  :meth:`route` descends a key batch level-synchronously
    (the same multiply-add as the flat plan) and returns each key's
    target top-level leaf; with ``record=True`` it also returns the
    per-level trace from which the batch write path synthesizes the
    scalar descent's tracer events.
    """

    __slots__ = (
        "root", "slope", "intercept", "size", "base", "region",
        "child_is_leaf", "child_ref", "leaves",
    )

    def __init__(self, root) -> None:
        self.root = root
        slope: list[float] = []
        intercept: list[float] = []
        size: list[int] = []
        base: list[int] = []
        region: list[int] = []
        child_is_leaf: list[bool] = []
        child_ref: list[int] = []
        leaves: list = []

        def add(node) -> int:
            nid = len(slope)
            children = node.children
            slope.append(node.slope)
            intercept.append(node.intercept)
            size.append(len(children))
            b = len(child_is_leaf)
            base.append(b)
            region.append(node.region)
            child_is_leaf.extend([False] * len(children))
            child_ref.extend([0] * len(children))
            for i, child in enumerate(children):
                if type(child) is InternalNode:
                    child_ref[b + i] = add(child)
                else:
                    child_is_leaf[b + i] = True
                    child_ref[b + i] = len(leaves)
                    leaves.append(child)
            return nid

        if type(root) is InternalNode:
            add(root)
        else:
            leaves.append(root)
        self.slope = np.asarray(slope, dtype=np.float64)
        self.intercept = np.asarray(intercept, dtype=np.float64)
        self.size = np.asarray(size, dtype=np.int64)
        self.base = np.asarray(base, dtype=np.int64)
        self.region = np.asarray(region, dtype=np.int64)
        self.child_is_leaf = np.asarray(child_is_leaf, dtype=bool)
        self.child_ref = np.asarray(child_ref, dtype=np.int64)
        self.leaves = leaves

    def route(
        self, keys: np.ndarray, record: bool = False
    ) -> tuple[np.ndarray, list | None]:
        """Target leaf index (into :attr:`leaves`) for every key.

        Returns ``(out, trace)``; ``trace`` is ``None`` unless
        ``record``, else per-level ``(idx, node, pos)`` arrays matching
        the flat plan's trace format (internal levels only).
        """
        n = len(keys)
        out = np.zeros(n, dtype=np.int64)
        trace: list | None = [] if record else None
        if len(self.slope) == 0 or n == 0:
            return out, trace
        idx = np.arange(n, dtype=np.int64)
        node = np.zeros(n, dtype=np.int64)
        for _ in range(_MAX_DESCENT):
            if idx.size == 0:
                break
            v = self.intercept[node] + self.slope[node] * keys[idx]
            unsafe = ~((v > -_SAFE_PRED) & (v < _SAFE_PRED))
            if unsafe.any():
                vs = np.where(unsafe, 0.0, v)
                pos = np.floor(vs).astype(np.int64)
                # Slow path reproduces the scalar child_index exactly,
                # including its exceptions for non-finite keys.
                for j in np.flatnonzero(unsafe):
                    p = int(math.floor(float(v[j])))
                    last = int(self.size[node[j]]) - 1
                    pos[j] = 0 if p < 0 else (last if p > last else p)
            else:
                pos = np.floor(v).astype(np.int64)
            np.clip(pos, 0, self.size[node] - 1, out=pos)
            if record:
                trace.append((idx, node, pos))
            ref = self.base[node] + pos
            leafy = self.child_is_leaf[ref]
            tgt = self.child_ref[ref]
            out[idx[leafy]] = tgt[leafy]
            keep = ~leafy
            idx = idx[keep]
            node = tgt[keep]
        else:  # pragma: no cover - defended structural corruption
            raise RuntimeError("router descent did not terminate")
        return out, trace
