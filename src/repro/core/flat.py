"""Array-packed read plan for vectorized batch lookups.

The DILI node tree is a pointer structure: every ``get`` chases
``InternalNode`` / ``LeafNode`` objects one attribute at a time.  That is
faithful to the paper's algorithms but leaves most of numpy's throughput
on the table, because DILI's equal-width internal models make the entire
descent a *data-parallel* computation: at every level the next hop is
``floor(intercept + slope * key)`` clamped into the fanout -- the same
multiply-add for every in-flight key.

:func:`compile_plan` packs the tree into structure-of-arrays buffers
(one row per node, one row per entry-array slot) and
:class:`FlatPlan` descends a whole key batch level-synchronously with
numpy ops -- no per-key Python in the loop.  The plan is a *read*
acceleration structure only: it references the live tree's payload
objects, is compiled lazily by :meth:`repro.core.dili.DILI.get_batch`,
and is dropped by every mutation (see ``DILI._invalidate_plan``).

Layout
------
Node table (row = one node, in DFS preorder; the root is row 0):

========  =======  ====================================================
array     dtype    meaning
========  =======  ====================================================
kind      int8     0 internal, 1 locally-optimized leaf, 2 dense leaf
slope     float64  node model slope
intercept float64  node model intercept
size      int64    slot count (internal/leaf) or key count (dense)
base      int64    first row in the slot table (internal/leaf) or the
                   first index in ``dense_keys`` (dense)
region    int64    tracer memory-region id of the original node
========  =======  ====================================================

Slot table (row = one child pointer or entry-array slot):

=========  =====  =====================================================
array      dtype  meaning
=========  =====  =====================================================
slot_kind  int8   0 empty, 1 pair, 2 child node
slot_ref   int64  pair index (kind 1) or node row (kind 2)
=========  =====  =====================================================

``pair_keys`` / ``dense_keys`` hold the keys (both ascending -- a DFS of
the tree visits keys in order) and ``values`` holds every payload, pair
payloads first, so a lookup resolves to ``values[i]`` for a single flat
index ``i``.

Cost tracing
------------
``lookup_batch(..., record=True)`` additionally returns the per-level
descent trace (which node each key visited and at which slot).  The
tracer-aware callers replay that trace key by key, in batch order,
through the ordinary :class:`~repro.simulate.tracer.Tracer` protocol --
charging exactly the events the scalar ``get`` loop would have charged,
in the same order, so the stateful LRU cache simulation produces
identical totals.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.nodes import DenseLeafNode, InternalNode, LeafNode
from repro.simulate.latency import CyclesPerOp, DEFAULT_CYCLES
from repro.simulate.tracer import NULL_TRACER, Tracer

KIND_INTERNAL = 0
KIND_LEAF = 1
KIND_DENSE = 2

SLOT_EMPTY = 0
SLOT_PAIR = 1
SLOT_NODE = 2

_MAX_DESCENT = 4096
"""Hard cap on descent iterations; the deepest legal tree is the BU
height plus ``MAX_NESTING_DEPTH``, orders of magnitude below this."""


class FlatPlan:
    """Structure-of-arrays snapshot of a DILI tree, for batch reads."""

    __slots__ = (
        "kind",
        "slope",
        "intercept",
        "size",
        "base",
        "region",
        "slot_kind",
        "slot_ref",
        "pair_keys",
        "dense_keys",
        "values",
        "sorted_keys",
        "num_pairs",
        "depth",
    )

    def __init__(
        self,
        kind: np.ndarray,
        slope: np.ndarray,
        intercept: np.ndarray,
        size: np.ndarray,
        base: np.ndarray,
        region: np.ndarray,
        slot_kind: np.ndarray,
        slot_ref: np.ndarray,
        pair_keys: np.ndarray,
        dense_keys: np.ndarray,
        values: list,
        sorted_keys: np.ndarray,
        depth: int,
    ) -> None:
        self.kind = kind
        self.slope = slope
        self.intercept = intercept
        self.size = size
        self.base = base
        self.region = region
        self.slot_kind = slot_kind
        self.slot_ref = slot_ref
        self.pair_keys = pair_keys
        self.dense_keys = dense_keys
        self.values = values
        self.sorted_keys = sorted_keys
        self.num_pairs = len(pair_keys)
        self.depth = depth

    # ------------------------------------------------------------------
    # Batch descent
    # ------------------------------------------------------------------

    def lookup_batch(
        self, keys: np.ndarray, record: bool = False
    ) -> tuple[np.ndarray, list | None]:
        """Resolve every key to a flat value index (-1 when absent).

        Args:
            keys: 1-D float64 key batch.
            record: Also return the descent trace for tracer replay.

        Returns:
            ``(out, trace)``: ``out[i]`` indexes :attr:`values` or is -1;
            ``trace`` is ``None`` unless ``record``, else a list of
            per-level ``(idx, node, pos)`` arrays plus a final
            ``(idx, node, None)`` entry for keys that ended in a dense
            leaf.
        """
        q = np.ascontiguousarray(keys, dtype=np.float64)
        n = len(q)
        out = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return out, ([] if record else None)
        idx = np.arange(n, dtype=np.int64)
        node = np.zeros(n, dtype=np.int64)
        trace: list | None = [] if record else None
        dense_idx_parts: list[np.ndarray] = []
        dense_node_parts: list[np.ndarray] = []
        for _ in range(_MAX_DESCENT):
            if idx.size == 0:
                break
            kinds = self.kind[node]
            dense = kinds == KIND_DENSE
            if dense.any():
                dense_idx_parts.append(idx[dense])
                dense_node_parts.append(node[dense])
                keep = ~dense
                idx = idx[keep]
                node = node[keep]
                if idx.size == 0:
                    break
            # One multiply-add per in-flight key locates the next slot
            # (Eq. 1 / Algorithm 5 line 4), floored and clamped exactly
            # like the scalar predict_slot/child_index.
            pos = np.floor(
                self.intercept[node] + self.slope[node] * q[idx]
            ).astype(np.int64)
            np.clip(pos, 0, self.size[node] - 1, out=pos)
            if record:
                trace.append((idx, node, pos))
            ref = self.base[node] + pos
            skind = self.slot_kind[ref]
            sref = self.slot_ref[ref]
            is_pair = skind == SLOT_PAIR
            if is_pair.any():
                pidx = idx[is_pair]
                pref = sref[is_pair]
                hit = self.pair_keys[pref] == q[pidx]
                out[pidx[hit]] = pref[hit]
            descend = skind == SLOT_NODE
            idx = idx[descend]
            node = sref[descend]
        else:  # pragma: no cover - defended structural corruption
            raise RuntimeError("flat plan descent did not terminate")
        if dense_idx_parts:
            didx = np.concatenate(dense_idx_parts)
            dnode = np.concatenate(dense_node_parts)
            if record:
                trace.append((didx, dnode, None))
            if len(self.dense_keys):
                pos = np.searchsorted(self.dense_keys, q[didx])
                np.clip(pos, 0, len(self.dense_keys) - 1, out=pos)
                hit = self.dense_keys[pos] == q[didx]
                out[didx[hit]] = self.num_pairs + pos[hit]
        return out, trace

    def get_batch(self, keys: np.ndarray) -> list:
        """Values for every key, ``None`` where absent (batch ``get``)."""
        out, _ = self.lookup_batch(keys)
        return self.gather_values(out)

    def gather_values(self, out: np.ndarray) -> list:
        """Map flat value indices (-1 = miss) to payloads, vectorised."""
        values_arr = np.empty(len(self.values), dtype=object)
        if len(self.values):
            values_arr[:] = self.values
        picked = values_arr[np.maximum(out, 0)] if len(out) else values_arr[:0]
        picked[out < 0] = None
        return picked.tolist()

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership array for the key batch."""
        out, _ = self.lookup_batch(keys)
        return out >= 0

    # ------------------------------------------------------------------
    # Range counting
    # ------------------------------------------------------------------

    def count_range(self, lo: float, hi: float) -> int:
        """Number of stored keys in ``[lo, hi)``, two binary searches."""
        if hi <= lo:
            return 0
        sk = self.sorted_keys
        return int(
            np.searchsorted(sk, hi, side="left")
            - np.searchsorted(sk, lo, side="left")
        )

    def count_range_batch(
        self, los: np.ndarray, his: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`count_range` over paired bound arrays."""
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        if los.shape != his.shape:
            raise ValueError("los and his must have the same shape")
        sk = self.sorted_keys
        counts = np.searchsorted(sk, his, side="left") - np.searchsorted(
            sk, los, side="left"
        )
        return np.maximum(counts, 0)

    # ------------------------------------------------------------------
    # Tracer replay
    # ------------------------------------------------------------------

    def replay_trace(
        self,
        keys: np.ndarray,
        trace: list,
        tracer: Tracer,
        cycles: CyclesPerOp = DEFAULT_CYCLES,
    ) -> None:
        """Charge the tracer exactly as per-key scalar ``get`` calls would.

        The batch descent is level-synchronous, but the simulated cache
        is a stateful LRU: event *order* changes hit/miss outcomes.  So
        the recorded trace is transposed into per-key paths and replayed
        key by key in batch order -- the same event stream, in the same
        order, as ``for k in keys: index.get(k, tracer)``.
        """
        from repro.core.search_util import exp_search_lub

        n = len(keys)
        if n == 0:
            return
        depth = len(trace)
        path_node = np.full((n, depth), -1, dtype=np.int64)
        path_pos = np.full((n, depth), -1, dtype=np.int64)
        for level, (idx, node, pos) in enumerate(trace):
            path_node[idx, level] = node
            if pos is None:  # dense terminals carry no slot position
                path_pos[idx, level] = -2
            else:
                path_pos[idx, level] = pos
        eta = cycles.linear_model
        branch = cycles.branch
        mu_e = cycles.exp_search_step
        # Plain-python copies of the node table: the replay loop indexes
        # them per event, and python ints compare/hash like the scalar
        # path's attributes do.
        kind = self.kind.tolist()
        region = self.region.tolist()
        slot_kind = self.slot_kind.tolist()
        base = self.base.tolist()
        slope = self.slope.tolist()
        intercept = self.intercept.tolist()
        size = self.size.tolist()
        dense_keys = self.dense_keys
        mem = tracer.mem
        compute = tracer.compute
        nodes_list = path_node.tolist()
        pos_list = path_pos.tolist()
        keys_list = np.ascontiguousarray(keys, dtype=np.float64).tolist()
        for i in range(n):
            key = keys_list[i]
            row_nodes = nodes_list[i]
            row_pos = pos_list[i]
            tracer.phase("step1")
            in_step2 = False
            for level in range(depth):
                v = row_nodes[level]
                if v < 0:
                    continue
                k = kind[v]
                if not in_step2 and k != KIND_INTERNAL:
                    tracer.phase("step2")
                    in_step2 = True
                p = row_pos[level]
                if p == -2:  # dense leaf: Algorithm 1's last mile
                    m = size[v]
                    if m == 0:
                        break
                    mem(region[v])
                    compute(eta)
                    hint = int(np.floor(intercept[v] + slope[v] * key))
                    b = base[v]
                    exp_search_lub(
                        dense_keys[b:b + m], key, hint, tracer,
                        region[v], mu_e=mu_e,
                    )
                    break
                mem(region[v])
                compute(eta)
                if k == KIND_INTERNAL:
                    mem(region[v], 64 + p * 8)
                else:
                    mem(region[v], 64 + p * 16)
                    if slot_kind[base[v] + p] == SLOT_PAIR:
                        compute(branch)
            if not in_step2:
                tracer.phase("step2")

    def memory_bytes(self) -> int:
        """Actual buffer footprint of the plan itself."""
        arrays = (
            self.kind, self.slope, self.intercept, self.size, self.base,
            self.region, self.slot_kind, self.slot_ref, self.pair_keys,
            self.dense_keys, self.sorted_keys,
        )
        return sum(a.nbytes for a in arrays) + 8 * len(self.values)


def compile_plan(root) -> FlatPlan:
    """Pack the node tree under ``root`` into a :class:`FlatPlan`.

    One DFS over the tree; payload objects are shared with the live
    tree, keys are copied into flat float64 buffers.  Slot/pair order
    follows the in-tree order, so ``pair_keys`` and ``dense_keys`` come
    out ascending (slot prediction is monotone in the key).
    """
    kind: list[int] = []
    slope: list[float] = []
    intercept: list[float] = []
    size: list[int] = []
    base: list[int] = []
    region: list[int] = []
    slot_kind: list[int] = []
    slot_ref: list[int] = []
    pair_keys: list[float] = []
    pair_vals: list = []
    dense_key_parts: list[np.ndarray] = []
    dense_vals: list = []
    dense_len = 0
    max_depth = 0

    def add_node(node, depth: int) -> int:
        nonlocal dense_len, max_depth
        if depth > max_depth:
            max_depth = depth
        nid = len(kind)
        t = type(node)
        if t is InternalNode:
            children = node.children
            kind.append(KIND_INTERNAL)
            slope.append(node.slope)
            intercept.append(node.intercept)
            size.append(len(children))
            b = len(slot_kind)
            base.append(b)
            region.append(node.region)
            slot_kind.extend([SLOT_NODE] * len(children))
            slot_ref.extend([0] * len(children))
            for i, child in enumerate(children):
                slot_ref[b + i] = add_node(child, depth + 1)
        elif t is DenseLeafNode:
            kind.append(KIND_DENSE)
            slope.append(node.slope)
            intercept.append(node.intercept)
            size.append(len(node.keys))
            base.append(dense_len)
            region.append(node.region)
            dense_key_parts.append(
                np.asarray(node.keys, dtype=np.float64)
            )
            dense_vals.extend(node.values)
            dense_len += len(node.keys)
        else:
            slots = node.slots
            kind.append(KIND_LEAF)
            slope.append(node.slope)
            intercept.append(node.intercept)
            size.append(len(slots))
            b = len(slot_kind)
            base.append(b)
            region.append(node.region)
            slot_kind.extend([SLOT_EMPTY] * len(slots))
            slot_ref.extend([0] * len(slots))
            for i, entry in enumerate(slots):
                if entry is None:
                    continue
                if type(entry) is tuple:
                    slot_kind[b + i] = SLOT_PAIR
                    slot_ref[b + i] = len(pair_keys)
                    pair_keys.append(entry[0])
                    pair_vals.append(entry[1])
                else:
                    slot_kind[b + i] = SLOT_NODE
                    slot_ref[b + i] = add_node(entry, depth + 1)
        return nid

    add_node(root, 1)
    pair_arr = np.asarray(pair_keys, dtype=np.float64)
    dense_arr = (
        np.concatenate(dense_key_parts)
        if dense_key_parts
        else np.empty(0, dtype=np.float64)
    )
    if len(dense_arr) == 0:
        sorted_keys = pair_arr
    elif len(pair_arr) == 0:
        sorted_keys = dense_arr
    else:  # mixed trees cannot arise from bulk_load, but stay correct
        sorted_keys = np.sort(np.concatenate([pair_arr, dense_arr]))
    return FlatPlan(
        kind=np.asarray(kind, dtype=np.int8),
        slope=np.asarray(slope, dtype=np.float64),
        intercept=np.asarray(intercept, dtype=np.float64),
        size=np.asarray(size, dtype=np.int64),
        base=np.asarray(base, dtype=np.int64),
        region=np.asarray(region, dtype=np.int64),
        slot_kind=np.asarray(slot_kind, dtype=np.int8),
        slot_ref=np.asarray(slot_ref, dtype=np.int64),
        pair_keys=pair_arr,
        dense_keys=dense_arr,
        values=pair_vals + dense_vals,
        sorted_keys=sorted_keys,
        depth=max_depth,
    )
