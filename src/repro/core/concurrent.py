"""Thread-safe DILI wrapper following the Appendix A.8 protocol.

The paper observes that DILI updates touch exactly one top-level leaf
subtree (internal nodes are immutable after bulk loading -- adjustments
rebuild a leaf's entry array in place), so B+Tree-style lock crabbing
degenerates to per-leaf locking.  This wrapper implements that: the
internal descent is lock-free, then the operation holds the lock of the
top leaf it reached.  Locks are striped so millions of leaves do not each
carry a lock object.

Lock-free descent admits one race: between reaching a leaf and
acquiring its stripe, a whole-tree rebuild (``bulk_load`` or a large
``bulk_insert``) can replace the leaf.  Acquisition therefore verifies:
after taking the stripe lock it re-descends and checks the reached leaf
still maps to the held stripe, retrying with exponential backoff (and
falling back to fully exclusive locking) when it does not.  Tree
rebuilds run under :meth:`exclusive`, which holds the global lock *and*
every stripe, so they can never overlap a verified per-leaf operation.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterable

import numpy as np

from repro.core.dili import DILI, DiliConfig
from repro.core.nodes import InternalNode, Pair

# Verified lock acquisition retries before escalating to exclusive mode.
_MAX_LOCK_RETRIES = 8
_BACKOFF_INITIAL_S = 1e-6
_BACKOFF_MAX_S = 1e-3


class ConcurrentDILI:
    """A DILI safe for concurrent readers and writers.

    Point operations (get / insert / delete / update) serialize per
    top-level leaf via striped locks; operations on different leaves
    proceed in parallel.  Scans (``range_query`` / ``items``) cross
    leaf boundaries, so they run under :meth:`exclusive` (global +
    every stripe) -- as do bulk loads and rebuilds -- which keeps
    every point writer out for the duration.

    Args:
        config: Forwarded to the underlying :class:`DILI`.
        stripes: Number of leaf locks; must be positive.
        index: Adopt an existing :class:`DILI` (e.g. one rebuilt by
            crash recovery) instead of creating a fresh empty one;
            ``config`` is ignored when given.
    """

    def __init__(
        self,
        config: DiliConfig | None = None,
        stripes: int = 256,
        *,
        index: DILI | None = None,
    ) -> None:
        if stripes <= 0:
            raise ValueError("stripes must be positive")
        self._index = index if index is not None else DILI(config)
        self._locks = [threading.RLock() for _ in range(stripes)]
        self._global = threading.RLock()
        self._stats_lock = threading.Lock()
        #: Verified-acquisition telemetry: ``acquisitions`` (successful
        #: per-leaf lock grabs), ``retries`` (failed verification
        #: rounds before success or escalation), and ``escalations``
        #: (silent fallbacks to :meth:`exclusive` -- empty tree, or the
        #: retry budget exhausted under rebuild pressure).
        self.lock_stats = {"acquisitions": 0, "retries": 0, "escalations": 0}

    # ------------------------------------------------------------------
    # Locking protocol
    # ------------------------------------------------------------------

    def _descend(self, key: float):
        """Lock-free walk to the top-level leaf owning ``key``."""
        node = self._index.root
        while type(node) is InternalNode:
            node = node.children[node.child_index(key)]
        return node

    @contextmanager
    def locked(self, key: float):
        """Hold the stripe lock of the top-level leaf owning ``key``.

        Verified acquisition: descend lock-free, take the stripe the
        reached leaf hashes to, then re-descend and confirm the leaf
        still maps to the held stripe.  A concurrent tree rebuild
        between descent and acquisition fails the check; we release,
        back off, and retry a bounded number of times before escalating
        to :meth:`exclusive` (which cannot race with anything).

        Reentrant: the stripe locks are RLocks, so a caller already
        holding the stripe (e.g. :class:`repro.durability.DurableDILI`
        logging then applying) can nest operations on the same key.

        Every outcome is counted in :attr:`lock_stats`, so the
        escalation path -- previously silent -- is observable.
        """
        delay = _BACKOFF_INITIAL_S
        retries = 0
        for _ in range(_MAX_LOCK_RETRIES):
            leaf = self._descend(key)
            if leaf is None:  # empty tree: no leaf to lock
                break
            lock = self._locks[id(leaf) % len(self._locks)]
            with lock:
                current = self._descend(key)
                if (
                    current is not None
                    and self._locks[id(current) % len(self._locks)] is lock
                ):
                    with self._stats_lock:
                        self.lock_stats["acquisitions"] += 1
                        self.lock_stats["retries"] += retries
                    yield
                    return
            retries += 1
            time.sleep(delay)
            delay = min(delay * 2.0, _BACKOFF_MAX_S)
        with self._stats_lock:
            self.lock_stats["escalations"] += 1
            self.lock_stats["retries"] += retries
        with self.exclusive():
            yield

    def instrument_locks(self, wrap, index_proxy=None) -> None:
        """Hook point for :class:`repro.check.locks.LockSanitizer`.

        Maps every stripe lock and the global lock through ``wrap(lock,
        name)`` (which must return a lock-compatible object) and, when
        ``index_proxy`` is given, replaces the wrapped index with
        ``index_proxy(index)``.  :meth:`locked`'s verified acquisition
        compares lock objects by identity against ``self._locks``, so
        wrappers installed here participate in the protocol unchanged.
        The sanitizer keeps the originals and restores them on detach.
        """
        self._locks = [
            wrap(lock, f"stripe[{i}]") for i, lock in enumerate(self._locks)
        ]
        self._global = wrap(self._global, "global")
        if index_proxy is not None:
            self._index = index_proxy(self._index)

    @contextmanager
    def exclusive(self):
        """Hold the global lock and every stripe (rebuilds, scans,
        snapshots).

        Point operations hold at most one stripe and never block on
        another lock while doing so, so acquiring the stripes in index
        order cannot deadlock against them.
        """
        with self._global:
            acquired = 0
            try:
                for lock in self._locks:
                    lock.acquire()
                    acquired += 1
                yield
            finally:
                for lock in reversed(self._locks[:acquired]):
                    lock.release()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def bulk_load(self, keys: np.ndarray, values: list | None = None) -> None:
        """Build the index; excludes every concurrent operation."""
        with self.exclusive():
            self._index.bulk_load(keys, values)

    def get(self, key: float) -> object | None:
        """Point lookup under the owning leaf's lock."""
        if self._index.root is None:
            return None
        with self.locked(key):
            return self._index.get(key)

    def get_batch(self, keys: np.ndarray | list) -> list:
        """Vectorized multi-key lookup, exclusive of every writer.

        Batches cross leaf boundaries (and the first call after a write
        compiles the flat plan), so like scans they need the global lock
        plus every stripe rather than a single leaf's.
        """
        with self.exclusive():
            return self._index.get_batch(keys)

    def contains_batch(self, keys: np.ndarray | list) -> np.ndarray:
        """Vectorized membership test; exclusive like :meth:`get_batch`."""
        with self.exclusive():
            return self._index.contains_batch(keys)

    def count_range(self, lo: float, hi: float) -> int:
        """Count keys in ``[lo, hi)``, exclusive like other scans."""
        with self.exclusive():
            return self._index.count_range(lo, hi)

    def count_range_batch(
        self, los: np.ndarray | list, his: np.ndarray | list
    ) -> np.ndarray:
        """Vectorized range counts; exclusive like :meth:`get_batch`."""
        with self.exclusive():
            return self._index.count_range_batch(los, his)

    def insert(self, key: float, value: object) -> bool:
        """Insert under the owning leaf's lock (A.8 insertion protocol)."""
        with self.locked(key):
            return self._index.insert(key, value)

    def delete(self, key: float) -> bool:
        """Delete under the owning leaf's lock (A.8 deletion protocol)."""
        if self._index.root is None:
            return False
        with self.locked(key):
            return self._index.delete(key)

    def update(self, key: float, value: object) -> bool:
        """Replace an existing key's value under the owning leaf's lock."""
        if self._index.root is None:
            return False
        with self.locked(key):
            return self._index.update(key, value)

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        """Ordered scan, exclusive of every writer.

        Scans cross leaf boundaries while point writers hold only one
        stripe, so the global lock alone would not keep a mid-scan leaf
        mutation out; :meth:`exclusive` (global + every stripe) does.
        """
        with self.exclusive():
            return self._index.range_query(lo, hi)

    def items(self) -> list[Pair]:
        """Every pair in key order, as a consistent snapshot list.

        Exclusive for the same reason as :meth:`range_query`: holding
        only the global lock would let a stripe-locked point writer
        mutate a leaf mid-scan.
        """
        with self.exclusive():
            return list(self._index.items())

    def insert_batch(
        self, keys: np.ndarray | list, values: list | None = None
    ) -> np.ndarray:
        """Vectorized multi-key insert, exclusive of every other writer.

        A batch crosses top-level leaf boundaries (its keys group onto
        many leaves), so like scans it takes the global lock plus every
        stripe rather than a single leaf's.
        """
        with self.exclusive():
            return self._index.insert_batch(keys, values)

    def delete_batch(self, keys: np.ndarray | list) -> np.ndarray:
        """Vectorized multi-key delete; exclusive like :meth:`insert_batch`."""
        if self._index.root is None:
            return np.zeros(len(keys), dtype=bool)
        with self.exclusive():
            return self._index.delete_batch(keys)

    def update_batch(
        self, keys: np.ndarray | list, values: list
    ) -> np.ndarray:
        """Vectorized multi-key update; exclusive like :meth:`insert_batch`."""
        if self._index.root is None:
            return np.zeros(len(keys), dtype=bool)
        with self.exclusive():
            return self._index.update_batch(keys, values)

    def insert_many(self, pairs: Iterable[Pair]) -> int:
        """Insert pairs one by one; returns how many were new."""
        return sum(1 for k, v in pairs if self.insert(k, v))

    def bulk_insert(
        self, keys: np.ndarray | list, values: list | None = None, **kwargs
    ) -> int:
        """Batch insert; exclusive because it may rebuild the tree."""
        with self.exclusive():
            return self._index.bulk_insert(keys, values, **kwargs)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: float) -> bool:
        return self.get(key) is not None

    @property
    def index(self) -> DILI:
        """The wrapped single-threaded index (for stats/validation)."""
        return self._index
