"""Thread-safe DILI wrapper following the Appendix A.8 protocol.

The paper observes that DILI updates touch exactly one top-level leaf
subtree (internal nodes are immutable after bulk loading -- adjustments
rebuild a leaf's entry array in place), so B+Tree-style lock crabbing
degenerates to per-leaf locking.  This wrapper implements that: the
internal descent is lock-free, then the operation holds the lock of the
top leaf it reached.  Locks are striped so millions of leaves do not each
carry a lock object.

Lock-free descent admits one race: between reaching a leaf and
acquiring its stripe, a whole-tree rebuild (``bulk_load`` or a large
``bulk_insert``) can replace the leaf.  Acquisition therefore verifies:
after taking the stripe lock it re-descends and checks the reached leaf
still maps to the held stripe, retrying with exponential backoff (and
falling back to fully exclusive locking) when it does not.  Tree
rebuilds run under :meth:`exclusive`, which holds the global lock *and*
every stripe, so they can never overlap a verified per-leaf operation.

Batch reads are **lock-free**: writers maintain the compiled
:class:`~repro.core.flat.FlatPlan` as an immutable published version
(see :mod:`repro.core.epoch`), so ``get_batch`` / ``contains_batch`` /
``count_range`` / ``count_range_batch`` pin a reader epoch, grab the
published snapshot with one reference load, and descend without
touching a single lock -- a long batch read never blocks a writer and
is never blocked by one.  Each read answers from *some* published
version (snapshot semantics): a racing writer's mutation becomes
visible at its publication swap, and a writer's own thread always sees
its completed writes because every mutator republishes before
returning.  Only when no plan is published (empty tree, or a mutation
the copy-on-write tiers could not absorb) does a batch read fall back
to :meth:`exclusive` to recompile and republish.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterable

import numpy as np

from repro.core.dili import DILI, DiliConfig
from repro.core.epoch import PlanPublisher
from repro.core.nodes import InternalNode, Pair

# Verified lock acquisition retries before escalating to exclusive mode.
_MAX_LOCK_RETRIES = 8
_BACKOFF_INITIAL_S = 1e-6
_BACKOFF_MAX_S = 1e-3


class ConcurrentDILI:
    """A DILI safe for concurrent readers and writers.

    Point operations (get / insert / delete / update) serialize per
    top-level leaf via striped locks; operations on different leaves
    proceed in parallel.  Batch reads run lock-free against the
    epoch-published flat plan (see the module docstring).  Scans
    (``range_query`` / ``items``) cross leaf boundaries *through the
    live tree*, so they run under :meth:`exclusive` (global + every
    stripe) -- as do bulk loads and rebuilds -- which keeps every
    point writer out for the duration.

    Args:
        config: Forwarded to the underlying :class:`DILI`.
        stripes: Number of leaf locks; must be positive.
        index: Adopt an existing :class:`DILI` (e.g. one rebuilt by
            crash recovery) instead of creating a fresh empty one;
            ``config`` is ignored when given.
    """

    def __init__(
        self,
        config: DiliConfig | None = None,
        stripes: int = 256,
        *,
        index: DILI | None = None,
    ) -> None:
        if stripes <= 0:
            raise ValueError("stripes must be positive")
        self._index = index if index is not None else DILI(config)
        self._locks = [threading.RLock() for _ in range(stripes)]
        self._global = threading.RLock()
        self._stats_lock = threading.Lock()
        # Verified-acquisition telemetry; merged with the publisher's
        # epoch counters by the :attr:`lock_stats` property.
        self._base_stats = {"acquisitions": 0, "retries": 0, "escalations": 0}
        #: Epoch-published plan slot: batch readers pin and snapshot it
        #: lock-free; every mutator republishes the maintained version
        #: (or unpublishes on invalidation) before returning.
        self._published = PlanPublisher()
        #: LockSanitizer hook: called with the pinned plan on every
        #: lock-free batch read (None when no sanitizer is attached).
        self._plan_read_guard = None
        if index is not None and index.peek_plan() is not None:
            # Adopting an index with a live maintained plan (e.g. crash
            # recovery warmed it): publish so reads start lock-free.
            self._published.publish(index.peek_plan())

    @property
    def lock_stats(self) -> dict:
        """Locking + publication telemetry, one flat dict.

        ``acquisitions`` / ``retries`` / ``escalations`` count the
        verified stripe-lock protocol (see :meth:`locked`);
        ``plan_publishes`` / ``plans_retired`` / ``plans_reclaimed`` /
        ``plans_limbo`` / ``epoch_pins`` expose publication churn and
        reader pinning on the lock-free batch-read path.
        """
        with self._stats_lock:
            out = dict(self._base_stats)
        out.update(self._published.stats())
        return out

    # ------------------------------------------------------------------
    # Locking protocol
    # ------------------------------------------------------------------

    def _descend(self, key: float):
        """Lock-free walk to the top-level leaf owning ``key``."""
        node = self._index.root
        while type(node) is InternalNode:
            node = node.children[node.child_index(key)]
        return node

    @contextmanager
    def locked(self, key: float):
        """Hold the stripe lock of the top-level leaf owning ``key``.

        Verified acquisition: descend lock-free, take the stripe the
        reached leaf hashes to, then re-descend and confirm the leaf
        still maps to the held stripe.  A concurrent tree rebuild
        between descent and acquisition fails the check; we release,
        back off, and retry a bounded number of times before escalating
        to :meth:`exclusive` (which cannot race with anything).

        Reentrant: the stripe locks are RLocks, so a caller already
        holding the stripe (e.g. :class:`repro.durability.DurableDILI`
        logging then applying) can nest operations on the same key.

        Every outcome is counted in :attr:`lock_stats`, so the
        escalation path -- previously silent -- is observable.
        """
        delay = _BACKOFF_INITIAL_S
        retries = 0
        for _ in range(_MAX_LOCK_RETRIES):
            leaf = self._descend(key)
            if leaf is None:  # empty tree: no leaf to lock
                break
            lock = self._locks[id(leaf) % len(self._locks)]
            with lock:
                current = self._descend(key)
                if (
                    current is not None
                    and self._locks[id(current) % len(self._locks)] is lock
                ):
                    with self._stats_lock:
                        self._base_stats["acquisitions"] += 1
                        self._base_stats["retries"] += retries
                    yield
                    return
            retries += 1
            time.sleep(delay)
            delay = min(delay * 2.0, _BACKOFF_MAX_S)
        with self._stats_lock:
            self._base_stats["escalations"] += 1
            self._base_stats["retries"] += retries
        with self.exclusive():
            yield

    def instrument_locks(self, wrap, index_proxy=None) -> None:
        """Hook point for :class:`repro.check.locks.LockSanitizer`.

        Maps every stripe lock and the global lock through ``wrap(lock,
        name)`` (which must return a lock-compatible object) and, when
        ``index_proxy`` is given, replaces the wrapped index with
        ``index_proxy(index)``.  :meth:`locked`'s verified acquisition
        compares lock objects by identity against ``self._locks``, so
        wrappers installed here participate in the protocol unchanged.
        The sanitizer keeps the originals and restores them on detach.
        """
        self._locks = [
            wrap(lock, f"stripe[{i}]") for i, lock in enumerate(self._locks)
        ]
        self._global = wrap(self._global, "global")
        if index_proxy is not None:
            self._index = index_proxy(self._index)

    @contextmanager
    def exclusive(self):
        """Hold the global lock and every stripe (rebuilds, scans,
        snapshots).

        Point operations hold at most one stripe and never block on
        another lock while doing so, so acquiring the stripes in index
        order cannot deadlock against them.
        """
        with self._global:
            acquired = 0
            try:
                for lock in self._locks:
                    lock.acquire()
                    acquired += 1
                yield
            finally:
                for lock in reversed(self._locks[:acquired]):
                    lock.release()

    # ------------------------------------------------------------------
    # Epoch-published plan (lock-free batch reads)
    # ------------------------------------------------------------------

    @contextmanager
    def _pinned_plan(self):
        """Pin a reader epoch and yield the published plan snapshot.

        Yields ``None`` when no plan is published (empty tree, or plan
        invalidated by an unpatchable mutation); the caller then takes
        the :meth:`exclusive` fallback, which recompiles and
        republishes.  The pin -- not a lock -- keeps the snapshot out
        of reclamation until the descent finishes.
        """
        with self._published.pinned() as plan:
            if plan is not None:
                guard = self._plan_read_guard
                if guard is not None:
                    guard(plan)
            yield plan

    def _republish(self) -> None:
        """Publish the index's maintained plan version (if any).

        Called by every mutator while it still holds its stripe or
        exclusive locks, so the calling thread's subsequent reads see
        its own writes.  Racing republishes are safe: versions are
        assigned in tree-mutation order under ``DILI._plan_mutex`` and
        :meth:`~repro.core.epoch.PlanPublisher.publish` rejects stale
        ones, so the slot converges on the newest tree state.
        """
        plan = self._index.peek_plan()
        if plan is None:
            self._published.unpublish()
        else:
            self._published.publish(plan)

    @property
    def published_plan_version(self) -> int | None:
        """Version of the currently published plan (None if none)."""
        plan = self._published.load()
        return None if plan is None else plan.version

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def bulk_load(self, keys: np.ndarray, values: list | None = None) -> None:
        """Build the index; excludes every concurrent operation."""
        with self.exclusive():
            self._index.bulk_load(keys, values)
            self._republish()

    def get(self, key: float) -> object | None:
        """Point lookup under the owning leaf's lock."""
        if self._index.root is None:
            return None
        with self.locked(key):
            return self._index.get(key)

    def get_batch(self, keys: np.ndarray | list) -> list:
        """Vectorized multi-key lookup, lock-free.

        Descends the epoch-pinned published plan without taking any
        lock; falls back to :meth:`exclusive` (compile + republish)
        only when no plan is published.  Answers come from *some*
        published version: a batch racing a writer sees the tree state
        of its snapshot, never a torn mix.
        """
        with self._pinned_plan() as plan:
            if plan is not None:
                arr = np.asarray(keys, dtype=np.float64)
                if arr.ndim != 1:
                    raise ValueError("keys must be one-dimensional")
                out, _ = plan.lookup_batch(arr)
                return plan.gather_values(out)
        with self.exclusive():
            out = self._index.get_batch(keys)
            self._republish()
            return out

    def contains_batch(self, keys: np.ndarray | list) -> np.ndarray:
        """Vectorized membership test; lock-free like :meth:`get_batch`."""
        with self._pinned_plan() as plan:
            if plan is not None:
                arr = np.asarray(keys, dtype=np.float64)
                if arr.ndim != 1:
                    raise ValueError("keys must be one-dimensional")
                return plan.contains_batch(arr)
        with self.exclusive():
            out = self._index.contains_batch(keys)
            self._republish()
            return out

    def count_range(self, lo: float, hi: float) -> int:
        """Count keys in ``[lo, hi)``; lock-free like :meth:`get_batch`.

        Two binary searches over the published plan's sorted key
        array -- no pairs are materialized and no lock is taken.
        """
        with self._pinned_plan() as plan:
            if plan is not None:
                return plan.count_range(float(lo), float(hi))
        with self.exclusive():
            out = self._index.count_range(lo, hi)
            self._republish()
            return out

    def count_range_batch(
        self, los: np.ndarray | list, his: np.ndarray | list
    ) -> np.ndarray:
        """Vectorized range counts; lock-free like :meth:`get_batch`."""
        with self._pinned_plan() as plan:
            if plan is not None:
                lo_arr = np.asarray(los, dtype=np.float64)
                hi_arr = np.asarray(his, dtype=np.float64)
                if lo_arr.shape != hi_arr.shape:
                    raise ValueError("los and his must have the same shape")
                return plan.count_range_batch(lo_arr, hi_arr)
        with self.exclusive():
            out = self._index.count_range_batch(los, his)
            self._republish()
            return out

    def insert(self, key: float, value: object) -> bool:
        """Insert under the owning leaf's lock (A.8 insertion protocol).

        Like every mutator, republishes the maintained plan version
        before releasing the lock, so the new pair is visible to
        lock-free batch readers (and to this thread's next read).
        """
        with self.locked(key):
            out = self._index.insert(key, value)
            self._republish()
            return out

    def delete(self, key: float) -> bool:
        """Delete under the owning leaf's lock (A.8 deletion protocol)."""
        if self._index.root is None:
            return False
        with self.locked(key):
            out = self._index.delete(key)
            self._republish()
            return out

    def update(self, key: float, value: object) -> bool:
        """Replace an existing key's value under the owning leaf's lock."""
        if self._index.root is None:
            return False
        with self.locked(key):
            out = self._index.update(key, value)
            self._republish()
            return out

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        """Ordered scan, exclusive of every writer.

        Scans cross leaf boundaries while point writers hold only one
        stripe, so the global lock alone would not keep a mid-scan leaf
        mutation out; :meth:`exclusive` (global + every stripe) does.
        """
        with self.exclusive():
            return self._index.range_query(lo, hi)

    def items(self) -> list[Pair]:
        """Every pair in key order, as a consistent snapshot list.

        Exclusive for the same reason as :meth:`range_query`: holding
        only the global lock would let a stripe-locked point writer
        mutate a leaf mid-scan.
        """
        with self.exclusive():
            return list(self._index.items())

    def insert_batch(
        self, keys: np.ndarray | list, values: list | None = None
    ) -> np.ndarray:
        """Vectorized multi-key insert, exclusive of every other writer.

        A batch crosses top-level leaf boundaries (its keys group onto
        many leaves), so like scans it takes the global lock plus every
        stripe rather than a single leaf's.
        """
        with self.exclusive():
            out = self._index.insert_batch(keys, values)
            self._republish()
            return out

    def delete_batch(self, keys: np.ndarray | list) -> np.ndarray:
        """Vectorized multi-key delete; exclusive like :meth:`insert_batch`."""
        if self._index.root is None:
            return np.zeros(len(keys), dtype=bool)
        with self.exclusive():
            out = self._index.delete_batch(keys)
            self._republish()
            return out

    def update_batch(
        self, keys: np.ndarray | list, values: list
    ) -> np.ndarray:
        """Vectorized multi-key update; exclusive like :meth:`insert_batch`."""
        if self._index.root is None:
            return np.zeros(len(keys), dtype=bool)
        with self.exclusive():
            out = self._index.update_batch(keys, values)
            self._republish()
            return out

    def insert_many(self, pairs: Iterable[Pair]) -> int:
        """Insert pairs one by one; returns how many were new."""
        return sum(1 for k, v in pairs if self.insert(k, v))

    def bulk_insert(
        self, keys: np.ndarray | list, values: list | None = None, **kwargs
    ) -> int:
        """Batch insert; exclusive because it may rebuild the tree."""
        with self.exclusive():
            out = self._index.bulk_insert(keys, values, **kwargs)
            self._republish()
            return out

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: float) -> bool:
        return self.get(key) is not None

    @property
    def index(self) -> DILI:
        """The wrapped single-threaded index (for stats/validation)."""
        return self._index
