"""Thread-safe DILI wrapper following the Appendix A.8 protocol.

The paper observes that DILI updates touch exactly one top-level leaf
subtree (internal nodes are immutable after bulk loading -- adjustments
rebuild a leaf's entry array in place), so B+Tree-style lock crabbing
degenerates to per-leaf locking.  This wrapper implements that: the
internal descent is lock-free, then the operation holds the lock of the
top leaf it reached.  Locks are striped so millions of leaves do not each
carry a lock object.
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from repro.core.dili import DILI, DiliConfig
from repro.core.nodes import InternalNode, Pair


class ConcurrentDILI:
    """A DILI safe for concurrent readers and writers.

    Point operations (get / insert / delete) serialize per top-level
    leaf via striped locks; operations on different leaves proceed in
    parallel.  Range queries take a coarse global lock because they
    cross leaf boundaries.

    Args:
        config: Forwarded to the underlying :class:`DILI`.
        stripes: Number of leaf locks; must be positive.
    """

    def __init__(
        self, config: DiliConfig | None = None, stripes: int = 256
    ) -> None:
        if stripes <= 0:
            raise ValueError("stripes must be positive")
        self._index = DILI(config)
        self._locks = [threading.RLock() for _ in range(stripes)]
        self._global = threading.RLock()

    def bulk_load(self, keys: np.ndarray, values: list | None = None) -> None:
        """Build the index; must not race with other operations."""
        with self._global:
            self._index.bulk_load(keys, values)

    def _leaf_lock(self, key: float) -> threading.RLock:
        node = self._index.root
        while type(node) is InternalNode:
            node = node.children[node.child_index(key)]
        return self._locks[id(node) % len(self._locks)]

    def get(self, key: float) -> object | None:
        """Point lookup under the owning leaf's lock."""
        if self._index.root is None:
            return None
        with self._leaf_lock(key):
            return self._index.get(key)

    def insert(self, key: float, value: object) -> bool:
        """Insert under the owning leaf's lock (A.8 insertion protocol)."""
        if self._index.root is None:
            with self._global:
                return self._index.insert(key, value)
        with self._leaf_lock(key):
            return self._index.insert(key, value)

    def delete(self, key: float) -> bool:
        """Delete under the owning leaf's lock (A.8 deletion protocol)."""
        if self._index.root is None:
            return False
        with self._leaf_lock(key):
            return self._index.delete(key)

    def range_query(self, lo: float, hi: float) -> list[Pair]:
        """Ordered scan under the coarse lock (crosses leaf boundaries)."""
        with self._global:
            return self._index.range_query(lo, hi)

    def insert_many(self, pairs: Iterable[Pair]) -> int:
        """Insert pairs one by one; returns how many were new."""
        return sum(1 for k, v in pairs if self.insert(k, v))

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: float) -> bool:
        return self.get(key) is not None

    @property
    def index(self) -> DILI:
        """The wrapped single-threaded index (for stats/validation)."""
        return self._index
