"""Named crash points for fault-injection testing.

A durability layer is only as good as the crashes it has survived.  The
WAL and snapshot writers call :meth:`FaultInjector.fire` (or
:meth:`FaultInjector.torn` at mid-write points) at every instant where
a real kill-9 could interrupt them; tests arm an injector at one of
those points and assert that recovery still yields a validating index
containing exactly the acknowledged operations.

A fired point raises :class:`SimulatedCrash`, which the test catches in
place of the process dying.  "Torn" points additionally write a prefix
of the pending bytes before raising, simulating a partial page write.

The default injector on every component is inert (never armed), so
production paths pay one dict lookup per crash point and nothing else.
"""

from __future__ import annotations

import os

# Catalogue of every crash point the durability layer exposes, in the
# order they occur along the write path.  Tests iterate this tuple so a
# newly added point is automatically covered by the crash-storm suite.
CRASH_POINTS: tuple[str, ...] = (
    "before_wal_append",     # op not yet logged: must vanish on recovery
    "mid_wal_append",        # torn record: replay must stop before it
    "after_wal_append",      # logged but not applied: replay restores it
    "before_snapshot_write", # snapshot skipped entirely; WAL intact
    "mid_snapshot_write",    # torn temp file: must never be adopted
    "before_rename",         # complete temp file, old snapshot still live
    "after_rename",          # new snapshot live, WAL not yet truncated
    "before_wal_truncate",   # same visible state as after_rename
    "after_wal_truncate",    # snapshot + empty WAL, fully consistent
)

# Crash points along the plan-store publish path (repro.planstore).
# Kept separate from CRASH_POINTS so the durability crash-storm suite,
# which drives WAL/snapshot traffic only, keeps firing every point it
# arms; the plan-store sweep iterates this tuple the same way.
PLAN_CRASH_POINTS: tuple[str, ...] = (
    "before_plan_write",   # publish skipped entirely; old generation live
    "mid_plan_write",      # torn temp file: must never be adopted
    "before_plan_rename",  # complete temp file, not yet visible
    "after_plan_rename",   # new generation durable and visible
    "before_delta_write",  # delta skipped; chain ends at previous file
    "mid_delta_write",     # torn delta temp file: must never be adopted
    "after_delta_write",   # delta durable and visible
)

ALL_CRASH_POINTS: tuple[str, ...] = CRASH_POINTS + PLAN_CRASH_POINTS

# Points that tear (partially write) rather than crash before/after.
TORN_POINTS: frozenset[str] = frozenset(
    {"mid_wal_append", "mid_snapshot_write", "mid_plan_write",
     "mid_delta_write"}
)


class SimulatedCrash(RuntimeError):
    """Raised in place of the process dying at an armed crash point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


class FaultInjector:
    """Arms named crash points; inert unless a test arms one.

    Arming is one-shot: once a point fires it disarms itself, so
    recovery code running after the simulated crash does not trip over
    the same mine.  ``skip`` delays the trigger past the first ``skip``
    hits, letting tests crash on the N-th operation instead of the
    first.
    """

    def __init__(self) -> None:
        self._armed: dict[str, dict] = {}
        self.fired: list[str] = []

    def arm(
        self, point: str, *, skip: int = 0, partial: float = 0.5
    ) -> None:
        """Arm ``point`` to crash on its ``skip+1``-th hit.

        Args:
            point: One of :data:`ALL_CRASH_POINTS`.
            skip: Number of hits to let pass before crashing.
            partial: For torn points, the fraction of the pending bytes
                written before the crash (clamped to at least 1 byte).
        """
        if point not in ALL_CRASH_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        if skip < 0:
            raise ValueError("skip must be >= 0")
        if not 0.0 <= partial <= 1.0:
            raise ValueError("partial must be in [0, 1]")
        self._armed[point] = {"skip": skip, "partial": partial}

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or every point when ``point`` is None."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def is_armed(self, point: str) -> bool:
        return point in self._armed

    def fire(self, point: str) -> None:
        """Crash here if armed (and past its skip count)."""
        state = self._armed.get(point)
        if state is None:
            return
        if state["skip"] > 0:
            state["skip"] -= 1
            return
        del self._armed[point]
        self.fired.append(point)
        raise SimulatedCrash(point)

    def torn(self, point: str) -> float | None:
        """Partial-write fraction if ``point`` should tear now, else None.

        The caller is expected to write that fraction of its pending
        bytes, flush them, and then raise :class:`SimulatedCrash` --
        use :meth:`tear_and_crash` to do all three.
        """
        state = self._armed.get(point)
        if state is None:
            return None
        if state["skip"] > 0:
            state["skip"] -= 1
            return None
        del self._armed[point]
        self.fired.append(point)
        return state["partial"]

    def tear_and_crash(self, point: str, fh, data: bytes, fraction: float):
        """Write a *proper* prefix of ``data`` to ``fh``, durably, then crash.

        Simulates a torn write: at least one byte and at most
        ``len(data) - 1`` bytes land on disk, then the "process" dies.
        Data of one byte or less cannot tear, so nothing is written --
        the crash must never persist the complete record.
        """
        if len(data) > 1:
            cut = max(1, min(len(data) - 1, int(len(data) * fraction)))
            fh.write(data[:cut])
            fh.flush()
            os.fsync(fh.fileno())
        raise SimulatedCrash(point)


# Shared inert injector used when a component is not handed one.
NULL_FAULTS = FaultInjector()
