"""Crash recovery: snapshot + WAL tail -> a validated index.

The protocol (docs/durability.md):

1. Load ``snapshot.dili`` if present, verifying magic/version/CRC.  A
   corrupt snapshot raises -- recovery refuses to guess.  A missing
   snapshot means the index started empty (or crashed before its first
   checkpoint) and the WAL alone rebuilds it.
2. Scan ``wal.log``, stopping at the first torn or corrupt record, and
   replay every record whose seqno is greater than the snapshot's
   ``last_seqno`` (records at or below it are already folded into the
   snapshot -- a crash between snapshot rename and WAL truncation
   leaves such records behind, and replaying them twice would corrupt
   update/delete semantics for no benefit).
3. Run ``DILI.validate()`` on the result, so recovery never hands back
   a structurally broken index.

Replay applies operations through the public ``DILI`` methods, which
are deterministic, so the recovered index equals the live index as of
the last durable record.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass

from repro.core.dili import DILI, DiliConfig
from repro.durability.snapshot import read_snapshot
from repro.durability.wal import (
    OP_BULK_INSERT,
    OP_DELETE,
    OP_DELETE_BATCH,
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_UPDATE,
    OP_UPDATE_BATCH,
    WalRecord,
    scan_wal,
)

SNAPSHOT_NAME = "snapshot.dili"
WAL_NAME = "wal.log"


@dataclass(frozen=True)
class RecoveryResult:
    """What :func:`recover` reconstructed and how.

    Attributes:
        index: The recovered (and validated) index.
        snapshot_seqno: ``last_seqno`` of the snapshot used (0 if none).
        replayed: WAL records applied on top of the snapshot.
        skipped: WAL records already covered by the snapshot.
        failed: WAL records whose replay raised and was skipped.  The
            live call raised the same error after logging, so the
            operation never took effect and was not acknowledged as
            applied; dropping it reproduces the pre-crash state.
        wal_truncated: True when the WAL had a torn/corrupt tail.
        wal_reason: Why the WAL scan stopped early (None when clean).
        next_seqno: First sequence number a reopened log should use.
        wal_valid_offset: Byte offset of the end of the valid WAL
            prefix (where a reopened log truncates the torn tail).
    """

    index: DILI
    snapshot_seqno: int
    replayed: int
    skipped: int
    wal_truncated: bool
    wal_reason: str | None
    next_seqno: int
    wal_valid_offset: int
    failed: int = 0


def apply_record(index: DILI, record: WalRecord) -> None:
    """Re-apply one logged operation to ``index``."""
    args = pickle.loads(record.payload)
    if record.opcode == OP_INSERT:
        index.insert(args[0], args[1])
    elif record.opcode == OP_DELETE:
        index.delete(args[0])
    elif record.opcode == OP_UPDATE:
        index.update(args[0], args[1])
    elif record.opcode == OP_BULK_INSERT:
        index.bulk_insert(args[0], args[1])
    elif record.opcode == OP_INSERT_BATCH:
        index.insert_batch(args[0], args[1])
    elif record.opcode == OP_DELETE_BATCH:
        index.delete_batch(args[0])
    elif record.opcode == OP_UPDATE_BATCH:
        index.update_batch(args[0], args[1])
    else:  # scan_wal only yields known opcodes; guard anyway
        raise ValueError(f"unknown WAL opcode {record.opcode}")


def recover(
    dirpath,
    *,
    config: DiliConfig | None = None,
    validate: bool = True,
) -> RecoveryResult:
    """Rebuild the index persisted under ``dirpath``.

    Read-only: neither the snapshot nor the WAL is modified, so
    recovery can be retried (or inspected) safely.  Opening a
    :class:`~repro.durability.durable.DurableDILI` on the directory is
    what trims the torn WAL tail.

    Args:
        dirpath: Directory holding ``snapshot.dili`` / ``wal.log``.
        config: Config for a fresh index when no snapshot exists.
        validate: Run ``validate()`` on the recovered index.

    Raises:
        SnapshotError: The snapshot exists but is corrupt.
        AssertionError: The recovered index fails validation.
    """
    dirpath = os.fspath(dirpath)
    snap_path = os.path.join(dirpath, SNAPSHOT_NAME)
    snapshot_seqno = 0
    if os.path.exists(snap_path):
        index, snapshot_seqno = read_snapshot(snap_path)
        if not isinstance(index, DILI):
            from repro.durability.snapshot import SnapshotError

            raise SnapshotError(
                f"{snap_path} does not contain a DILI index"
            )
    else:
        index = DILI(config)
    scan = scan_wal(os.path.join(dirpath, WAL_NAME))
    replayed = skipped = failed = 0
    for record in scan.records:
        if record.seqno <= snapshot_seqno:
            skipped += 1
            continue
        # DurableDILI validates operations before logging them, so a
        # record that fails to apply is a logged-but-rejected op: the
        # live call raised identically after the append, the op never
        # took effect, and aborting recovery on it would make the
        # directory permanently unopenable.  Skip it and keep replaying
        # the (possibly acknowledged) records behind it.
        try:
            apply_record(index, record)
        except Exception:
            failed += 1
            continue
        replayed += 1
    if validate:
        index.validate()
    return RecoveryResult(
        index=index,
        snapshot_seqno=snapshot_seqno,
        replayed=replayed,
        skipped=skipped,
        wal_truncated=scan.truncated,
        wal_reason=scan.reason,
        next_seqno=max(snapshot_seqno, scan.last_seqno) + 1,
        wal_valid_offset=scan.valid_offset,
        failed=failed,
    )
