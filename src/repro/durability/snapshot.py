"""Atomic, checksummed full-index snapshots.

On-disk layout (little-endian, see docs/durability.md)::

    8s  magic "DILISNP1"
    u16 format version (currently 1)
    u64 last_seqno    -- WAL records <= this are already folded in
    u64 payload_len
    u32 payload_crc32
    ... payload: pickled DILI index, payload_len bytes

Writes are atomic: the header and payload go to a temp file in the
same directory, the file is fsynced, then renamed over the target with
``os.replace`` and the directory fsynced.  A crash at any instant
leaves either the complete old snapshot or the complete new one --
readers verify the magic, version, length, and CRC before unpickling,
so a torn temp file (or any half-written state) is rejected with
:class:`SnapshotError` rather than deserialized wrong.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

from repro.durability.faultpoints import NULL_FAULTS, FaultInjector

SNAPSHOT_MAGIC = b"DILISNP1"
SNAPSHOT_VERSION = 1

_HEADER = struct.Struct("<HQQI")  # version, last_seqno, payload_len, crc32
HEADER_SIZE = len(SNAPSHOT_MAGIC) + _HEADER.size


class SnapshotError(ValueError):
    """A snapshot file is missing pieces, corrupt, or not a snapshot."""


def write_snapshot(
    index,
    path,
    *,
    last_seqno: int = 0,
    faults: FaultInjector | None = None,
) -> int:
    """Atomically write ``index`` to ``path``; returns bytes written.

    Args:
        index: The DILI (or any picklable index) to persist.
        path: Final snapshot location; replaced atomically.
        last_seqno: Highest WAL sequence number already applied to
            ``index``.  Recovery replays only records past it.
        faults: Crash-point injector (tests only).
    """
    path = os.fspath(path)
    faults = faults if faults is not None else NULL_FAULTS
    payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    header = SNAPSHOT_MAGIC + _HEADER.pack(
        SNAPSHOT_VERSION, last_seqno, len(payload), zlib.crc32(payload)
    )
    tmp_path = path + ".tmp"
    faults.fire("before_snapshot_write")
    with open(tmp_path, "wb") as fh:
        fh.write(header)
        fraction = faults.torn("mid_snapshot_write")
        if fraction is not None:
            faults.tear_and_crash("mid_snapshot_write", fh, payload, fraction)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    faults.fire("before_rename")
    os.replace(tmp_path, path)
    _fsync_dir(os.path.dirname(path))
    faults.fire("after_rename")
    return len(header) + len(payload)


def read_snapshot_header(path) -> tuple[int, int, int, int]:
    """Parse and sanity-check a snapshot header without unpickling.

    Returns ``(version, last_seqno, payload_len, payload_crc)``.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        raw = fh.read(HEADER_SIZE)
    if len(raw) < HEADER_SIZE:
        raise SnapshotError(f"{path}: truncated snapshot header")
    if raw[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path} is not a DILI snapshot")
    version, last_seqno, payload_len, crc = _HEADER.unpack(
        raw[len(SNAPSHOT_MAGIC):]
    )
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version {version}"
        )
    return version, last_seqno, payload_len, crc


def read_snapshot(path):
    """Load a snapshot; returns ``(index, last_seqno)``.

    Raises :class:`SnapshotError` (a ``ValueError``) when the file is
    truncated, its checksum does not match, or it is not a snapshot at
    all -- never a pickle traceback and never a half-broken index.
    """
    path = os.fspath(path)
    _, last_seqno, payload_len, crc = read_snapshot_header(path)
    with open(path, "rb") as fh:
        fh.seek(HEADER_SIZE)
        payload = fh.read(payload_len + 1)
    if len(payload) < payload_len:
        raise SnapshotError(
            f"{path}: truncated snapshot payload "
            f"({len(payload)} of {payload_len} bytes)"
        )
    if len(payload) > payload_len:
        raise SnapshotError(f"{path}: trailing garbage after payload")
    if zlib.crc32(payload) != crc:
        raise SnapshotError(f"{path}: snapshot payload checksum mismatch")
    try:
        index = pickle.loads(payload)
    except Exception as exc:  # checksummed bytes that still fail: a bug
        raise SnapshotError(f"{path}: snapshot payload unpicklable: {exc}")
    return index, last_seqno


def _fsync_dir(dirpath: str) -> None:
    fd = os.open(dirpath or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
