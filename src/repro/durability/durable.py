"""``DurableDILI``: write-ahead logged, snapshot-checkpointed DILI.

The wrapper keeps the paper's index untouched and adds the durability
contract around it:

* every mutation (``insert`` / ``delete`` / ``update`` /
  ``bulk_insert``, and the vectorized ``insert_batch`` /
  ``delete_batch`` / ``update_batch``, each logged as a single framed
  batch record) is appended to the WAL -- CRC-framed and, by
  default, fsynced -- *before* it is applied in memory.  An operation
  is **acknowledged** when the call returns; by then its record is
  durable, so an acknowledged write can never be lost.  An operation
  interrupted mid-call may or may not have reached the log and is
  recovered all-or-nothing.
* :meth:`snapshot` checkpoints the full index atomically (temp +
  fsync + rename) and then truncates the WAL, bounding recovery time.
* opening a directory re-runs :func:`repro.durability.recovery.recover`
  (snapshot + WAL-tail replay + ``validate()``) and trims any torn WAL
  tail before accepting new appends.

Composition: with ``concurrent=True`` the inner index is a
:class:`~repro.core.concurrent.ConcurrentDILI` and each log+apply pair
runs under the owning leaf's verified stripe lock, so per-key WAL order
matches per-key apply order; operations on different keys commute, so
global log order vs. apply order does not matter for replay.

Reads are never logged and -- with ``concurrent=True`` -- the batch
reads (``get_batch`` / ``contains_batch`` / ``count_range`` /
``count_range_batch``) are also **lock-free**: they descend the
epoch-published flat plan (see :mod:`repro.core.epoch`), so a long
batch read neither blocks a concurrent logged write nor waits for one.
The write path is unchanged: WAL append and apply still run under the
stripe/exclusive protocol, and each mutator republishes the maintained
plan before acknowledging, so an acknowledged write is visible to
every subsequent batch read.
"""

from __future__ import annotations

import os
import pickle
import threading

import numpy as np

from repro.core.concurrent import ConcurrentDILI
from repro.core.dili import DILI, DiliConfig
from repro.durability.faultpoints import NULL_FAULTS, FaultInjector
from repro.durability.recovery import (
    SNAPSHOT_NAME,
    WAL_NAME,
    RecoveryResult,
    recover,
)
from repro.durability.snapshot import write_snapshot
from repro.durability.wal import (
    OP_BULK_INSERT,
    OP_DELETE,
    OP_DELETE_BATCH,
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_UPDATE,
    OP_UPDATE_BATCH,
    WriteAheadLog,
)


def _encode(*args) -> bytes:
    return pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)


class DurableDILI:
    """A DILI whose acknowledged writes survive kill-9.

    Typical use::

        index = DurableDILI("/var/lib/dili")   # recovers if state exists
        index.bulk_load(keys, values)          # checkpointed immediately
        index.insert(k, v)                     # durable once it returns
        index.snapshot()                       # truncate the WAL
        index.close()

    Args:
        dirpath: State directory (created if missing) holding
            ``snapshot.dili`` and ``wal.log``.
        config: Config for a fresh index when no snapshot exists yet.
        concurrent: Wrap the index in :class:`ConcurrentDILI` and
            serialize each log+apply under the owning leaf's lock.
        stripes: Stripe count for the concurrent wrapper.
        sync: fsync the WAL on every append (the durability guarantee;
            turn off only for benchmarks that batch with
            :meth:`sync_wal`).
        validate_on_open: Run ``validate()`` after recovery.
        faults: Crash-point injector (tests only).
    """

    def __init__(
        self,
        dirpath,
        *,
        config: DiliConfig | None = None,
        concurrent: bool = False,
        stripes: int = 256,
        sync: bool = True,
        validate_on_open: bool = True,
        faults: FaultInjector | None = None,
    ) -> None:
        self.dirpath = os.fspath(dirpath)
        os.makedirs(self.dirpath, exist_ok=True)
        self._faults = faults if faults is not None else NULL_FAULTS
        self.recovery: RecoveryResult = recover(
            self.dirpath, config=config, validate=validate_on_open
        )
        self._snap_path = os.path.join(self.dirpath, SNAPSHOT_NAME)
        self.wal = WriteAheadLog(
            os.path.join(self.dirpath, WAL_NAME),
            sync=sync,
            min_next_seqno=self.recovery.next_seqno,
            faults=self._faults,
        )
        self._concurrent = concurrent
        if concurrent:
            self._index: DILI | ConcurrentDILI = ConcurrentDILI(
                stripes=stripes, index=self.recovery.index
            )
            self._plain = self.recovery.index
        else:
            self._index = self.recovery.index
            self._plain = self.recovery.index
            # Log+apply for a plain index still needs mutual exclusion
            # against a concurrent snapshot() from another thread.
            self._plain_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lock plumbing
    # ------------------------------------------------------------------

    def _op_lock(self, key: float):
        if self._concurrent:
            return self._index.locked(key)
        return self._plain_lock

    def _exclusive(self):
        if self._concurrent:
            return self._index.exclusive()
        return self._plain_lock

    # ------------------------------------------------------------------
    # Logged mutations (WAL first, then apply, then acknowledge)
    # ------------------------------------------------------------------

    def insert(self, key: float, value: object) -> bool:
        key = float(key)
        with self._op_lock(key):
            self.wal.append(OP_INSERT, _encode(key, value))
            return self._index.insert(key, value)

    def delete(self, key: float) -> bool:
        key = float(key)
        with self._op_lock(key):
            self.wal.append(OP_DELETE, _encode(key))
            return self._index.delete(key)

    def update(self, key: float, value: object) -> bool:
        key = float(key)
        with self._op_lock(key):
            self.wal.append(OP_UPDATE, _encode(key, value))
            return self._index.update(key, value)

    def insert_batch(
        self, keys: np.ndarray | list, values: list | None = None
    ) -> np.ndarray:
        """Vectorized insert, logged as one framed batch record.

        The whole batch is one WAL append (one frame, one fsync) and is
        acknowledged atomically: after a crash either every operation
        of the batch replays or none does.
        """
        keys = self._check_batch_keys(keys)
        if values is not None and len(values) != len(keys):
            raise ValueError("values must match keys in length")
        with self._exclusive():
            self.wal.append(OP_INSERT_BATCH, _encode(keys.tolist(), values))
            return self._index.insert_batch(keys, values)

    def delete_batch(self, keys: np.ndarray | list) -> np.ndarray:
        """Vectorized delete, logged as one framed batch record."""
        keys = self._check_batch_keys(keys)
        with self._exclusive():
            self.wal.append(OP_DELETE_BATCH, _encode(keys.tolist()))
            return self._index.delete_batch(keys)

    def update_batch(
        self, keys: np.ndarray | list, values: list
    ) -> np.ndarray:
        """Vectorized value update, logged as one framed batch record."""
        keys = self._check_batch_keys(keys)
        if len(values) != len(keys):
            raise ValueError("values must match keys in length")
        with self._exclusive():
            self.wal.append(OP_UPDATE_BATCH, _encode(keys.tolist(), values))
            return self._index.update_batch(keys, values)

    @staticmethod
    def _check_batch_keys(keys) -> np.ndarray:
        """Validate batch keys *before* logging.

        A batch the index would reject mid-application must never reach
        the log: the record is durable once appended, and replay would
        raise on it at every reopen.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        if len(keys) and not np.isfinite(keys).all():
            raise ValueError("batch keys must be finite")
        return keys

    def bulk_insert(
        self, keys: np.ndarray | list, values: list | None = None
    ) -> int:
        keys = [float(k) for k in np.asarray(keys, dtype=np.float64)]
        # A batch DILI.bulk_insert would reject must never reach the
        # log: once appended the record is durable, and replay would
        # fail on it the same way, leaving the directory unopenable.
        if values is not None and len(values) != len(keys):
            raise ValueError("values must match keys in length")
        if len(set(keys)) != len(keys):
            raise ValueError("batch keys must be unique")
        with self._exclusive():
            self.wal.append(OP_BULK_INSERT, _encode(keys, values))
            return self._index.bulk_insert(keys, values)

    def bulk_load(
        self, keys: np.ndarray, values: list | None = None
    ) -> None:
        """Build from scratch and checkpoint immediately.

        Bulk loads are not logged (a 100M-key WAL record defeats the
        point); durability comes from the snapshot written before the
        call returns.
        """
        with self._exclusive():
            self._index.bulk_load(keys, values)
            self._snapshot_locked()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> None:
        """Atomically checkpoint the index and truncate the WAL."""
        with self._exclusive():
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        write_snapshot(
            self._plain,
            self._snap_path,
            last_seqno=self.wal.last_seqno,
            faults=self._faults,
        )
        self._faults.fire("before_wal_truncate")
        self.wal.truncate()
        self._faults.fire("after_wal_truncate")

    def sync_wal(self) -> None:
        """fsync the WAL now (for ``sync=False`` batching)."""
        self.wal.sync_now()

    # ------------------------------------------------------------------
    # Plan publishing (repro.planstore)
    # ------------------------------------------------------------------

    def publish_plan(self) -> int:
        """Publish the compiled flat plan as a new base generation.

        Serializes the plan's SoA buffers into ``plans/`` (see
        :mod:`repro.planstore`) stamped with the current WAL LSN, so an
        :class:`~repro.planstore.serve.MmapDILI` can serve it zero-copy
        and bring it exactly current by tail replay.  Returns the new
        generation number.

        Raises:
            ValueError: The index is empty (nothing to compile).
        """
        from repro.planstore.serve import PlanDirectory

        with self._exclusive():
            if self._plain.root is None:
                raise ValueError("cannot publish a plan of an empty index")
            plan = self._plain._plan()
            generation = PlanDirectory.for_state_dir(self.dirpath).publish_base(
                plan, wal_lsn=self.wal.last_seqno, faults=self._faults
            )
            if self._concurrent:
                # The on-disk generation snapshots exactly this version;
                # publish it to the in-memory epoch slot too, so the
                # plan that readers pin is the one the plan store wrote
                # (and the compile we just paid is not recompiled by
                # the next lock-free read's fallback).
                self._index._republish()
            return generation

    def publish_tail(self) -> str | None:
        """Publish WAL records past the newest plan chain as one delta.

        Lets a writer keep published plans current without rewriting
        the base file: the delta carries the raw WAL op frames, which
        readers replay into their overlay.  Returns the delta path, or
        ``None`` when the chain is already at the WAL's LSN.

        Raises:
            ValueError: No base generation has been published yet.
        """
        from repro.durability.wal import scan_wal
        from repro.planstore.serve import PlanDirectory

        with self._exclusive():
            plans = PlanDirectory.for_state_dir(self.dirpath)
            generations = plans.generations()
            if not generations:
                raise ValueError("no plan generation published yet")
            generation = generations[-1]
            chain_lsn, next_seq = plans.chain_state(generation)
            scan = scan_wal(self.wal.path)
            ops = [
                (record.opcode, record.payload)
                for record in scan.records
                if record.seqno > chain_lsn
            ]
            if not ops:
                return None
            return plans.publish_delta(
                generation,
                ops,
                seq=next_seq,
                wal_lsn=scan.last_seqno,
                faults=self._faults,
            )

    def serve_mmap(self, **kwargs):
        """Open a read-only :class:`~repro.planstore.serve.MmapDILI`
        over this directory (the fallback-ladder serving handle)."""
        from repro.planstore.serve import MmapDILI

        return MmapDILI(self.dirpath, **kwargs)

    # ------------------------------------------------------------------
    # Reads and plumbing (unlogged)
    # ------------------------------------------------------------------

    def get(self, key: float) -> object | None:
        return self._index.get(float(key))

    def get_batch(self, keys) -> list:
        """Vectorized lookups; never logged, and lock-free when
        ``concurrent=True`` (epoch-pinned published-plan descent --
        a long batch read does not block a logged write)."""
        return self._index.get_batch(keys)

    def contains_batch(self, keys):
        """Vectorized membership tests; never logged, lock-free like
        :meth:`get_batch`."""
        return self._index.contains_batch(keys)

    def count_range(self, lo: float, hi: float) -> int:
        return self._index.count_range(lo, hi)

    def count_range_batch(self, los, his):
        return self._index.count_range_batch(los, his)

    def range_query(self, lo: float, hi: float):
        return self._index.range_query(lo, hi)

    def items(self):
        return self._index.items()

    def validate(self) -> None:
        self._plain.validate()

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: float) -> bool:
        return self.get(key) is not None

    @property
    def index(self) -> DILI | ConcurrentDILI:
        """The wrapped live index."""
        return self._index

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableDILI":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
