"""Crash-safe persistence for DILI: WAL + snapshots + recovery.

The paper's index lives in memory; this package makes it durable.  The
design is the classic write-ahead logging triangle:

* :mod:`repro.durability.wal` -- an append-only log of update
  operations, each record framed with a sequence number and CRC32 so a
  torn tail is detected instead of replayed.
* :mod:`repro.durability.snapshot` -- atomic, checksummed full-index
  snapshots (temp file + ``fsync`` + ``os.replace``) that bound WAL
  replay time.
* :mod:`repro.durability.recovery` -- load the latest valid snapshot,
  replay the WAL tail past it, stop cleanly at the first corrupt
  record, and finish with ``validate()``.
* :mod:`repro.durability.faultpoints` -- named crash points the tests
  arm to simulate kill-9 and torn writes at every interesting instant.
* :mod:`repro.durability.durable` -- :class:`DurableDILI`, the thin
  wrapper that routes ``insert``/``delete``/``update``/``bulk_insert``
  through the WAL before applying them, over either a plain
  :class:`~repro.core.dili.DILI` or a
  :class:`~repro.core.concurrent.ConcurrentDILI`.

See ``docs/durability.md`` for the on-disk formats and the recovery
protocol.
"""

from repro.durability.durable import DurableDILI
from repro.durability.faultpoints import (
    ALL_CRASH_POINTS,
    CRASH_POINTS,
    PLAN_CRASH_POINTS,
    FaultInjector,
    SimulatedCrash,
)
from repro.durability.recovery import RecoveryResult, recover
from repro.durability.snapshot import (
    SnapshotError,
    read_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.durability.wal import (
    OP_BULK_INSERT,
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    WalRecord,
    WalScan,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "ALL_CRASH_POINTS",
    "CRASH_POINTS",
    "PLAN_CRASH_POINTS",
    "DurableDILI",
    "FaultInjector",
    "OP_BULK_INSERT",
    "OP_DELETE",
    "OP_INSERT",
    "OP_UPDATE",
    "RecoveryResult",
    "SimulatedCrash",
    "SnapshotError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "read_snapshot",
    "read_snapshot_header",
    "recover",
    "scan_wal",
    "write_snapshot",
]
