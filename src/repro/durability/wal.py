"""Append-only write-ahead log with CRC-framed, sequenced records.

On-disk layout (little-endian, see docs/durability.md):

* file header: the 8-byte magic ``DILIWAL1``;
* then zero or more records, each::

      u64 seqno | u8 opcode | u32 payload_len | payload | u32 crc32

  where the CRC covers the header bytes and the payload.  Sequence
  numbers are strictly consecutive within a file, so a skipped or
  repeated seqno is treated as corruption just like a CRC mismatch.

Replay (:func:`scan_wal`) stops at the first record that is torn
(truncated mid-record), has a bad CRC, or breaks the seqno chain; the
scan reports the byte offset of the last valid record so a reopened log
can truncate the garbage tail before appending.  Acknowledged writes
are exactly those whose record (including its CRC) was fsynced, so
"stop at the first bad record" can only ever drop unacknowledged
operations.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass

from repro.durability.faultpoints import NULL_FAULTS, FaultInjector

WAL_MAGIC = b"DILIWAL1"

_REC_HEADER = struct.Struct("<QBI")  # seqno, opcode, payload length
_REC_CRC = struct.Struct("<I")

# A sanity cap on payload length: a length field corrupted into garbage
# would otherwise make the scanner try to read gigabytes.  Enforced on
# append too, so every acknowledged record is one the scanner accepts.
MAX_PAYLOAD = 1 << 30

# Operation codes (the payload is a pickled tuple, see durable.py).
OP_INSERT = 1
OP_DELETE = 2
OP_UPDATE = 3
OP_BULK_INSERT = 4
OP_INSERT_BATCH = 5
OP_DELETE_BATCH = 6
OP_UPDATE_BATCH = 7

VALID_OPCODES = frozenset({
    OP_INSERT,
    OP_DELETE,
    OP_UPDATE,
    OP_BULK_INSERT,
    OP_INSERT_BATCH,
    OP_DELETE_BATCH,
    OP_UPDATE_BATCH,
})


@dataclass(frozen=True)
class WalRecord:
    """One durably logged operation."""

    seqno: int
    opcode: int
    payload: bytes


@dataclass(frozen=True)
class WalScan:
    """Result of scanning a WAL file.

    Attributes:
        records: Every valid record, in log order.
        valid_offset: Byte offset just past the last valid record;
            truncating the file here removes any torn/corrupt tail.
        truncated: True when the scan stopped before the end of file.
        reason: Why the scan stopped early (None for a clean file).
    """

    records: list[WalRecord]
    valid_offset: int
    truncated: bool
    reason: str | None

    @property
    def last_seqno(self) -> int:
        return self.records[-1].seqno if self.records else 0


def encode_record(seqno: int, opcode: int, payload: bytes) -> bytes:
    """Frame one record: header + payload + CRC32 over both."""
    head = _REC_HEADER.pack(seqno, opcode, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(head))
    return head + payload + _REC_CRC.pack(crc)


def scan_wal(path) -> WalScan:
    """Read every valid record; stop cleanly at the first bad one.

    A missing file scans as empty.  A file without the magic header is
    rejected with ``ValueError`` -- that is a wrong file, not a torn
    one.
    """
    records: list[WalRecord] = []
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return WalScan(records, 0, False, None)
    with fh:
        magic = fh.read(len(WAL_MAGIC))
        if len(magic) < len(WAL_MAGIC):
            # A file this short cannot hold the header we always write
            # (and fsync) at creation; treat it as an empty torn log.
            return WalScan(records, 0, True, "short file header")
        if magic != WAL_MAGIC:
            raise ValueError(f"{path} is not a DILI write-ahead log")
        offset = len(WAL_MAGIC)
        expected_seqno: int | None = None
        while True:
            head = fh.read(_REC_HEADER.size)
            if not head:
                return WalScan(records, offset, False, None)
            if len(head) < _REC_HEADER.size:
                return WalScan(records, offset, True, "torn record header")
            seqno, opcode, length = _REC_HEADER.unpack(head)
            if opcode not in VALID_OPCODES or length > MAX_PAYLOAD:
                return WalScan(records, offset, True, "corrupt record header")
            if expected_seqno is not None and seqno != expected_seqno:
                return WalScan(records, offset, True, "sequence break")
            body = fh.read(length + _REC_CRC.size)
            if len(body) < length + _REC_CRC.size:
                return WalScan(records, offset, True, "torn record body")
            payload, crc_bytes = body[:length], body[length:]
            crc = zlib.crc32(payload, zlib.crc32(head))
            if crc != _REC_CRC.unpack(crc_bytes)[0]:
                return WalScan(records, offset, True, "CRC mismatch")
            records.append(WalRecord(seqno, opcode, payload))
            offset += _REC_HEADER.size + length + _REC_CRC.size
            expected_seqno = seqno + 1


class WriteAheadLog:
    """An append-only operation log, safe to share across threads.

    Opening an existing log scans it, truncates any torn tail (so new
    appends are never hidden behind garbage), and continues the seqno
    chain.  ``min_next_seqno`` lets recovery push the chain past the
    seqno recorded in a snapshot even when the log itself was truncated
    at that snapshot.

    Args:
        path: Log file location; created (with its magic header) if
            missing.
        sync: fsync after every append.  Turning this off trades the
            durability of the last few records for speed; the file
            still can never be *corrupt*, only short.
        min_next_seqno: Lower bound for the next sequence number.
        faults: Crash-point injector (tests only).
    """

    def __init__(
        self,
        path,
        *,
        sync: bool = True,
        min_next_seqno: int = 1,
        faults: FaultInjector | None = None,
    ) -> None:
        self.path = os.fspath(path)
        self.sync = sync
        self._faults = faults if faults is not None else NULL_FAULTS
        self._lock = threading.Lock()
        scan = scan_wal(self.path)
        if not os.path.exists(self.path) or scan.valid_offset == 0:
            self._fh = open(self.path, "wb")
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            _fsync_dir(os.path.dirname(self.path))
        else:
            if scan.truncated:
                with open(self.path, "r+b") as trunc:
                    trunc.truncate(scan.valid_offset)
                    trunc.flush()
                    os.fsync(trunc.fileno())
            self._fh = open(self.path, "ab")
        self._next_seqno = max(min_next_seqno, scan.last_seqno + 1)
        self._record_count = len(scan.records)

    # ------------------------------------------------------------------

    @property
    def next_seqno(self) -> int:
        return self._next_seqno

    @property
    def last_seqno(self) -> int:
        return self._next_seqno - 1

    def __len__(self) -> int:
        """Number of records appended and durable in this file."""
        return self._record_count

    def append(self, opcode: int, payload: bytes) -> int:
        """Durably append one record; returns its sequence number.

        The record is acknowledged (the seqno returned) only after the
        bytes -- including the trailing CRC -- have been written and,
        when ``sync`` is on, fsynced.
        """
        if opcode not in VALID_OPCODES:
            raise ValueError(f"unknown opcode {opcode}")
        if len(payload) > MAX_PAYLOAD:
            # scan_wal treats a length above the cap as a corrupt
            # header, so a larger record would be silently dropped on
            # recovery (with everything after it) -- refuse to ack it.
            raise ValueError(
                f"WAL payload of {len(payload)} bytes exceeds the "
                f"{MAX_PAYLOAD}-byte cap that recovery can replay"
            )
        with self._lock:
            self._faults.fire("before_wal_append")
            seqno = self._next_seqno
            record = encode_record(seqno, opcode, payload)
            fraction = self._faults.torn("mid_wal_append")
            if fraction is not None:
                self._faults.tear_and_crash(
                    "mid_wal_append", self._fh, record, fraction
                )
            self._fh.write(record)
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
            self._next_seqno = seqno + 1
            self._record_count += 1
            self._faults.fire("after_wal_append")
            return seqno

    def truncate(self) -> None:
        """Drop every record (after a successful snapshot).

        Sequence numbers keep counting up -- replay filters on the
        snapshot's last seqno, so a record logged after a truncation
        must still sort after every snapshotted operation.
        """
        with self._lock:
            self._fh.close()
            self._fh = open(self.path, "wb")
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._record_count = 0

    def sync_now(self) -> None:
        """fsync the log (for ``sync=False`` batching callers)."""
        with self._lock:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def size_bytes(self) -> int:
        with self._lock:
            self._fh.flush()
            return os.path.getsize(self.path)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _fsync_dir(dirpath: str) -> None:
    """fsync a directory so a freshly created file's entry is durable."""
    fd = os.open(dirpath or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
